"""Figure 13 — the elastic scale-up ablation on ShareGPT.

Paper anchors: with elastic scale-up the P90 goodput is 2.87x higher
than without; at 25 req/s the manager triggers ~7 scale-ups per 10 s.
The qualitative invariant checked here: scale-up events fire under
sustained load, and the ablated system never out-serves the full one.
"""

import numpy as np

from repro.experiments.endtoend import figure13a, figure13b


def test_figure13a_ablation(benchmark, bench_scale):
    curves = benchmark.pedantic(
        lambda: figure13a(scale=bench_scale), rounds=1, iterations=1
    )
    by_name = {c.system: c for c in curves}
    full = by_name["loongserve"]
    ablated = by_name["loongserve-no-scaleup"]
    benchmark.extra_info["goodput_with_scaleup"] = full.goodput()
    benchmark.extra_info["goodput_without_scaleup"] = ablated.goodput()
    benchmark.extra_info["paper_anchor"] = "2.87x goodput with scale-up"

    assert full.goodput() >= ablated.goodput()
    # The full system records scale-up activity at high rates...
    assert sum(p.scale_up_events for p in full.points) > 0
    # ...the ablation records none, ever.
    assert sum(p.scale_up_events for p in ablated.points) == 0
    # Latency at the top swept rate is no worse with scale-up enabled.
    assert full.points[-1].per_token <= ablated.points[-1].per_token * 1.05


def test_figure13b_frequency(benchmark):
    bins = benchmark.pedantic(
        lambda: figure13b(duration_s=60.0, rate=40.0), rounds=1, iterations=1
    )
    active = [b for b in bins if b > 0]
    benchmark.extra_info["scale_ups_per_10s_mean"] = (
        round(float(np.mean(active)), 2) if active else 0.0
    )
    benchmark.extra_info["paper_anchor_per_10s"] = 7.12
    assert sum(bins) > 0, "sustained ShareGPT load must trigger scale-ups"
