"""Figure 3 — fixed sequence parallelism vs. tensor parallelism.

Paper anchor: SPxTP combinations match or beat pure TP=8 across the
(BS, Len) grid, in both the prefill and decode phases.
"""

from repro.experiments.microbench import figure3


def test_figure3_regenerates(benchmark):
    rows = benchmark(figure3)
    prefill_wins = 0
    decode_wins = 0
    for row in rows:
        if row.phase == "prefill":
            assert row.times["SP4TP2"] <= row.times["SP1TP8"] * 1.05
            if row.times["SP4TP2"] <= row.times["SP1TP8"]:
                prefill_wins += 1
        else:
            if row.times["SP4TP2"] <= row.times["SP1TP8"]:
                decode_wins += 1
    benchmark.extra_info["prefill_cells_where_sp_wins"] = prefill_wins
    benchmark.extra_info["decode_cells_where_sp_wins"] = decode_wins
    benchmark.extra_info["paper_anchor"] = "SP never loses to TP on the grid"
    assert prefill_wins >= 5  # of 6 grid cells
    assert decode_wins >= 4
