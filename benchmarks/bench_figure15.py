"""Figure 15 — accuracy of the SIB-fitted analytical model.

Paper anchor: the fitted Eq. 7 model deviates <10% from measured
iteration times across SP2TP4 / SP4TP2 / SP8TP1 and batch sizes 1-8.
"""

from repro.experiments.microbench import (
    figure15,
    figure15_max_deviation,
    figure15_mean_deviation,
)


def test_figure15_regenerates(benchmark):
    points = benchmark(figure15)
    max_dev = figure15_max_deviation(points)
    mean_dev = figure15_mean_deviation(points)
    benchmark.extra_info["max_deviation"] = round(max_dev, 4)
    benchmark.extra_info["mean_deviation"] = round(mean_dev, 4)
    benchmark.extra_info["paper_anchor"] = "<10% deviation"
    benchmark.extra_info["points"] = len(points)
    assert max_dev < 0.10
    assert {p.strategy for p in points} == {"SP2TP4", "SP4TP2", "SP8TP1"}
