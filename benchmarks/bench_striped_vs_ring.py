"""Striped vs. contiguous-block (Ring Attention) layout (§2.3).

The paper extends *Striped* Attention rather than Ring Attention because
contiguous blocks leave the causal attention work badly imbalanced.
This bench measures both layouts on the functional engine and reports
the bottleneck-work ratio that motivates the choice.
"""

import numpy as np

from repro.engine import FunctionalInstance, TransformerWeights, striped_prefill
from repro.engine.striped import (
    attention_pairs_per_instance,
    block_assignment,
    stripe_assignment,
)

WEIGHTS = TransformerWeights.random(
    hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2, seed=0
)


def _instances(count: int) -> list[FunctionalInstance]:
    return [
        FunctionalInstance(i, WEIGHTS.num_layers, WEIGHTS.num_kv_heads, WEIGHTS.head_dim)
        for i in range(count)
    ]


def test_bench_striped_layout(benchmark):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((256, WEIGHTS.hidden_size))
    run = benchmark(
        lambda: striped_prefill(WEIGHTS, x, _instances(4), request_id=0)
    )
    pairs = attention_pairs_per_instance(stripe_assignment(256, 4))
    benchmark.extra_info["bottleneck_over_mean"] = round(
        max(pairs) / (sum(pairs) / len(pairs)), 3
    )
    assert run.ring_sends > 0


def test_bench_block_layout(benchmark):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((256, WEIGHTS.hidden_size))
    assignment = block_assignment(256, 4)
    benchmark(
        lambda: striped_prefill(
            WEIGHTS, x, _instances(4), request_id=0, assignment=assignment
        )
    )
    pairs = attention_pairs_per_instance(assignment)
    ratio = max(pairs) / (sum(pairs) / len(pairs))
    benchmark.extra_info["bottleneck_over_mean"] = round(ratio, 3)
    benchmark.extra_info["note"] = "striped keeps this ratio ~1.0 (its advantage)"
    assert ratio > 1.5  # the imbalance striping removes
