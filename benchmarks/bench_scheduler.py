"""Scheduler microbenchmarks (ablation support).

The paper stresses that the four-step scheduler must decide within tens
of milliseconds (§5).  These benches time one full scheduling pass, the
batching DP alone (pruned vs. exhaustive — the Eq. 6 ablation), and the
SIB profile-and-fit bootstrap.
"""

import numpy as np

from repro.cluster.cluster import Cluster
from repro.config import default_config
from repro.core.batching_dp import plan_batches
from repro.core.global_manager import GlobalManager
from repro.core.server import LoongServeServer
from repro.core.sib import ScalingInformationBase
from repro.costmodel.latency import RooflineCostModel
from repro.model.spec import LWM_7B_1M
from repro.parallel.strategy import strategies_for_gpus
from repro.types import Request, next_request_id


def _requests(count: int, seed: int = 0) -> list[Request]:
    rng = np.random.default_rng(seed)
    return [
        Request(
            request_id=next_request_id(),
            input_len=int(rng.integers(100, 120_000)),
            output_len=int(rng.integers(1, 400)),
        )
        for _ in range(count)
    ]


def _predictor():
    cost = RooflineCostModel(cluster=Cluster.homogeneous(8), model=LWM_7B_1M)
    sib = ScalingInformationBase()
    return sib.profile_strategies(cost, strategies_for_gpus(8, 2), max_len=200_000)


def test_bench_batching_dp_pruned(benchmark):
    predictor = _predictor()
    requests = _requests(24)
    free = {i: 200_000 for i in range(4)}
    plan = benchmark(
        plan_batches, requests, [0, 1, 2, 3], free, predictor, 2, True
    )
    benchmark.extra_info["batches"] = len(plan.batches)


def test_bench_batching_dp_exhaustive(benchmark):
    predictor = _predictor()
    requests = _requests(24)
    free = {i: 200_000 for i in range(4)}
    benchmark(plan_batches, requests, [0, 1, 2, 3], free, predictor, 2, False)


def test_bench_full_scheduling_pass(benchmark):
    """One GlobalManager.schedule call must fit in an iteration budget
    (tens of milliseconds, §5)."""
    config = default_config()
    cost = RooflineCostModel(cluster=config.cluster, model=config.model)
    manager = GlobalManager(config, cost)
    server = LoongServeServer(config, cost_model=cost, manager=manager)
    server._reset()
    pending = _requests(32, seed=1)

    def one_pass():
        return manager.schedule(
            now=0.0,
            pending=pending,
            instances=server.instances,
            pool=server.pool,
            decode_batches=[],
            avg_decode_latency=1.0,
        )

    plan = benchmark(one_pass)
    benchmark.extra_info["prefill_batches"] = len(plan.prefills)
    assert benchmark.stats["mean"] < 0.1  # within the paper's latency budget


def test_bench_sib_bootstrap(benchmark):
    """Profile-and-fit for every SP degree at TP=2 (launch-time cost)."""
    cost = RooflineCostModel(cluster=Cluster.homogeneous(8), model=LWM_7B_1M)

    def bootstrap():
        sib = ScalingInformationBase()
        return sib.profile_strategies(
            cost, strategies_for_gpus(8, 2), max_len=200_000
        )

    model = benchmark(bootstrap)
    assert len(model.strategies) == 4
