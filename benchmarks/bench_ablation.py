"""Ablations of this reproduction's own design choices (DESIGN.md §5).

Not paper figures — these quantify decisions the paper makes implicitly:
planning on the fitted Eq. 7 model vs. a ground-truth oracle, the
end-to-end value of multi-master decoding, and the proactive scale-down
headroom setting.
"""

from repro.experiments.ablation import (
    multi_master_ablation,
    planning_model_ablation,
    scale_down_headroom_ablation,
)


def test_ablation_planning_model(benchmark):
    """Fitted-model planning should be near the unrealisable oracle."""
    points = benchmark.pedantic(planning_model_ablation, rounds=1, iterations=1)
    fitted, oracle = points
    benchmark.extra_info["fitted_per_token"] = round(fitted.per_token, 5)
    benchmark.extra_info["oracle_per_token"] = round(oracle.per_token, 5)
    assert fitted.finished == oracle.finished
    # Planning on the fitted model costs little vs. perfect information.
    assert fitted.per_token <= oracle.per_token * 1.5


def test_ablation_multi_master(benchmark):
    """Multi-master decoding must pay off end to end under load."""
    points = benchmark.pedantic(multi_master_ablation, rounds=1, iterations=1)
    on, off = points
    benchmark.extra_info["per_token_on"] = round(on.per_token, 5)
    benchmark.extra_info["per_token_off"] = round(off.per_token, 5)
    assert on.finished == off.finished
    assert on.output_token <= off.output_token * 1.05


def test_ablation_scale_down_headroom(benchmark):
    """Too little headroom causes churn; the default sits in the basin."""
    points = benchmark.pedantic(
        scale_down_headroom_ablation, rounds=1, iterations=1
    )
    by_headroom = {p.variant: p for p in points}
    for variant, point in by_headroom.items():
        benchmark.extra_info[f"{variant} per_token"] = round(point.per_token, 5)
        benchmark.extra_info[f"{variant} scale_ups"] = point.scale_ups
    default = by_headroom["headroom=32 iterations"]
    tiny = by_headroom["headroom=4 iterations"]
    # The default must not lose to the starved setting.
    assert default.per_token <= tiny.per_token * 1.10
