"""Functional-engine microbenchmarks.

Times the numpy execution of the ESP mechanisms themselves: striped
prefill at increasing DoP and distributed decode steps with 1 vs. 2
masters.  (These measure the reproduction's engine, not the modelled
GPU times — useful for tracking regressions in the mechanism code.)
"""

import numpy as np
import pytest

from repro.engine import (
    DistributedDecoder,
    FunctionalInstance,
    TransformerWeights,
    striped_prefill,
)
from repro.engine.reference import next_token_embedding

WEIGHTS = TransformerWeights.random(
    hidden_size=64, num_heads=8, num_kv_heads=4, num_layers=4, seed=0
)


def _instances(count: int) -> list[FunctionalInstance]:
    return [
        FunctionalInstance(i, WEIGHTS.num_layers, WEIGHTS.num_kv_heads, WEIGHTS.head_dim)
        for i in range(count)
    ]


@pytest.mark.parametrize("sp", [1, 2, 4])
def test_bench_striped_prefill(benchmark, sp):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((128, WEIGHTS.hidden_size))

    def run():
        return striped_prefill(WEIGHTS, x, _instances(sp), request_id=0)

    result = benchmark(run)
    benchmark.extra_info["ring_sends"] = result.ring_sends


@pytest.mark.parametrize("masters", [1, 2])
def test_bench_distributed_decode(benchmark, masters):
    rng = np.random.default_rng(2)
    instances = _instances(2)
    prompts = {rid: rng.standard_normal((64, WEIGHTS.hidden_size)) for rid in (0, 1)}
    last = {}
    for rid, x in prompts.items():
        last[rid] = striped_prefill(WEIGHTS, x, instances, request_id=rid).last_hidden
    decoder = DistributedDecoder(weights=WEIGHTS, instances=instances)
    assignment = {0: 0, 1: 0} if masters == 1 else {0: 0, 1: 1}

    state = {"hidden": dict(last)}

    def step():
        inputs = {rid: next_token_embedding(h) for rid, h in state["hidden"].items()}
        result = decoder.decode_step(inputs, masters=assignment)
        state["hidden"] = result.hidden
        return result

    result = benchmark(step)
    assert result.kv_migrated_tokens == 0
