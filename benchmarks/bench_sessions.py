"""Multi-turn session serving: affinity routing vs. stateless policies.

Four LoongServe replicas with armed prefix-KV caches sweep the Sessions
conversation workload under each routing policy.  Anchors: affinity
routing — which pins a conversation's turns to the replica holding its
KV prefix — reports a clearly higher prefix hit rate than round-robin,
and converts it into lower mean normalised prefill (input) latency at
the highest swept rate.
"""

from repro.experiments.sessions import (
    affinity_advantage,
    render_session_curves,
    session_sweep,
)


def test_session_router_sweep(benchmark, bench_scale):
    curves = benchmark.pedantic(
        lambda: session_sweep(scale=bench_scale), rounds=1, iterations=1
    )
    by_name = {c.router: c for c in curves}
    assert set(by_name) == {"round-robin", "least-kv", "affinity"}

    # Every policy must actually serve the workload at every rate.
    for session_curve in curves:
        for point in session_curve.curve.points:
            assert point.finished == point.total

    advantage = affinity_advantage(curves)
    benchmark.extra_info["affinity_input_token_ratio"] = advantage["input_token_ratio"]
    benchmark.extra_info["affinity_hit_rate"] = advantage["affinity_hit_rate"]
    benchmark.extra_info["table"] = render_session_curves(curves)

    # The headline: affinity keeps conversations on their KV and wins.
    assert advantage["affinity_hit_rate"] > advantage["round_robin_hit_rate"]
    assert advantage["input_token_ratio"] > 1.0
