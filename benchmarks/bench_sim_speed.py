"""Simulator speed: optimised discrete events/sec and hybrid fluid mode.

Three claims, measured end to end:

* the optimised discrete path (slotted events, incremental server state,
  memoised cost models, the hoisted batching DP) processes events several
  times faster than the pre-PR baseline at identical semantics — the
  discrete path is bit-identical, so a fixed event budget times exactly
  the same work;
* hybrid mode (``sim_mode="hybrid"``, ``repro.sim.fluid``) collapses
  steady-state decode stretches into closed-form windows, cutting both
  the event count and the end-to-end wall time by another order of
  magnitude on steady traces, while matching discrete aggregates within
  tolerance;
* at fleet scale (16 elastic replicas, bursty Mixed + multi-turn
  sessions), sharded event calendars keep the discrete path
  bit-identical to the pre-PR shared-heap layout at wall parity, and
  per-replica fluid windows (hybrid inside the fleet, backlog included)
  cut end-to-end wall time by >=3x at identical serving outcomes.

Run as a script to (re)generate ``BENCH_sim_speed.json``::

    PYTHONPATH=src python benchmarks/bench_sim_speed.py [--quick]
    [--steady-scales 10000,100000,1000000]

Each scenario runs in a forked child so ``ru_maxrss`` is a true
per-scenario peak.  The pre-PR baseline numbers were measured at the
seed commit (53aa78d) on the same traces with the same event budgets;
the baseline code no longer exists in-tree, so they are recorded below
and rescaled by the calibration microbenchmark when compared on a
different machine.

Under pytest the module doubles as the CI perf gate: anchors assert the
discrete path stays ahead of the (calibration-scaled) baseline and that
hybrid mode keeps its speedup and its fidelity; if a committed
``BENCH_sim_speed.json`` is present, a >20% events/sec regression
against it fails.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
from pathlib import Path

import pytest

from repro.config import SchedulerConfig, default_config
from repro.core.server import LoongServeServer
from repro.types import Request
from repro.workloads.datasets import MIXED
from repro.workloads.trace_gen import clone_requests, make_trace

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_sim_speed.json"

# Events/sec of the seed-commit simulator, fixed event budget, measured
# on the machine whose calibration score is recorded alongside.
BASELINE = {
    "commit": "53aa78d",
    "calibration_score": 22.11,
    "mixed_10k_events_per_sec": 2544.4,
    "mixed_100k_events_per_sec": 2405.9,
    "steady_10k_events_per_sec": 11367.0,
}

# Event budgets for the fixed-work events/sec scenarios (matching the
# budgets the baseline numbers above were measured with).
MIXED_BUDGETS = {10_000: 300_000, 100_000: 300_000}
GATE_TRACE_REQUESTS = 2_000
GATE_EVENT_BUDGET = 50_000
# Steady scales past this run discrete under an event budget and
# extrapolate the full wall time (events per request is constant in
# steady state — the smaller scales, run in full, validate the ratio).
FULL_DISCRETE_LIMIT = 100_000
DISCRETE_PREFIX_BUDGET = 2_000_000

# Fleet scenario: elastic replicas (autoscale + steal, least-kv router)
# under bursty Mixed arrivals merged with multi-turn sessions.  The
# arrival rate is calibrated so the fleet keeps up over a burst cycle —
# backlog builds during bursts (exercising fluid windows under backlog)
# and drains between them, so the makespan ends on the quiescent tail
# and hybrid tracks discrete to the same control tick.
FLEET_GPUS_PER_REPLICA = 4
FLEET_RATE = 6.0
FLEET_SESSION_RATE = 0.3
FLEET_SEED = 11
FLEET_FULL = {"replicas": 16, "mixed": 1_000, "sessions": 40}
FLEET_QUICK = {"replicas": 8, "mixed": 300, "sessions": 20}
# Makespan drift tolerance for fleet hybrid vs discrete: both calibrated
# scenarios land on the same control tick (measured drift 0.0%).
FLEET_DRIFT_TOLERANCE = 0.001


def calibration_score() -> float:
    """Machine-speed proxy: a fixed pure-Python loop, in M-iterations/s.

    The simulator hot path is pure Python, so scaling recorded
    events/sec by the ratio of calibration scores transfers thresholds
    across machines to first order.
    """
    n = 2_000_000
    t0 = time.perf_counter()
    acc = 0
    for i in range(n):
        acc += i & 7
    dt = time.perf_counter() - t0
    assert acc >= 0
    return round(n / dt / 1e6, 2)


def mixed_trace(num_requests: int) -> list[Request]:
    return make_trace(MIXED, rate=4.0, num_requests=num_requests, seed=7)


def steady_trace(num_requests: int) -> list[Request]:
    """Clusters of 48 uniform requests every 8 s: the system keeps up,
    so decode runs in long steady stretches — hybrid mode's home turf.
    The 1024-token outputs keep decode (the part hybrid collapses)
    dominant, as in any long-generation steady workload."""
    return [
        Request(
            request_id=i,
            input_len=512,
            output_len=1024,
            arrival_time=(i // 48) * 8.0,
        )
        for i in range(num_requests)
    ]


def fleet_trace(num_mixed: int, num_sessions: int) -> list[Request]:
    """Bursty Mixed arrivals merged with a multi-turn session trace."""
    from repro.sessions.workload import make_session_trace
    from repro.workloads.arrival import BurstyArrivals

    mixed = make_trace(
        MIXED, rate=FLEET_RATE, num_requests=num_mixed, seed=FLEET_SEED,
        arrivals=BurstyArrivals(rate=FLEET_RATE),
    )
    sessions = make_session_trace(
        rate=FLEET_SESSION_RATE, num_sessions=num_sessions, seed=FLEET_SEED
    )
    trace = mixed + sessions
    trace.sort(key=lambda r: (r.arrival_time, r.request_id))
    return trace


def outcome_signature(requests) -> str:
    """Digest of every request's serving outcome, for bit-identity gates.

    Request ids are excluded on purpose: rebuilding a trace draws fresh
    ids from the global counter, but the workload tuple plus the served
    timestamps pin the outcome exactly.
    """
    import hashlib

    rows = sorted(
        (
            r.input_len,
            r.output_len,
            round(r.arrival_time, 9),
            round(r.prefill_end, 9) if r.prefill_end is not None else -1.0,
            round(r.finish_time, 9) if r.finish_time is not None else -1.0,
            r.generated,
            r.preemptions,
        )
        for r in requests
    )
    return hashlib.sha256(json.dumps(rows).encode()).hexdigest()


def run_fleet_once(
    sim_mode: str,
    sharded: bool,
    scale: dict,
) -> dict:
    """Serve the fleet scenario once; returns timing plus outcomes.

    ``sharded=False`` is the pre-PR layout (every replica on one shared
    event heap), still in-tree, so the baseline is measured live rather
    than rescaled from a recorded number.
    """
    from repro.experiments.systems import make_fleet

    fleet = make_fleet(
        "loongserve",
        replicas=scale["replicas"],
        router="least-kv",
        num_gpus=FLEET_GPUS_PER_REPLICA,
        autoscale=True,
        steal=True,
        sim_mode=sim_mode,
        sharded=sharded,
    )
    trace = clone_requests(fleet_trace(scale["mixed"], scale["sessions"]))
    t0 = time.perf_counter()
    result = fleet.run(trace)
    wall = time.perf_counter() - t0
    events = fleet.last_sim.events_processed
    finished = [r for r in result.requests if r.finished]
    return {
        "sim_mode": sim_mode,
        "sharded": sharded,
        "replicas": scale["replicas"],
        "num_requests": len(trace),
        "events": events,
        "wall_s": round(wall, 3),
        "events_per_sec": round(events / wall, 1),
        "makespan": round(result.makespan, 3),
        "finished": len(finished),
        "generated_tokens": sum(r.generated for r in finished),
        "signature": outcome_signature(result.requests),
    }


def run_once(
    mode: str,
    trace: list[Request],
    max_events: int | None = None,
    observe: bool = False,
) -> dict:
    """Serve ``trace`` once; returns timing plus fidelity aggregates.

    The trace is cloned first — ``Request`` objects are mutable run
    state, so back-to-back mode comparisons need fresh copies.
    ``observe=True`` arms the full observability stack (spans + audit
    log + telemetry), the tracing-on side of the overhead measurement.
    """
    config = default_config(scheduler=SchedulerConfig(sim_mode=mode))
    server = LoongServeServer(config)
    obs = None
    if observe:
        from repro.obs import Observability

        obs = Observability()
        server.observe(obs)
    trace = clone_requests(trace)
    t0 = time.perf_counter()
    result = server.run(trace, max_events=max_events)
    wall = time.perf_counter() - t0
    finished = [r for r in result.requests if r.finished]
    out = {
        "mode": mode,
        "num_requests": len(trace),
        "events": server.sim.events_processed,
        "wall_s": round(wall, 3),
        "events_per_sec": round(server.sim.events_processed / wall, 1),
        "makespan": round(result.makespan, 3),
        "finished": len(finished),
        "generated_tokens": sum(r.generated for r in finished),
    }
    if max_events is not None:
        out["event_budget"] = max_events
    if server._fluid is not None:
        out["fluid_windows"] = server._fluid.windows
        out["fluid_iterations_absorbed"] = server._fluid.iterations_absorbed
    if obs is not None:
        out["spans"] = len(obs.tracer.spans)
        out["audit_records"] = len(obs.tracer.records)
        out["telemetry_samples"] = len(obs.metrics.sample_times)
    return out


def run_forked(fn) -> dict:
    """Run ``fn`` in a forked child; adds the child's true peak RSS."""
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        os.close(read_fd)
        status = 1
        try:
            out = fn()
            out["peak_rss_mb"] = round(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
            )
            os.write(write_fd, json.dumps(out).encode())
            status = 0
        finally:
            os.close(write_fd)
            os._exit(status)
    os.close(write_fd)
    chunks = []
    while True:
        chunk = os.read(read_fd, 1 << 16)
        if not chunk:
            break
        chunks.append(chunk)
    os.close(read_fd)
    _, exit_status = os.waitpid(pid, 0)
    if exit_status != 0 or not chunks:
        raise RuntimeError(f"benchmark child failed (status {exit_status})")
    return json.loads(b"".join(chunks))


def scaled_baseline(key: str, calibration: float) -> float | None:
    """A recorded baseline number rescaled to this machine's speed."""
    recorded = BASELINE.get(key)
    reference = BASELINE.get("calibration_score")
    if recorded is None or reference is None:
        return None
    return recorded * (calibration / reference)


def fleet_bench(scale: dict) -> dict:
    """Three-way fleet comparison: pre-PR layout vs sharded vs hybrid."""
    label = f"{scale['replicas']} replicas, {scale['mixed']}+sessions"
    print(f"[bench] fleet discrete, shared heap ({label}) ...")
    unsharded = run_forked(
        lambda: run_fleet_once("discrete", sharded=False, scale=scale)
    )
    print(f"[bench]   wall {unsharded['wall_s']}s, "
          f"{unsharded['events_per_sec']} ev/s")
    print(f"[bench] fleet discrete, sharded calendars ({label}) ...")
    sharded = run_forked(
        lambda: run_fleet_once("discrete", sharded=True, scale=scale)
    )
    identical = (
        sharded["signature"] == unsharded["signature"]
        and sharded["makespan"] == unsharded["makespan"]
    )
    print(f"[bench]   wall {sharded['wall_s']}s, "
          f"{sharded['events_per_sec']} ev/s, bit-identical={identical}")
    print(f"[bench] fleet hybrid, sharded calendars ({label}) ...")
    hybrid = run_forked(
        lambda: run_fleet_once("hybrid", sharded=True, scale=scale)
    )
    drift = abs(hybrid["makespan"] - unsharded["makespan"]) / unsharded["makespan"]
    speedup = round(unsharded["wall_s"] / hybrid["wall_s"], 2)
    print(f"[bench]   wall {hybrid['wall_s']}s: x{speedup} vs pre-PR, "
          f"makespan drift {drift * 100:.3f}%")
    return {
        "scenario": {
            "replicas": scale["replicas"],
            "gpus_per_replica": FLEET_GPUS_PER_REPLICA,
            "mixed_requests": scale["mixed"],
            "sessions": scale["sessions"],
            "rate": FLEET_RATE,
            "elastic": "autoscale + steal, least-kv router",
        },
        "discrete_unsharded": unsharded,
        "discrete_sharded": sharded,
        "hybrid_sharded": hybrid,
        "sharded_bit_identical": identical,
        "sharded_wall_ratio": round(
            unsharded["wall_s"] / sharded["wall_s"], 2
        ),
        "hybrid_wall_speedup_vs_unsharded": speedup,
        "hybrid_makespan_drift": round(drift, 6),
        "hybrid_outcomes_match": (
            hybrid["finished"] == unsharded["finished"]
            and hybrid["generated_tokens"] == unsharded["generated_tokens"]
        ),
    }


# -- pytest anchors (CI smoke + perf gate) ---------------------------------


def test_bench_discrete_beats_baseline(benchmark, bench_scale):
    """Optimised discrete events/sec clears the baseline by a wide margin."""
    trace = mixed_trace(2_000)
    out = benchmark.pedantic(
        lambda: run_once("discrete", trace, max_events=30_000),
        rounds=1, iterations=1,
    )
    calibration = calibration_score()
    benchmark.extra_info.update(out, calibration=calibration)
    floor = scaled_baseline("mixed_10k_events_per_sec", calibration)
    if floor is not None:
        # Committed JSON demonstrates the full >=5x on the 100k trace;
        # the CI anchor asserts 3x on a small prefix to absorb noise and
        # trace-phase differences.
        assert out["events_per_sec"] >= 3.0 * floor, (
            f"discrete {out['events_per_sec']:.0f} ev/s under 3x the "
            f"calibration-scaled baseline {floor:.0f} ev/s"
        )


def test_bench_hybrid_speedup_and_fidelity(benchmark, bench_scale):
    """Hybrid collapses events by >=10x and matches discrete aggregates."""
    trace = steady_trace(2_000)
    discrete = run_once("discrete", trace)
    hybrid = benchmark.pedantic(
        lambda: run_once("hybrid", trace), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        discrete_events=discrete["events"], hybrid_events=hybrid["events"],
        discrete_wall=discrete["wall_s"], hybrid_wall=hybrid["wall_s"],
    )
    assert hybrid["generated_tokens"] == discrete["generated_tokens"]
    assert hybrid["finished"] == discrete["finished"]
    assert abs(hybrid["makespan"] - discrete["makespan"]) <= 0.02 * discrete["makespan"]
    assert discrete["events"] >= 10 * hybrid["events"]
    assert hybrid["wall_s"] < discrete["wall_s"]


def test_bench_disabled_tracer_fast_path():
    """A disabled tracer's guarded call site must stay near-free.

    Every hot-path trace call in the simulator is written as
    ``if trace.enabled: trace.audit(...)`` so the payload kwargs are
    never built when tracing is off.  This micro-assert pins that
    contract: the disabled pattern (one attribute check) must be far
    cheaper than the enabled call (kwargs dict + record + append), and
    must record nothing.
    """
    from repro.obs import Tracer

    n = 100_000

    def loop(tracer: Tracer) -> float:
        t0 = time.perf_counter()
        for i in range(n):
            if tracer.enabled:
                tracer.audit(0.0, "probe", component="bench", replica=1,
                             index=i, size=i * 2)
        return time.perf_counter() - t0

    loop(Tracer(enabled=False))  # warm-up
    loop(Tracer(enabled=True))
    disabled = Tracer(enabled=False)
    t_off = min(loop(disabled) for _ in range(3))
    enabled_times = []
    for _ in range(3):
        enabled = Tracer(enabled=True)
        enabled_times.append(loop(enabled))
    t_on = min(enabled_times)
    assert len(disabled.records) == 0 and len(disabled.spans) == 0
    assert len(enabled.records) == n
    # The real gap is ~20-50x; 4x absorbs CI timer noise generously.
    assert t_off <= 0.25 * t_on, (
        f"disabled guarded call site took {t_off:.4f}s vs {t_on:.4f}s "
        f"enabled — the trace.enabled fast path has regressed"
    )


_fleet_quick_cache: dict = {}


def _fleet_quick(sim_mode: str, sharded: bool) -> dict:
    """Quick-scale fleet run, memoised across the anchor tests."""
    key = (sim_mode, sharded)
    if key not in _fleet_quick_cache:
        _fleet_quick_cache[key] = run_fleet_once(
            sim_mode, sharded=sharded, scale=FLEET_QUICK
        )
    return _fleet_quick_cache[key]


def test_bench_fleet_sharded_bit_identical():
    """Sharded calendars replay the shared-heap fleet bit for bit."""
    unsharded = _fleet_quick("discrete", sharded=False)
    sharded = _fleet_quick("discrete", sharded=True)
    assert sharded["signature"] == unsharded["signature"]
    assert sharded["makespan"] == unsharded["makespan"]
    assert sharded["events"] == unsharded["events"]


def test_bench_fleet_hybrid_speedup_and_fidelity():
    """Fleet hybrid beats the pre-PR path >=2.5x at matching outcomes.

    The committed JSON records the full-scale >=3x; the CI anchor
    asserts 2.5x on the quick scenario (measured ~4.4x) to absorb
    machine noise.
    """
    unsharded = _fleet_quick("discrete", sharded=False)
    hybrid = _fleet_quick("hybrid", sharded=True)
    assert hybrid["finished"] == unsharded["finished"]
    assert hybrid["generated_tokens"] == unsharded["generated_tokens"]
    drift = abs(hybrid["makespan"] - unsharded["makespan"])
    assert drift <= FLEET_DRIFT_TOLERANCE * unsharded["makespan"], (
        f"fleet hybrid makespan {hybrid['makespan']} drifted "
        f"{drift / unsharded['makespan']:.2%} from discrete "
        f"{unsharded['makespan']} (tolerance {FLEET_DRIFT_TOLERANCE:.1%})"
    )
    assert unsharded["wall_s"] >= 2.5 * hybrid["wall_s"], (
        f"fleet hybrid wall {hybrid['wall_s']}s is under 2.5x faster than "
        f"the pre-PR path ({unsharded['wall_s']}s)"
    )


def test_bench_fleet_no_regression_vs_committed():
    """Fleet perf gate: >20% events/sec regression vs committed JSON fails."""
    if not RESULT_PATH.exists():
        pytest.skip("no committed BENCH_sim_speed.json to gate against")
    committed = json.loads(RESULT_PATH.read_text())
    gate = committed.get("fleet_gate")
    if gate is None:
        pytest.skip("committed BENCH_sim_speed.json has no fleet_gate section")
    out = _fleet_quick("discrete", sharded=True)
    calibration = calibration_score()
    expected = gate["events_per_sec"] * (calibration / gate["calibration_score"])
    assert out["events_per_sec"] >= 0.8 * expected, (
        f"fleet sharded discrete {out['events_per_sec']:.0f} ev/s is >20% "
        f"below the committed fleet gate ({gate['events_per_sec']:.0f} ev/s "
        f"at calibration {gate['calibration_score']}, scaled to "
        f"{expected:.0f} here)"
    )


def test_bench_no_regression_vs_committed(benchmark):
    """Perf gate: >20% events/sec regression vs BENCH_sim_speed.json fails."""
    if not RESULT_PATH.exists():
        pytest.skip("no committed BENCH_sim_speed.json to gate against")
    committed = json.loads(RESULT_PATH.read_text())
    gate = committed.get("gate")
    if gate is None:
        pytest.skip("committed BENCH_sim_speed.json has no gate section")
    trace = mixed_trace(gate["num_requests"])
    out = benchmark.pedantic(
        lambda: run_once("discrete", trace, max_events=gate["event_budget"]),
        rounds=1, iterations=1,
    )
    calibration = calibration_score()
    expected = gate["events_per_sec"] * (calibration / gate["calibration_score"])
    benchmark.extra_info.update(out, calibration=calibration, expected=expected)
    assert out["events_per_sec"] >= 0.8 * expected, (
        f"discrete {out['events_per_sec']:.0f} ev/s is >20% below the "
        f"committed gate ({gate['events_per_sec']:.0f} ev/s at calibration "
        f"{gate['calibration_score']}, scaled to {expected:.0f} here)"
    )


# -- script entry point ----------------------------------------------------


def obs_overhead() -> dict:
    """Tracing-on vs tracing-off events/sec on the gate trace.

    Both sides run the identical discrete event sequence (observability
    is pure observation), so the events/sec ratio is the tracing tax.
    """
    print(f"[bench] observability overhead (mixed_{GATE_TRACE_REQUESTS}, "
          f"budget {GATE_EVENT_BUDGET}) ...")
    off = run_forked(lambda: run_once(
        "discrete", mixed_trace(GATE_TRACE_REQUESTS),
        max_events=GATE_EVENT_BUDGET))
    on = run_forked(lambda: run_once(
        "discrete", mixed_trace(GATE_TRACE_REQUESTS),
        max_events=GATE_EVENT_BUDGET, observe=True))
    overhead_pct = round(
        (off["events_per_sec"] / on["events_per_sec"] - 1.0) * 100, 1
    )
    print(f"[bench]   off {off['events_per_sec']} ev/s, "
          f"on {on['events_per_sec']} ev/s "
          f"({on['spans']} spans, {on['audit_records']} audits): "
          f"+{overhead_pct}% overhead")
    return {
        "tracing_off": off,
        "tracing_on": on,
        "overhead_pct": overhead_pct,
    }


def generate(quick: bool, steady_scales: list[int]) -> dict:
    calibration = calibration_score()
    report: dict = {
        "calibration_score": calibration,
        "baseline": dict(BASELINE),
        "events_per_sec": {},
        "hybrid": {},
    }

    mixed_scales = [2_000] if quick else [10_000, 100_000]
    for n in mixed_scales:
        name = f"mixed_{n // 1000}k"
        budget = 30_000 if quick else MIXED_BUDGETS[n]
        print(f"[bench] discrete events/sec on {name} (budget {budget}) ...")
        out = run_forked(lambda n=n, budget=budget: run_once(
            "discrete", mixed_trace(n), max_events=budget))
        floor = scaled_baseline(f"{name}_events_per_sec", calibration)
        if floor is not None:
            out["baseline_events_per_sec_scaled"] = round(floor, 1)
            out["speedup_vs_baseline"] = round(out["events_per_sec"] / floor, 2)
        report["events_per_sec"][name] = out
        print(f"[bench]   {out['events_per_sec']} ev/s "
              f"(x{out.get('speedup_vs_baseline', '?')} vs baseline)")

    events_per_request = None
    for n in sorted(steady_scales):
        name = f"steady_{n // 1000}k" if n < 1_000_000 else f"steady_{n // 1_000_000}m"
        entry = {}
        print(f"[bench] hybrid full run on {name} ...")
        entry["hybrid"] = run_forked(lambda n=n: run_once("hybrid", steady_trace(n)))
        print(f"[bench]   wall {entry['hybrid']['wall_s']}s, "
              f"{entry['hybrid']['events']} events, "
              f"rss {entry['hybrid']['peak_rss_mb']} MB")
        if n <= FULL_DISCRETE_LIMIT or events_per_request is None:
            print(f"[bench] discrete full run on {name} ...")
            out = run_forked(lambda n=n: run_once("discrete", steady_trace(n)))
            events_per_request = out["events"] / out["finished"]
        else:
            print(f"[bench] discrete prefix run on {name} "
                  f"(budget {DISCRETE_PREFIX_BUDGET}) ...")
            out = run_forked(lambda n=n: run_once(
                "discrete", steady_trace(n), max_events=DISCRETE_PREFIX_BUDGET))
            estimated_events = int(events_per_request * n)
            out["events_extrapolated"] = estimated_events
            out["wall_s_extrapolated"] = round(
                estimated_events / out["events_per_sec"], 1
            )
            out["extrapolation_basis"] = (
                f"{events_per_request:.1f} events/request from the largest "
                f"fully-run scale; wall at measured events/sec"
            )
        entry["discrete"] = out
        print(f"[bench]   wall {out.get('wall_s_extrapolated', out['wall_s'])}s"
              f"{' (extrapolated)' if 'wall_s_extrapolated' in out else ''}, "
              f"rss {out['peak_rss_mb']} MB")
        discrete_wall = out.get("wall_s_extrapolated", out["wall_s"])
        discrete_events = out.get("events_extrapolated", out["events"])
        entry["wall_speedup_hybrid_vs_discrete"] = round(
            discrete_wall / entry["hybrid"]["wall_s"], 2
        )
        entry["event_reduction"] = round(
            discrete_events / entry["hybrid"]["events"], 1
        )
        base_eps = scaled_baseline("steady_10k_events_per_sec", calibration)
        if base_eps is not None:
            # The baseline replays the identical event sequence as the
            # (bit-identical) optimised discrete path, so its end-to-end
            # wall time extrapolates exactly from its measured rate.
            base_wall = discrete_events / base_eps
            entry["baseline_wall_s_extrapolated"] = round(base_wall, 1)
            entry["wall_speedup_hybrid_vs_baseline"] = round(
                base_wall / entry["hybrid"]["wall_s"], 1
            )
        if "wall_s_extrapolated" not in out:
            drift = abs(entry["hybrid"]["makespan"] - out["makespan"])
            entry["makespan_drift"] = round(drift / out["makespan"], 4)
        report["hybrid"][name] = entry

    report["fleet"] = fleet_bench(FLEET_QUICK if quick else FLEET_FULL)
    # The gate replays the quick scenario (what CI runs) regardless of
    # scale, so the committed reference matches the gated measurement.
    if quick:
        fleet_gate = dict(report["fleet"]["discrete_sharded"])
    else:
        print("[bench] fleet gate reference (quick scenario) ...")
        fleet_gate = run_forked(
            lambda: run_fleet_once("discrete", sharded=True, scale=FLEET_QUICK)
        )
    fleet_gate.pop("signature", None)
    fleet_gate["calibration_score"] = calibration
    report["fleet_gate"] = fleet_gate

    print(f"[bench] gate reference (mixed_{GATE_TRACE_REQUESTS}, "
          f"budget {GATE_EVENT_BUDGET}) ...")
    gate = run_forked(
        lambda: run_once(
            "discrete", mixed_trace(GATE_TRACE_REQUESTS),
            max_events=GATE_EVENT_BUDGET,
        )
    )
    gate["calibration_score"] = calibration
    report["gate"] = gate
    report["observability"] = obs_overhead()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small scales for a fast smoke run")
    parser.add_argument("--out", type=Path, default=RESULT_PATH)
    parser.add_argument(
        "--steady-scales", default=None,
        help="comma-separated steady-trace sizes (default quick: 2000; "
             "full: 10000,100000,1000000)",
    )
    parser.add_argument(
        "--obs-only", action="store_true",
        help="re-measure only the observability overhead section and "
             "merge it into the existing --out JSON (the gate and the "
             "other sections are left untouched)",
    )
    args = parser.parse_args(argv)
    if args.obs_only:
        report = (
            json.loads(args.out.read_text()) if args.out.exists() else {}
        )
        report["observability"] = obs_overhead()
    else:
        if args.steady_scales is not None:
            scales = [int(s) for s in args.steady_scales.split(",") if s]
        else:
            scales = [2_000] if args.quick else [10_000, 100_000, 1_000_000]
        report = generate(args.quick, scales)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
