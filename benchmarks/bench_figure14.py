"""Figure 14 — overhead of the elastic scaling mechanisms.

Paper anchors: proactive scale-down costs <2% over a plain prefill at
every (BS, Len); multi-master scale-up buys ~2x at large batch sizes and
costs <10% at small ones.  The reactive-migration alternative (what the
baselines pay) is also priced for contrast.
"""

from repro.experiments.microbench import figure14a, figure14b


def test_figure14a_scale_down(benchmark):
    rows = benchmark(figure14a)
    worst_proactive = max(r.proactive_overhead for r in rows)
    worst_reactive = max(r.reactive_overhead for r in rows)
    benchmark.extra_info["worst_proactive_overhead"] = round(worst_proactive, 4)
    benchmark.extra_info["worst_reactive_overhead"] = round(worst_reactive, 4)
    benchmark.extra_info["paper_anchor"] = "proactive < 2%"
    assert worst_proactive < 0.02
    assert worst_reactive > worst_proactive


def test_figure14b_scale_up(benchmark):
    rows = benchmark(figure14b)
    big = next(r for r in rows if r.batch_size == 1024)
    small = next(r for r in rows if r.batch_size == 1)
    benchmark.extra_info["speedup_bs1024_4masters"] = round(big.speedup_4_masters, 2)
    benchmark.extra_info["overhead_bs1"] = round(abs(small.speedup_4_masters - 1), 4)
    benchmark.extra_info["paper_anchor"] = "~2x at large BS, <10% at small BS"
    assert big.speedup_4_masters > 1.5
    assert abs(small.speedup_4_masters - 1.0) < 0.10
