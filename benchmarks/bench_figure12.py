"""Figure 12 — P90 goodput under Zipf length skew: ESP vs. static
parallelisms.

Paper anchors: LoongServe improves P90 goodput by 2.33x / 1.98x / 1.53x
over the best static strategy at Zipf 1.0 / 1.2 / 1.4; neither the
static hybrid (TP=2, SP=4) nor replication (TP=2 x 4) handles the
dynamic mix.
"""

import pytest

from repro.experiments.endtoend import figure12


@pytest.mark.parametrize("zipf", [1.2, 1.4])
def test_figure12_zipf(benchmark, bench_scale, zipf):
    result = benchmark.pedantic(
        lambda: figure12(zipf_params=[zipf], scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    curves = {c.system: c for c in result[zipf]}
    loong = curves["loongserve"].goodput()
    benchmark.extra_info["loongserve_goodput"] = loong
    for name in ("vllm", "static-sp", "replicated-tp2"):
        benchmark.extra_info[f"{name}_goodput"] = curves[name].goodput()

    # LoongServe beats the *fixed-DoP* static strategies; replication is
    # competitive on short-skewed traffic (its weakness — fragmentation —
    # shows on the Zipf=1.0 long tail, covered by EXPERIMENTS.md).
    assert loong >= curves["vllm"].goodput()
    assert loong >= curves["static-sp"].goodput()
