"""Fleet-scale routing-policy comparison on the Mixed workload.

Four LoongServe replicas behind each routing policy sweep the fleet's
rate grid.  Anchor: at the highest swept rate, length-aware routing —
which shards long-context requests away from the short-request replicas
(the Figure 11 interference scenario, applied fleet-wide) — beats
round-robin on mean normalised per-token latency.
"""

from repro.experiments.fleet import length_aware_advantage, router_sweep


def test_fleet_router_sweep(benchmark, bench_scale):
    curves = benchmark.pedantic(
        lambda: router_sweep(scale=bench_scale), rounds=1, iterations=1
    )
    by_name = {c.router: c for c in curves}
    assert set(by_name) == {
        "round-robin", "least-outstanding", "least-kv", "length-aware"
    }

    # Every policy must actually serve the workload at every rate.
    for fleet_curve in curves:
        for point in fleet_curve.curve.points:
            assert point.finished == point.total

    advantage = length_aware_advantage(curves)
    benchmark.extra_info["length_aware_per_token_ratio"] = advantage["per_token_ratio"]
    benchmark.extra_info["length_aware_attainment_delta"] = advantage["attainment_delta"]
    for fleet_curve in curves:
        benchmark.extra_info[f"{fleet_curve.router}_goodput"] = (
            fleet_curve.curve.goodput()
        )

    # The headline: isolating the long population pays off under load.
    assert advantage["per_token_ratio"] > 1.0
