"""Fault-tolerant serving: crash, KV-loss failover, recovery.

A replica of a 3-replica long-context session fleet crashes mid-run.
Anchors: no request is ever lost or duplicated under the crash, the
fleet's availability dips and recovers (the capacity timeline shows the
downtime window), and KV-migration failover (affinity placement over
the prefix copies migration left on the survivors) beats naive
round-robin re-dispatch on post-crash P99 *and* mean per-token latency.

The P99 gap needs a loaded fleet, so the failover sweep pins its scale
to 1.0 regardless of --quick (the availability sweep scales down).
"""

from repro.experiments.faults import (
    availability_sweep,
    failover_advantage,
    failover_sweep,
)


def test_migration_failover_beats_naive_redispatch(benchmark, bench_scale):
    points = benchmark.pedantic(
        lambda: failover_sweep(scale=1.0), rounds=1, iterations=1
    )
    by_name = {p.variant: p for p in points}
    assert set(by_name) == {"no-fault", "naive", "failover"}

    # The crash fired and cost real state in both faulted variants...
    for name in ("naive", "failover"):
        assert by_name[name].crashes == 1
        assert by_name[name].lost_kv_tokens > 0
        assert by_name[name].availability < 1.0
    assert by_name["no-fault"].crashes == 0

    # ...yet no variant lost a single request.
    for point in points:
        assert point.finished == point.total

    advantage = failover_advantage(points)
    benchmark.extra_info.update(advantage)

    # The headline: failover over migrated KV copies recovers the tail
    # markedly faster than blind re-dispatch.
    assert advantage["post_crash_p99_ratio"] > 1.0
    assert advantage["post_crash_mean_ratio"] > 1.0
    # The crash cannot cost failover more than a few points of the
    # no-fault hit rate (the survivors hold copies).
    assert by_name["failover"].hit_rate >= 0.9 * by_name["no-fault"].hit_rate


def test_availability_degrades_gracefully_under_poisson_faults(
    benchmark, bench_scale
):
    sweep = benchmark.pedantic(
        lambda: availability_sweep(scale=min(bench_scale, 0.5)),
        rounds=1, iterations=1,
    )
    availabilities = [point.availability for _, point in sweep]
    benchmark.extra_info["availabilities"] = availabilities

    # Tighter MTBF => more crashes and less availability end to end
    # (each MTBF draws its own schedule, so only the endpoints — not
    # every intermediate step — are guaranteed ordered).
    crash_counts = [point.crashes for _, point in sweep]
    assert crash_counts[0] < crash_counts[-1]
    assert availabilities[0] > availabilities[-1]
    assert all(a < 1.0 for a in availabilities)

    # Token conservation is absolute: every request finishes even with
    # several crashes landing on live traffic.
    for _, point in sweep:
        assert point.finished == point.total
