"""Elastic fleet control plane vs. static routing under bursty load.

Four LoongServe replicas serve an on/off bursty Mixed trace under each
actuator combination.  Anchors: work stealing beats static route-once
placement on both mean and P99 normalised per-token latency at equal
replica count, the full elastic stack also pays for fewer
replica-seconds, and on the burst-then-lull session scenario KV
migration preserves at least 80% of the static affinity router's token
hit rate after the autoscaler consolidates the fleet.
"""

from repro.experiments.elastic_fleet import (
    bursty_mixed_sweep,
    elastic_advantage,
    migration_hit_preservation,
    session_rebalance_sweep,
)


def test_elastic_fleet_beats_static_on_bursty_mixed(benchmark, bench_scale):
    points = benchmark.pedantic(
        lambda: bursty_mixed_sweep(scale=bench_scale), rounds=1, iterations=1
    )
    by_name = {p.variant: p for p in points}
    assert set(by_name) == {
        "static", "autoscale", "steal", "steal+migrate", "elastic",
    }

    # Every variant must actually serve the workload.
    for point in points:
        assert point.finished == point.total

    advantage = elastic_advantage(points)
    benchmark.extra_info["per_token_ratio"] = advantage["per_token_ratio"]
    benchmark.extra_info["p99_ratio"] = advantage["p99_ratio"]
    benchmark.extra_info["capacity_ratio"] = advantage["capacity_ratio"]

    # The headline: the closed loop absorbs bursts a static fleet eats.
    assert advantage["per_token_ratio"] > 1.0
    assert advantage["p99_ratio"] > 1.0
    # Autoscaling parks capacity between bursts.
    assert advantage["capacity_ratio"] > 1.0
    # Stealing actually fired (otherwise the ratios are luck).
    assert by_name["elastic"].stolen > 0


def test_kv_migration_preserves_session_hit_rate(benchmark, bench_scale):
    points = benchmark.pedantic(
        lambda: session_rebalance_sweep(scale=max(bench_scale, 0.6)),
        rounds=1, iterations=1,
    )
    preservation = migration_hit_preservation(points)
    benchmark.extra_info.update(preservation)

    assert preservation["static_hit_rate"] > 0.5
    # The PR gate: rebalanced sessions keep >= 80% of their cache hits.
    assert preservation["elastic_retention"] >= 0.8
