"""QoS serving: multi-tenant SLO protection at equal capacity.

An overloaded 3-replica fleet serves three SLO tiers (interactive
sessions, standard singles, batch long-context).  Anchors: the full QoS
stack (deadline-feasibility admission + earliest-slack dispatch with
batch-tier preemption + slack-predicting ``slo`` placement) lifts
interactive-tier attainment well above the FCFS baseline without
costing total goodput, and the closed-loop (arrival-feedback) session
driver sustains the interactive tier end-to-end.

The attainment gap needs genuine overload, so the sweep pins its scale
to 1.0 regardless of --quick (the closed-loop coda scales down).
"""

from repro.experiments.qos import (
    closed_loop_attainment,
    qos_advantage,
    qos_sweep,
)


def test_qos_protects_interactive_tier_under_overload(benchmark, bench_scale):
    points = benchmark.pedantic(
        lambda: qos_sweep(scale=1.0), rounds=1, iterations=1
    )
    by_name = {p.variant: p for p in points}
    assert set(by_name) == {"fcfs", "priority", "qos"}

    advantage = qos_advantage(points)
    benchmark.extra_info.update(advantage)

    # The headline: the full stack materially lifts the tight-deadline
    # tier at equal capacity (experiment tuned to ~1.36x; asserted with
    # margin), without giving total goodput back.
    assert advantage["interactive_attainment_ratio"] >= 1.25
    assert advantage["goodput_ratio"] >= 0.95
    # The loose-deadline tier funds the protection but keeps its own
    # (100x) contract.
    assert advantage["batch_qos"] >= 0.9
    # Scheduling-only ablation already helps; the full stack never does
    # worse than it on the protected tier.
    assert (
        by_name["qos"].attainment("interactive")
        >= by_name["priority"].attainment("interactive") - 1e-9
    )


def test_closed_loop_sessions_meet_interactive_slo(benchmark, bench_scale):
    closed = benchmark.pedantic(
        lambda: closed_loop_attainment(scale=min(bench_scale, 0.5)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(closed)
    # Arrival feedback self-throttles: with the full stack the
    # interactive tier holds its 10x deadline almost everywhere.
    assert closed["submitted"] > 0
    assert closed["attainment"] >= 0.9
