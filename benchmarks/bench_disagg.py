"""Disaggregated prefill/decode pools vs. equal-hardware monolithic.

Four replicas serve the same bursty trace twice: once monolithic (every
replica interleaves prefill and decode) and once split into prefill and
decode pools with priced KV handoffs.  Anchors: on the chat-heavy Mixed
scenario and on the Sessions scenario the disaggregated fleet attains
at least as many phase-SLO (TTFT + TPOT) requests as the monolithic one
over the identical offered trace, every request rides exactly one
prefill->decode handoff, and the fleet report carries the tiered-KV
accounting the disagg side runs with.
"""

from repro.experiments.disagg import (
    disagg_advantage,
    disagg_mixed_sweep,
    disagg_session_sweep,
)


def test_disagg_goodput_on_bursty_chat_mixed(benchmark, bench_scale):
    points = benchmark.pedantic(
        lambda: disagg_mixed_sweep(scale=bench_scale), rounds=1, iterations=1
    )
    mono, disagg = points
    assert mono.variant == "monolithic"
    assert disagg.variant.startswith("disagg")

    # Both fleets serve the full trace (nothing lost to the handoff path).
    assert mono.total == disagg.total
    advantage = disagg_advantage(points)
    benchmark.extra_info["mono_attained"] = mono.attained
    benchmark.extra_info["disagg_attained"] = disagg.attained
    benchmark.extra_info["goodput_ratio"] = advantage["goodput_ratio"]
    benchmark.extra_info["tpot_p90_ratio"] = advantage["tpot_p90_ratio"]
    benchmark.extra_info["handoffs"] = disagg.handoffs
    benchmark.extra_info["tier_offloaded"] = disagg.tier_offloaded

    # The PR gate: equal hardware, identical trace, at least equal
    # phase-SLO goodput (attained requests over the same offered window).
    assert disagg.attained >= mono.attained
    # Decode isolation is the mechanism: TPOT tail no worse than mono's
    # (5% slack: at tiny trace sizes the P90s tie within a fraction of a
    # millisecond).
    assert disagg.tpot_p90 <= mono.tpot_p90 * 1.05
    # Every request crossed the fabric exactly once.
    assert disagg.handoffs == disagg.total
    assert disagg.handoff_tokens > 0
    assert mono.handoffs == 0


def test_disagg_holds_goodput_on_sessions(benchmark, bench_scale):
    points = benchmark.pedantic(
        lambda: disagg_session_sweep(scale=bench_scale), rounds=1, iterations=1
    )
    mono, disagg = points
    assert mono.total == disagg.total
    benchmark.extra_info["mono_attained"] = mono.attained
    benchmark.extra_info["disagg_attained"] = disagg.attained
    benchmark.extra_info["handoffs"] = disagg.handoffs

    # Against the strongest monolithic baseline (affinity routing), the
    # split fleet holds phase-SLO goodput on the identical trace.
    assert disagg.attained >= mono.attained
    assert disagg.handoffs == disagg.total
