"""Benchmark defaults: every figure bench runs once per round (the
experiments are deterministic), with reduced workload scale so the full
suite regenerates every paper figure in minutes.  ``--quick`` shrinks the
workloads further for the CI smoke job, which only guards that every
perf entry point still runs and meets its anchor assertions."""

import pytest

# Scale factor applied to serving-figure request counts.  1.0 reproduces
# the EXPERIMENTS.md tables; the benchmark default keeps CI fast.
BENCH_SCALE = 0.35
QUICK_SCALE = 0.15


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: shrink benchmark workloads to the minimum that "
             "still exercises every anchor assertion",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> float:
    return QUICK_SCALE if request.config.getoption("--quick") else BENCH_SCALE
