"""Benchmark defaults: every figure bench runs once per round (the
experiments are deterministic), with reduced workload scale so the full
suite regenerates every paper figure in minutes."""

import pytest

# Scale factor applied to serving-figure request counts.  1.0 reproduces
# the EXPERIMENTS.md tables; the benchmark default keeps CI fast.
BENCH_SCALE = 0.35


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE
