"""Figure 2 — scalability of requests with different lengths vs. TP degree.

Paper anchors: prefilling 100K tokens is ~106x slower than 1K on 8 GPUs;
prefill scales with TP for long prompts, decode barely scales except at
long context.
"""

from repro.experiments.microbench import figure2


def test_figure2_regenerates(benchmark):
    rows = benchmark(figure2)
    long_prefill = next(r for r in rows if r.phase == "prefill" and r.length == 100_000)
    short_prefill = next(r for r in rows if r.phase == "prefill" and r.length == 10)
    short_decode = next(r for r in rows if r.phase == "decode" and r.length == 100)

    ratio_100k_1k = (
        long_prefill.times[8]
        / next(r for r in rows if r.phase == "prefill" and r.length == 1_000).times[8]
    )
    benchmark.extra_info["prefill_100k_over_1k"] = round(ratio_100k_1k, 1)
    benchmark.extra_info["paper_anchor_ratio"] = 105.97
    benchmark.extra_info["long_prefill_speedup_tp2_to_tp8"] = round(
        long_prefill.speedup_at_max_tp, 2
    )
    benchmark.extra_info["short_decode_speedup"] = round(
        short_decode.speedup_at_max_tp, 2
    )

    assert ratio_100k_1k > 50
    assert long_prefill.speedup_at_max_tp > 2.5
    assert short_prefill.speedup_at_max_tp < 2.0
    assert short_decode.speedup_at_max_tp < 1.3
