"""Figure 11 — multi-node (16 GPU) performance on the Mixed workload.

Paper anchors: LoongServe scales across two nodes (ESP degree 8) and
improves total throughput up to 1.86x vs per-node vLLM and 3.37x vs
per-node LightLLM-SplitFuse, with lower output latency at every rate.
"""

from repro.experiments.endtoend import figure11


def test_figure11_regenerates(benchmark, bench_scale):
    curves = benchmark.pedantic(
        lambda: figure11(scale=bench_scale), rounds=1, iterations=1
    )
    by_name = {c.system: c for c in curves}
    loong = by_name["loongserve"]
    benchmark.extra_info["loongserve_goodput"] = loong.goodput()
    benchmark.extra_info["vllm_goodput"] = by_name["vllm"].goodput()
    benchmark.extra_info["splitfuse_goodput"] = by_name["splitfuse"].goodput()

    assert loong.goodput() >= by_name["vllm"].goodput()
    assert loong.goodput() >= by_name["splitfuse"].goodput()
    # Per-token latency at the top rate: LoongServe leads.
    final = {name: c.points[-1].per_token for name, c in by_name.items()}
    assert final["loongserve"] <= final["vllm"] * 1.05
    assert final["loongserve"] <= final["splitfuse"] * 1.05
