"""Figure 10 — end-to-end latency vs. rate, four datasets x five systems.

Paper anchors (§7.2): LoongServe improves throughput up to 3.85x vs
chunked prefill, 5.81x vs prefill-decode disaggregation, 4.64x vs vLLM;
its output latency stays low because decoding is isolated from prefill.

Each dataset gets its own benchmark so the suite reports per-dataset
regeneration times; assertions check the orderings the paper reports.
"""

import pytest

from repro.experiments.endtoend import FIGURE10_RATES, figure10


def _curves_by_name(curves):
    return {c.system: c for c in curves}


@pytest.mark.parametrize("dataset", ["sharegpt", "leval", "lveval", "mixed"])
def test_figure10_dataset(benchmark, bench_scale, dataset):
    result = benchmark.pedantic(
        lambda: figure10(datasets=[dataset], scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    curves = _curves_by_name(result[dataset])
    loong = curves["loongserve"]
    benchmark.extra_info["rates"] = FIGURE10_RATES[dataset]
    benchmark.extra_info["loongserve_goodput"] = loong.goodput()
    for name, curve in curves.items():
        benchmark.extra_info[f"{name}_final_per_token"] = round(
            curve.points[-1].per_token, 4
        )

    # LoongServe never loses the rate sweep on aggregate per-token latency.
    top_rate_points = {name: c.points[-1] for name, c in curves.items()}
    loong_final = top_rate_points["loongserve"].per_token
    for name, point in top_rate_points.items():
        if name == "loongserve":
            continue
        assert loong_final <= point.per_token * 1.10, (
            f"{name} beat LoongServe at the top rate on {dataset}"
        )
    # Goodput: LoongServe >= every baseline on every dataset.
    for name, curve in curves.items():
        assert loong.goodput() >= curve.goodput(), name
