"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which require ``bdist_wheel``) fail.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works without wheel.  Metadata lives in
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
