"""Top-level configuration objects for the LoongServe reproduction.

``SystemConfig`` bundles the cluster, model, and parallelism settings a
serving system is launched with.  It corresponds to the launch-time choices
in the paper (§7.1): LoongServe ran with tensor parallelism 2 × elastic
sequence parallelism 4 on one 8-GPU node, baselines with TP=8, etc.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import A800_80GB, GPUSpec
from repro.model.spec import LWM_7B_1M, ModelSpec


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables of the LoongServe global manager (§5).

    ``decode_compute_bound_bs`` — batch-size threshold past which the decode
    phase is treated as compute bound and scale-up is considered (§5.4; the
    paper profiles this in advance).

    ``prefill_tipping_tokens`` — token count at which a prefill batch stops
    being memory bound (§5.1's "tipping point"); adding requests past this
    point only extends execution time.

    ``max_batch_size`` — cap on concurrent decoding requests per group,
    mirroring the slot-count cap in real systems.

    ``sib_refresh_interval`` — iterations between re-fitting the analytical
    model from the SIB (the paper refits offline; we refresh periodically).

    ``enable_prefix_cache`` — keep finished requests' KV in a radix
    prefix cache (``repro.sessions``) so multi-turn follow-ups prefill
    only their uncached suffix.  Off by default: single-turn behaviour is
    bit-identical with the cache disabled.

    ``max_cached_tokens`` — KV-slot budget for the prefix cache; inserts
    beyond it LRU-evict cold extents so cached history can never starve
    live request KV.  ``None`` (default) leaves the cache unbounded,
    preserving prior behaviour.

    ``sim_mode`` — ``"discrete"`` (default) fires one event per decode
    iteration and is the bit-identical reference; ``"hybrid"`` lets
    steady-state decode stretches advance in closed form via the fluid
    approximation (``repro.sim.fluid``), falling back to discrete events
    on any transient.  Aggregate metrics agree within tolerance but
    per-event traces differ — golden-signature gates require discrete.

    ``fluid_min_iterations`` / ``fluid_max_window_s`` — hybrid-mode
    window shape: the per-batch average iteration count below which a
    window is not worth its bookkeeping (the discrete path runs
    instead), and the wall-clock cap bounding how long batch membership
    and master sets stay frozen.  Ignored in discrete mode.

    ``kv_tier_policy`` — arm host/SSD KV offload tiers for the prefix
    cache (``repro.kvcache.tiers``): evicted extents demote into pinned
    host memory, spill to NVMe under host pressure, and swap back in on
    a prefix hit (the transfer priced into the prefill).  One of
    ``"lru"``/``"fifo"``/``"lifo"`` (the tier victim policy); ``None``
    (default) keeps eviction terminal — bit-identical prior behaviour.
    Requires ``enable_prefix_cache``.

    ``kv_host_tokens`` / ``kv_ssd_tokens`` — per-replica token capacity
    of the host and SSD tiers (ignored until ``kv_tier_policy`` is set).
    """

    decode_compute_bound_bs: int = 128
    prefill_tipping_tokens: int = 8192
    max_batch_size: int = 1024
    watermark_fraction: float = 0.02
    enable_scale_up: bool = True
    enable_scale_down: bool = True
    enable_multi_master: bool = True
    enable_prefix_cache: bool = False
    max_cached_tokens: int | None = None
    sib_refresh_interval: int = 512
    scheduling_overhead_s: float = 0.0005
    sim_mode: str = "discrete"
    fluid_min_iterations: int = 4
    fluid_max_window_s: float = 1.0
    kv_tier_policy: str | None = None
    kv_host_tokens: int = 200_000
    kv_ssd_tokens: int = 1_000_000

    def __post_init__(self) -> None:
        if self.sim_mode not in ("discrete", "hybrid"):
            raise ValueError(
                f"sim_mode must be 'discrete' or 'hybrid', got {self.sim_mode!r}"
            )
        if self.kv_tier_policy is not None:
            if self.kv_tier_policy not in ("lru", "fifo", "lifo"):
                raise ValueError(
                    "kv_tier_policy must be 'lru', 'fifo', or 'lifo', "
                    f"got {self.kv_tier_policy!r}"
                )
            if not self.enable_prefix_cache:
                raise ValueError("kv_tier_policy requires enable_prefix_cache")
            if self.kv_host_tokens < 0 or self.kv_ssd_tokens < 0:
                raise ValueError("KV tier capacities must be >= 0")
        if self.fluid_min_iterations < 1:
            raise ValueError(
                f"fluid_min_iterations must be >= 1, got {self.fluid_min_iterations}"
            )
        if self.fluid_max_window_s <= 0:
            raise ValueError(
                f"fluid_max_window_s must be positive, got {self.fluid_max_window_s}"
            )


@dataclass(frozen=True)
class SystemConfig:
    """Launch-time configuration of a serving system instance."""

    cluster: Cluster
    model: ModelSpec
    tensor_parallel: int = 2
    max_sequence_parallel: int = 4
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    kv_memory_fraction: float = 0.70

    def __post_init__(self) -> None:
        gpus_needed = self.tensor_parallel * self.max_sequence_parallel
        if gpus_needed > self.cluster.num_gpus:
            raise ValueError(
                f"TP={self.tensor_parallel} x SP={self.max_sequence_parallel} needs "
                f"{gpus_needed} GPUs but cluster has {self.cluster.num_gpus}"
            )

    @property
    def num_instances(self) -> int:
        """Number of elastic instances (each spans ``tensor_parallel`` GPUs)."""
        return self.cluster.num_gpus // self.tensor_parallel

    @property
    def kv_slots_per_instance(self) -> int:
        """Token-granularity KV cache capacity of one elastic instance.

        Weights are replicated per instance and sharded TP-ways inside it;
        the remainder of GPU memory (scaled by ``kv_memory_fraction`` to
        account for activations/buffers) holds KV slots.
        """
        gpu_bytes = self.cluster.gpu.memory_bytes * self.tensor_parallel
        weight_bytes = self.model.weight_bytes
        available = (gpu_bytes - weight_bytes) * self.kv_memory_fraction
        if available <= 0:
            raise ValueError(
                f"model weights ({weight_bytes / 2**30:.1f} GiB) do not fit in "
                f"{self.tensor_parallel} x {self.cluster.gpu.name}"
            )
        return int(available // self.model.kv_bytes_per_token)

    @property
    def total_kv_slots(self) -> int:
        return self.kv_slots_per_instance * self.num_instances

    def with_parallelism(self, tensor_parallel: int, max_sequence_parallel: int) -> SystemConfig:
        """Return a copy with a different launch-time parallelism layout."""
        return replace(
            self,
            tensor_parallel=tensor_parallel,
            max_sequence_parallel=max_sequence_parallel,
        )


def default_config(
    num_gpus: int = 8,
    gpu: GPUSpec = A800_80GB,
    model: ModelSpec = LWM_7B_1M,
    tensor_parallel: int = 2,
    max_sequence_parallel: int | None = None,
    gpus_per_node: int = 8,
    scheduler: SchedulerConfig | None = None,
) -> SystemConfig:
    """Build the paper's default single-node (or multi-node) configuration.

    With the defaults this is the §7.1 testbed: one node of eight A800-80GB
    GPUs serving LWM-1M-Text (Llama-2-7B architecture) with TP=2 and up to
    four elastic instances (ESP degree 4).
    """
    cluster = Cluster.homogeneous(num_gpus=num_gpus, gpu=gpu, gpus_per_node=gpus_per_node)
    if max_sequence_parallel is None:
        max_sequence_parallel = num_gpus // tensor_parallel
    return SystemConfig(
        cluster=cluster,
        model=model,
        tensor_parallel=tensor_parallel,
        max_sequence_parallel=max_sequence_parallel,
        scheduler=scheduler or SchedulerConfig(),
    )
