"""Multi-turn conversation workload generation (the ``Sessions`` dataset).

A session is a chatbot/agent-loop conversation: turn ``t``'s prompt is
the full context so far (all previous prompts and model outputs) plus a
fresh user message, so consecutive turns share an ever-growing token
prefix.  The sampler draws, per session:

* **turn count** — geometric with mean ``mean_turns`` (capped),
* **first prompt / per-turn growth** — clipped lognormals, ShareGPT-like
  (short chatty messages; the context grows by the previous output plus
  the new user message each turn),
* **output length** — clipped lognormal, ShareGPT's chatty decode,
* **think time** — exponential gap between a turn's arrival and the
  next, plus a service-time allowance proportional to the output length.

The trace is open-loop (arrival times fixed at generation time, like
every other trace here).  The think-time allowance makes the common case
"previous turn finished before the next arrives", but under overload a
turn can arrive while its predecessor is still running — it then simply
misses the part of the prefix not yet cached, which is exactly how a
real radix cache behaves.

Token ids are synthetic but *consistent*: each turn's answer is
pre-sampled into ``Request.output_token_ids`` and embedded in the next
turn's prompt, and the serving loop reads the same field when donating a
finished request's KV to the prefix cache — so cache matching works end
to end without modelling a tokenizer, and a given seed reproduces the
exact token streams.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.types import Request, next_request_id
from repro.workloads.arrival import PoissonArrivals
from repro.workloads.datasets import LengthSpec

# Synthetic token-id vocabulary.  Large enough that accidental cross-
# session prefix collisions are negligible (~1/VOCAB_SIZE per request).
VOCAB_SIZE = 50_000

# Seconds of service-time allowance per output token when spacing turns;
# a rough decode-speed guess, only used to make open-loop arrival gaps
# realistic (see module docstring).
_SERVICE_ALLOWANCE_S = 0.03

_session_ids = itertools.count()


def next_session_id() -> int:
    """Process-unique monotonically increasing session id."""
    return next(_session_ids)


@dataclass(frozen=True)
class SessionSpec:
    """Distribution knobs of the Sessions conversation sampler."""

    name: str = "Sessions"
    mean_turns: float = 4.0
    max_turns: int = 12
    first_input: LengthSpec = field(
        default=LengthSpec(log_mean=math.log(320.0), log_sigma=0.8, minimum=16, maximum=2300)
    )
    turn_input: LengthSpec = field(
        default=LengthSpec(log_mean=math.log(120.0), log_sigma=0.7, minimum=8, maximum=1000)
    )
    output: LengthSpec = field(
        default=LengthSpec(log_mean=math.log(200.0), log_sigma=0.9, minimum=4, maximum=1500)
    )
    think_time_mean_s: float = 8.0
    # Sessions whose next prompt would exceed this context length end
    # early (the client's context-window cutoff).
    max_context_len: int = 32_000
    # Arrival feedback: False = open-loop (arrivals fixed at generation
    # time, think time plus a service allowance), True = closed-loop
    # (turn t+1 is submitted think-time after turn t *finishes*).  A
    # closed-loop workload has no static trace — build it with
    # :func:`make_session_workload` and serve via ``run_driven``.
    closed_loop: bool = False

    def __post_init__(self) -> None:
        if self.mean_turns < 1.0:
            raise ValueError(f"mean_turns must be >= 1, got {self.mean_turns}")
        if self.max_turns < 1:
            raise ValueError(f"max_turns must be >= 1, got {self.max_turns}")

    @property
    def max_total_len(self) -> int:
        return self.max_context_len + self.output.maximum


SESSIONS = SessionSpec()


@dataclass(frozen=True)
class TurnPlan:
    """One pre-sampled conversation turn.

    ``arrival_time`` is the open-loop absolute arrival (think time plus
    the service-time allowance, as before); ``think_gap`` is the raw
    think-time draw alone, which the closed-loop driver applies relative
    to the *previous turn's finish* instead.
    """

    prompt: tuple[int, ...]
    output: tuple[int, ...]
    arrival_time: float
    think_gap: float


@dataclass(frozen=True)
class SessionPlan:
    """One conversation's pre-sampled turns (tokens chain turn to turn)."""

    session_id: int
    start_time: float
    turns: tuple[TurnPlan, ...]
    qos: str | None = None


def plan_sessions(
    spec: SessionSpec = SESSIONS,
    rate: float = 1.0,
    num_sessions: int = 20,
    seed: int = 0,
    qos_mix: dict[str, float] | None = None,
) -> list[SessionPlan]:
    """Sample every session's turns, tokens, and think times.

    The sampling order is exactly the historical ``make_session_trace``
    order, so a given seed keeps producing the same conversations; the
    plans just make the think-time structure explicit so the same trace
    can be replayed open-loop (fixed arrivals) or closed-loop (next turn
    arrives think-time after the previous turn *finishes*).

    ``qos_mix`` tags whole sessions with SLO classes from a separate RNG
    stream (a conversation is one tenant's workload); ``None`` leaves
    the plans untagged and the sampling untouched.
    """
    rng = np.random.default_rng(seed)
    session_starts = PoissonArrivals(rate=rate).times(num_sessions, rng)
    plans: list[SessionPlan] = []
    for start in session_starts:
        session_id = next_session_id()
        turns = min(int(rng.geometric(1.0 / spec.mean_turns)), spec.max_turns)
        history: list[int] = []
        arrival = float(start)
        turn_plans: list[TurnPlan] = []
        for turn in range(turns):
            length_spec = spec.first_input if turn == 0 else spec.turn_input
            user_len = length_spec.sample(rng)
            user_tokens = [int(t) for t in rng.integers(0, VOCAB_SIZE, size=user_len)]
            prompt = history + user_tokens
            if turn > 0 and len(prompt) > spec.max_context_len:
                break  # context-window cutoff ends the session
            output_len = spec.output.sample(rng)
            output_tokens = [
                int(t) for t in rng.integers(0, VOCAB_SIZE, size=output_len)
            ]
            think_gap = float(rng.exponential(spec.think_time_mean_s))
            turn_plans.append(
                TurnPlan(
                    prompt=tuple(prompt),
                    output=tuple(output_tokens),
                    arrival_time=arrival,
                    think_gap=think_gap,
                )
            )
            history = prompt + output_tokens
            arrival += think_gap + _SERVICE_ALLOWANCE_S * output_len
        plans.append(
            SessionPlan(
                session_id=session_id,
                start_time=float(start),
                turns=tuple(turn_plans),
            )
        )
    if qos_mix is not None:
        plans = tag_session_plans(plans, qos_mix, seed=seed)
    return plans


def tag_session_plans(
    plans: list[SessionPlan], qos_mix: dict[str, float], seed: int = 0
) -> list[SessionPlan]:
    """Assign each session an SLO class drawn from ``qos_mix``.

    Uses a dedicated RNG stream so tagging never perturbs the sampled
    conversations themselves.
    """
    from repro.qos.classes import qos_mix_sampler

    draw = qos_mix_sampler(qos_mix, seed=seed)
    return [replace(plan, qos=draw()) for plan in plans]


def make_session_trace(
    spec: SessionSpec = SESSIONS,
    rate: float = 1.0,
    num_sessions: int = 20,
    seed: int = 0,
    qos_mix: dict[str, float] | None = None,
) -> list[Request]:
    """Draw a Poisson-arrival multi-turn trace (``rate`` in sessions/s).

    Returns the requests of every turn of every session, sorted by
    arrival time, with ``session_id``/``turn``/``token_ids`` populated so
    prefix caching and affinity routing can chain the turns.  The trace
    is open-loop; see :mod:`repro.sessions.closed_loop` for the feedback
    variant driven off the same plans.
    """
    if spec.closed_loop:
        raise ValueError(
            "a closed-loop SessionSpec has no static trace (arrival times "
            "are run outcomes); build the workload with "
            "make_session_workload and serve it via run_driven"
        )
    plans = plan_sessions(
        spec, rate=rate, num_sessions=num_sessions, seed=seed, qos_mix=qos_mix
    )
    requests: list[Request] = []
    for plan in plans:
        for turn, turn_plan in enumerate(plan.turns):
            requests.append(
                Request(
                    request_id=next_request_id(),
                    input_len=len(turn_plan.prompt),
                    output_len=len(turn_plan.output),
                    arrival_time=turn_plan.arrival_time,
                    session_id=plan.session_id,
                    turn=turn,
                    token_ids=turn_plan.prompt,
                    output_token_ids=turn_plan.output,
                    qos=plan.qos,
                )
            )
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return requests


def make_session_workload(
    spec: SessionSpec = SESSIONS,
    rate: float = 1.0,
    num_sessions: int = 20,
    seed: int = 0,
    qos_mix: dict[str, float] | None = None,
):
    """Build the workload the spec's arrival model calls for.

    Open-loop specs return a static request trace (serve via ``run``);
    ``spec.closed_loop=True`` returns a
    :class:`~repro.sessions.closed_loop.ClosedLoopDriver` over the same
    pre-sampled conversations (serve via ``run_driven``).  Both draw
    identical sessions for a given seed — only the arrival coupling
    differs.
    """
    if not spec.closed_loop:
        return make_session_trace(
            spec, rate=rate, num_sessions=num_sessions, seed=seed,
            qos_mix=qos_mix,
        )
    from repro.sessions.closed_loop import ClosedLoopDriver

    plans = plan_sessions(
        spec, rate=rate, num_sessions=num_sessions, seed=seed, qos_mix=qos_mix
    )
    return ClosedLoopDriver(plans)
