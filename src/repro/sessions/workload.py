"""Multi-turn conversation workload generation (the ``Sessions`` dataset).

A session is a chatbot/agent-loop conversation: turn ``t``'s prompt is
the full context so far (all previous prompts and model outputs) plus a
fresh user message, so consecutive turns share an ever-growing token
prefix.  The sampler draws, per session:

* **turn count** — geometric with mean ``mean_turns`` (capped),
* **first prompt / per-turn growth** — clipped lognormals, ShareGPT-like
  (short chatty messages; the context grows by the previous output plus
  the new user message each turn),
* **output length** — clipped lognormal, ShareGPT's chatty decode,
* **think time** — exponential gap between a turn's arrival and the
  next, plus a service-time allowance proportional to the output length.

The trace is open-loop (arrival times fixed at generation time, like
every other trace here).  The think-time allowance makes the common case
"previous turn finished before the next arrives", but under overload a
turn can arrive while its predecessor is still running — it then simply
misses the part of the prefix not yet cached, which is exactly how a
real radix cache behaves.

Token ids are synthetic but *consistent*: each turn's answer is
pre-sampled into ``Request.output_token_ids`` and embedded in the next
turn's prompt, and the serving loop reads the same field when donating a
finished request's KV to the prefix cache — so cache matching works end
to end without modelling a tokenizer, and a given seed reproduces the
exact token streams.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.types import Request, next_request_id
from repro.workloads.arrival import PoissonArrivals
from repro.workloads.datasets import LengthSpec

# Synthetic token-id vocabulary.  Large enough that accidental cross-
# session prefix collisions are negligible (~1/VOCAB_SIZE per request).
VOCAB_SIZE = 50_000

# Seconds of service-time allowance per output token when spacing turns;
# a rough decode-speed guess, only used to make open-loop arrival gaps
# realistic (see module docstring).
_SERVICE_ALLOWANCE_S = 0.03

_session_ids = itertools.count()


def next_session_id() -> int:
    """Process-unique monotonically increasing session id."""
    return next(_session_ids)


@dataclass(frozen=True)
class SessionSpec:
    """Distribution knobs of the Sessions conversation sampler."""

    name: str = "Sessions"
    mean_turns: float = 4.0
    max_turns: int = 12
    first_input: LengthSpec = field(
        default=LengthSpec(log_mean=math.log(320.0), log_sigma=0.8, minimum=16, maximum=2300)
    )
    turn_input: LengthSpec = field(
        default=LengthSpec(log_mean=math.log(120.0), log_sigma=0.7, minimum=8, maximum=1000)
    )
    output: LengthSpec = field(
        default=LengthSpec(log_mean=math.log(200.0), log_sigma=0.9, minimum=4, maximum=1500)
    )
    think_time_mean_s: float = 8.0
    # Sessions whose next prompt would exceed this context length end
    # early (the client's context-window cutoff).
    max_context_len: int = 32_000

    def __post_init__(self) -> None:
        if self.mean_turns < 1.0:
            raise ValueError(f"mean_turns must be >= 1, got {self.mean_turns}")
        if self.max_turns < 1:
            raise ValueError(f"max_turns must be >= 1, got {self.max_turns}")

    @property
    def max_total_len(self) -> int:
        return self.max_context_len + self.output.maximum


SESSIONS = SessionSpec()


def make_session_trace(
    spec: SessionSpec = SESSIONS,
    rate: float = 1.0,
    num_sessions: int = 20,
    seed: int = 0,
) -> list[Request]:
    """Draw a Poisson-arrival multi-turn trace (``rate`` in sessions/s).

    Returns the requests of every turn of every session, sorted by
    arrival time, with ``session_id``/``turn``/``token_ids`` populated so
    prefix caching and affinity routing can chain the turns.
    """
    rng = np.random.default_rng(seed)
    session_starts = PoissonArrivals(rate=rate).times(num_sessions, rng)
    requests: list[Request] = []
    for start in session_starts:
        session_id = next_session_id()
        turns = min(int(rng.geometric(1.0 / spec.mean_turns)), spec.max_turns)
        history: list[int] = []
        arrival = float(start)
        for turn in range(turns):
            length_spec = spec.first_input if turn == 0 else spec.turn_input
            user_len = length_spec.sample(rng)
            user_tokens = [int(t) for t in rng.integers(0, VOCAB_SIZE, size=user_len)]
            prompt = history + user_tokens
            if turn > 0 and len(prompt) > spec.max_context_len:
                break  # context-window cutoff ends the session
            output_len = spec.output.sample(rng)
            output_tokens = [
                int(t) for t in rng.integers(0, VOCAB_SIZE, size=output_len)
            ]
            requests.append(
                Request(
                    request_id=next_request_id(),
                    input_len=len(prompt),
                    output_len=output_len,
                    arrival_time=arrival,
                    session_id=session_id,
                    turn=turn,
                    token_ids=tuple(prompt),
                    output_token_ids=tuple(output_tokens),
                )
            )
            history = prompt + output_tokens
            arrival += float(
                rng.exponential(spec.think_time_mean_s)
                + _SERVICE_ALLOWANCE_S * output_len
            )
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return requests
