"""Closed-loop (feedback) session arrivals.

The open-loop Sessions trace fixes every turn's arrival time at
generation time, with a service-time *allowance* standing in for the
previous turn's latency.  That is fine at low load but wrong under
pressure: a real user cannot type their follow-up before the model
answers, so arrival feedback throttles an overloaded system instead of
piling turns onto it.  The closed-loop driver replays the *same*
pre-sampled conversations (:func:`~repro.sessions.workload.plan_sessions`)
with the realistic coupling: turn ``t+1`` is submitted ``think_gap``
seconds after turn ``t`` *finishes* (or aborts — the client gives up on
that turn but the conversation goes on).

The driver is transport-agnostic: it schedules submissions on any
simulator via a ``submit`` callable, so both a single server
(``LoongServeServer.run_driven``) and a routed fleet
(``FleetServer.run_driven``) can be driven.  Each driver instance is
single-use — it materialises fresh :class:`~repro.types.Request`
objects (arrival times are run outcomes, not inputs) and keeps them in
``requests`` for post-run inspection.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sessions.workload import SessionPlan
from repro.types import Request, next_request_id

__all__ = ["ClosedLoopDriver"]


class ClosedLoopDriver:
    """Submit each session's turns think-time after the previous finish."""

    def __init__(self, sessions: Sequence[SessionPlan]) -> None:
        self.sessions = list(sessions)
        self.requests: list[Request] = []
        self._installed = False

    @property
    def total_requests(self) -> int:
        """Turns the driver will eventually submit (for arrival budgets)."""
        return sum(len(plan.turns) for plan in self.sessions)

    def install(self, sim, submit: Callable[[Request], None]) -> None:
        """Schedule every session's opening turn on ``sim``.

        Follow-up turns chain themselves through the requests'
        ``on_finish`` hooks; the serving system fires the hook whenever
        a request reaches a terminal state (finished *or* aborted).
        """
        if self._installed:
            raise RuntimeError(
                "a ClosedLoopDriver is single-use; build a fresh one per run"
            )
        self._installed = True
        for plan in self.sessions:
            if not plan.turns:
                continue
            sim.call_at(
                plan.start_time,
                (lambda p=plan: self._submit_turn(sim, submit, p, 0)),
                label=f"session-open:{plan.session_id}",
            )

    def _submit_turn(self, sim, submit, plan: SessionPlan, index: int) -> None:
        turn = plan.turns[index]
        request = Request(
            request_id=next_request_id(),
            input_len=len(turn.prompt),
            output_len=len(turn.output),
            arrival_time=sim.now,
            session_id=plan.session_id,
            turn=index,
            token_ids=turn.prompt,
            output_token_ids=turn.output,
            qos=plan.qos,
        )
        if index + 1 < len(plan.turns):

            def _chain(finish_time: float) -> None:
                sim.call_at(
                    finish_time + turn.think_gap,
                    (lambda: self._submit_turn(sim, submit, plan, index + 1)),
                    label=f"session-think:{plan.session_id}:{index + 1}",
                )

            request.on_finish = _chain
        self.requests.append(request)
        submit(request)
