"""Multi-turn session serving: prefix-KV caching and conversation workloads.

Multi-round interaction traffic (ShareGPT / L-Eval style conversations)
extends the previous turn's context on every request, so re-prefilling
from token zero wastes exactly the tokens the previous turns already
computed.  This package adds the pieces that exploit that structure:

* :mod:`repro.sessions.prefix_cache` — a radix-tree **PrefixKVCache**
  mapping token-id prefixes to KV extents resident in a replica's
  unified pool, with ref-counting, LRU leaf eviction under pool
  pressure, and hit/miss/eviction accounting.
* :mod:`repro.sessions.workload` — conversation trace generation: the
  ``Sessions`` dataset samples turn counts, think times, and per-turn
  prompt growth, emitting :class:`~repro.types.Request` objects whose
  ``token_ids`` chain turn over turn.

Scheduler integration lives in :mod:`repro.core.server` (gated by
``SchedulerConfig.enable_prefix_cache``); fleet-level cache-affinity
routing in :mod:`repro.fleet.router` (``--router affinity``).
"""

from repro.sessions.closed_loop import ClosedLoopDriver
from repro.sessions.prefix_cache import PrefixCacheStats, PrefixKVCache
from repro.sessions.workload import (
    SESSIONS,
    SessionPlan,
    SessionSpec,
    TurnPlan,
    make_session_trace,
    make_session_workload,
    plan_sessions,
    tag_session_plans,
)

__all__ = [
    "SESSIONS",
    "ClosedLoopDriver",
    "PrefixCacheStats",
    "PrefixKVCache",
    "SessionPlan",
    "SessionSpec",
    "TurnPlan",
    "make_session_trace",
    "make_session_workload",
    "plan_sessions",
    "tag_session_plans",
]
