"""Radix-tree prefix-KV cache over a replica's unified pool.

Finished requests donate their KV to the tree instead of freeing it: the
full token sequence (prompt + generated output) becomes a cached prefix
for the conversation's next turn, which then prefills only its uncached
suffix.  The design follows the production pattern (SGLang's RadixAttention,
vLLM's prefix caching) adapted to this repo's token-granularity simulation:

* Each tree node owns one **extent** — a contiguous span of the token
  sequence whose KV slots are held in the :class:`UnifiedKVPool` under a
  negative *owner id* (so cache extents coexist with live requests and
  survive the migration bookkeeping unchanged).
* **Ref-counting** pins the matched path while a request relies on it:
  extents under an active lock are never evicted, so a prefill charged
  only for its suffix can never lose its prefix mid-flight.
* **Eviction** is LRU over unlocked leaves, triggered by the server when
  pending work needs slots the pool cannot otherwise provide — the cache
  only ever occupies memory nothing else wants.
* Lock paths always end on node boundaries (the tree is split at the
  match point when a lock is taken), which keeps later splits trivially
  safe: any node inside a lock path is fully covered by it, so both
  halves of a split stay pinned.

All placement bookkeeping lives in the pool (``place``/``evict``/
``reassign``); the tree stores only owner ids and token spans, so KV
migrations between instances are transparent to the cache.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.kvcache.unified import UnifiedKVPool
from repro.types import Request


@dataclass
class PrefixCacheStats:
    """Hit/miss/eviction accounting, counted in requests and tokens.

    ``lookups``/``hits``/``misses`` count prefill launches; the token
    counters measure the actual work: ``hit_tokens`` is prefill compute
    (and KV allocation) saved by matched prefixes, ``miss_tokens`` the
    suffix tokens still prefilled from scratch.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    hit_tokens: int = 0
    miss_tokens: int = 0
    inserted_tokens: int = 0
    evicted_tokens: int = 0
    # Cross-replica migration traffic (``repro.fleet`` control plane):
    # tokens this cache received from / shipped to a peer replica's cache.
    imported_tokens: int = 0
    exported_tokens: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of prefill-needed tokens served from the cache."""
        total = self.hit_tokens + self.miss_tokens
        return self.hit_tokens / total if total else 0.0

    @property
    def saved_prefill_tokens(self) -> int:
        """Alias that names the headline quantity: tokens not re-prefilled."""
        return self.hit_tokens

    def as_dict(self) -> dict[str, float]:
        """Plain counters, safe to sum across replicas for fleet views."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_tokens": self.hit_tokens,
            "miss_tokens": self.miss_tokens,
            "inserted_tokens": self.inserted_tokens,
            "evicted_tokens": self.evicted_tokens,
            "imported_tokens": self.imported_tokens,
            "exported_tokens": self.exported_tokens,
        }


class _Node:
    """One radix-tree node: an edge-label extent plus children."""

    __slots__ = ("tokens", "children", "parent", "owner", "ref", "last_access")

    def __init__(
        self,
        tokens: tuple[int, ...],
        parent: "_Node | None",
        owner: int,
        last_access: float = 0.0,
    ) -> None:
        self.tokens = tokens
        self.children: dict[int, _Node] = {}
        self.parent = parent
        self.owner = owner
        self.ref = 0
        self.last_access = last_access

    @property
    def is_leaf(self) -> bool:
        return not self.children


class PrefixKVCache:
    """Token-id prefix → resident KV extent map for one replica."""

    def __init__(
        self,
        pool: UnifiedKVPool,
        stats: PrefixCacheStats | None = None,
        max_cached_tokens: int | None = None,
        tiers=None,
    ) -> None:
        self.pool = pool
        self.root = _Node(tokens=(), parent=None, owner=0)
        self._owner_ids = itertools.count(1)
        self._locks: dict[int, list[_Node]] = {}
        self._resident_tokens = 0
        # Host/SSD offload tiers (repro.kvcache.tiers.TieredKVStore).
        # When armed, evicted extents demote into the store instead of
        # vanishing, and match_and_lock swaps extending extents back up,
        # charging the transfer via the per-request swap-debt ledger the
        # server drains into the prefill duration.  None = pre-tier
        # behaviour, bit-identical.
        self.tiers = tiers
        self._swap_debt: dict[int, float] = {}
        # Capacity budget: the cache shares the pool with live request KV,
        # so an unbounded tree would slowly convert serving capacity into
        # cold history.  When set, every insert is followed by LRU
        # eviction back under the cap (pinned extents can keep residency
        # above it transiently — an in-flight prefill still reads them).
        self.max_cached_tokens = max_cached_tokens
        # A replica crash rebuilds the cache over a fresh pool but keeps
        # the old hit/miss ledger — that serving history happened.
        self.stats = stats if stats is not None else PrefixCacheStats()

    # -- queries --------------------------------------------------------------

    @property
    def resident_tokens(self) -> int:
        """KV slots currently held by cached extents."""
        return self._resident_tokens

    def peek_match(self, token_ids: tuple[int, ...] | None) -> int:
        """Longest cached prefix of ``token_ids``, without locking.

        This is the probe fleet affinity routing reads: how much of the
        request's prompt is already resident on this replica.
        """
        if not token_ids:
            return 0
        _, matched = self._walk(token_ids)
        return matched

    # -- request lifecycle ----------------------------------------------------

    def match_and_lock(self, request: Request, now: float) -> int:
        """Match a pending request's prompt and pin the matched path.

        Returns the matched token count, capped at ``input_len - 1`` so a
        prefill always processes at least one token (the token whose KV
        append produces the first output).  Re-entrant: a fresh match
        releases the previous lock first, so the scheduler can re-match
        every tick as earlier turns populate the tree.
        """
        self.release(request.request_id)
        if not request.token_ids:
            return 0
        if self.tiers is not None:
            self._tier_fill(request, now)
        path, matched = self._walk(request.token_ids)
        cap = min(matched, request.input_len - 1)
        if cap <= 0:
            return 0
        locked: list[_Node] = []
        depth = 0
        for node, _ in path:
            if depth + len(node.tokens) <= cap:
                locked.append(node)
                depth += len(node.tokens)
                if depth == cap:
                    break
            else:
                offset = cap - depth
                if offset > 0:
                    self._split(node, offset)  # node becomes the prefix half
                    locked.append(node)
                    depth += offset
                break
        for node in locked:
            node.ref += 1
            node.last_access = now
        if locked:
            self._locks[request.request_id] = locked
        return depth

    def release(self, request_id: int) -> None:
        """Drop a request's pins (finish / preemption / abort); no-op when
        the request holds none."""
        for node in self._locks.pop(request_id, ()):
            node.ref -= 1

    def _tier_fill(self, request: Request, now: float) -> None:
        """Swap an offloaded extent back up when it extends the match.

        Runs before the GPU-tree walk so the re-imported extent is
        matched and pinned by the same tick.  The transfer's wall-clock
        cost lands in the swap-debt ledger; :meth:`take_swap_debt`
        drains it into the benefiting prefill's duration."""
        token_ids = request.token_ids
        _, resident = self._walk(token_ids)
        if resident >= request.input_len - 1:
            return  # GPU residency already covers everything usable
        usable, seconds = self.tiers.fetch(
            token_ids, resident, now, request_id=request.request_id
        )
        if usable <= resident:
            return
        self.import_prefix(token_ids[:usable], now, count_import=False)
        if seconds > 0.0:
            self._swap_debt[request.request_id] = (
                self._swap_debt.get(request.request_id, 0.0) + seconds
            )

    def take_swap_debt(self, request_id: int) -> float:
        """Drain the request's accumulated swap-in seconds (charged once,
        by the prefill launch that benefits from the swapped-in extent)."""
        if not self._swap_debt:
            return 0.0
        return self._swap_debt.pop(request_id, 0.0)

    def stats_dict(self) -> dict[str, float]:
        """Cache counters, plus tier flow counters when tiers are armed."""
        out = self.stats.as_dict()
        if self.tiers is not None:
            out.update(self.tiers.stats.as_dict())
        return out

    def note_prefill(self, request: Request) -> None:
        """Account one prefill launch against the hit/miss counters."""
        self.stats.lookups += 1
        if request.cached_prefix_len > 0:
            self.stats.hits += 1
            self.stats.hit_tokens += request.cached_prefix_len
        else:
            self.stats.misses += 1
        self.stats.miss_tokens += request.prefill_tokens

    def adopt_finished(self, request: Request, full_tokens: tuple[int, ...], now: float) -> None:
        """Donate a finished request's KV to the tree.

        ``full_tokens`` is the complete sequence (prompt + generated
        output).  The request's pool slots cover the part beyond its
        matched prefix; the uncovered tail becomes a new extent, any
        overlap with extents inserted meanwhile is freed as duplicate.
        """
        request_id = request.request_id
        owned = self.pool.tokens_of(request_id)
        path, matched = self._walk(full_tokens)
        if path and path[-1][1] < len(path[-1][0].tokens):
            self._split(path[-1][0], path[-1][1])
        parent = path[-1][0] if path else self.root
        # The request's slots cover the sequence *after* its matched
        # prefix, but not necessarily to the end (the final generated
        # token's KV is never appended — decode stops once the request
        # finishes).  Cache exactly the covered span: a shorter prefix is
        # still a valid prefix.
        tail = full_tokens[matched:matched + owned]
        for node, _ in path:
            node.last_access = now
        if not tail:
            self.pool.evict(request_id)  # fully cached already: all duplicate
            self.release(request_id)
            return
        owner = -next(self._owner_ids)
        self.pool.reassign(request_id, owner, len(tail))
        self.pool.evict(request_id)  # frees the duplicated surplus, if any
        node = _Node(tokens=tuple(tail), parent=parent, owner=owner, last_access=now)
        parent.children[tail[0]] = node
        self._resident_tokens += len(tail)
        self.stats.inserted_tokens += len(tail)
        self.release(request_id)
        self._enforce_budget()

    # -- cross-replica migration ----------------------------------------------

    def export_prefix(self, token_ids: tuple[int, ...]) -> tuple[int, ...]:
        """Read out the longest resident prefix of ``token_ids`` for
        migration to a peer replica's cache.

        Returns the matched token span (possibly empty).  A pure read:
        the source extents stay in place — migration is a copy, and the
        LRU eviction path reclaims the source copy under pressure
        exactly like any other cold extent.  The migrator charges
        ``exported_tokens`` via :meth:`note_export` only once the
        destination actually installed the extent, so failed handoffs
        never inflate the traffic ledger; the transfer's wall-clock cost
        is also the caller's to model
        (see ``repro.kvcache.migration.PrefixHandoff``).
        """
        if not token_ids:
            return ()
        _, matched = self._walk(token_ids)
        return tuple(token_ids[:matched])

    def note_export(self, num_tokens: int) -> None:
        """Account tokens a peer replica successfully imported from here."""
        self.stats.exported_tokens += num_tokens

    def import_prefix(
        self, token_ids: tuple[int, ...], now: float, count_import: bool = True
    ) -> int:
        """Install a migrated prefix extent shipped from a peer replica.

        The already-resident part of ``token_ids`` is skipped (the
        longest local match); the remainder becomes one new extent whose
        KV slots are allocated in this replica's pool.  Under pool
        pressure, unlocked LRU extents are evicted to make room; if the
        suffix still does not fit in full, a leading sub-span is imported
        instead (a shorter prefix is still a valid prefix).  Returns the
        number of newly resident tokens (0 when nothing could be placed).
        """
        if not token_ids:
            return 0
        # Make room before walking: eviction prunes leaves, so any path
        # captured earlier could dangle.  The pre-walk only sizes the
        # demand estimate.
        _, matched = self._walk(token_ids)
        shortfall = (len(token_ids) - matched) - self.pool.total_free
        if shortfall > 0:
            self.evict(shortfall)
        path, matched = self._walk(token_ids)
        tail = tuple(token_ids[matched:])
        for node, _ in path:
            node.last_access = now
        if not tail:
            return 0
        room = self.pool.total_free
        if room <= 0:
            return 0
        tail = tail[:room]
        if path and path[-1][1] < len(path[-1][0].tokens):
            self._split(path[-1][0], path[-1][1])
        parent = path[-1][0] if path else self.root
        owner = -next(self._owner_ids)
        placement = self.pool.balanced_placement(
            len(tail), list(self.pool.pools)
        )
        self.pool.place(owner, placement)
        node = _Node(tokens=tail, parent=parent, owner=owner, last_access=now)
        parent.children[tail[0]] = node
        self._resident_tokens += len(tail)
        if count_import:  # tier swap-ins are local, not cross-replica traffic
            self.stats.imported_tokens += len(tail)
        self.stats.inserted_tokens += len(tail)
        self._enforce_budget()
        return len(tail)

    def resident_sequences(self) -> list[tuple[float, tuple[int, ...]]]:
        """Every root-to-leaf resident token sequence, most recent first.

        The drain path walks this list to re-home a parking replica's hot
        conversation state onto surviving replicas before its cache is
        cleared.
        """
        sequences: list[tuple[float, tuple[int, ...]]] = []
        stack: list[tuple[_Node, tuple[int, ...]]] = [(self.root, ())]
        while stack:
            node, prefix = stack.pop()
            full = prefix + node.tokens
            if node is not self.root and node.is_leaf:
                sequences.append((node.last_access, full))
            stack.extend((child, full) for child in node.children.values())
        sequences.sort(key=lambda item: (-item[0], item[1]))
        return sequences

    def clear(self) -> int:
        """Evict every unlocked extent (replica park / teardown).

        Returns the KV slots freed; pinned extents (an in-flight prefill
        still relies on them) survive.
        """
        return self.evict(self._resident_tokens)

    # -- eviction -------------------------------------------------------------

    def _enforce_budget(self) -> None:
        """LRU-evict back under ``max_cached_tokens`` after an insert.

        The freshly inserted extent carries the newest ``last_access``,
        so older history is reclaimed first and the new extent survives
        unless it alone exceeds the budget.
        """
        if self.max_cached_tokens is None:
            return
        excess = self._resident_tokens - self.max_cached_tokens
        if excess > 0:
            self.evict(excess)

    def evict(self, num_tokens: int, instance_ids: list[int] | None = None) -> int:
        """Free at least ``num_tokens`` cached slots (LRU leaves first).

        With ``instance_ids`` given, progress is counted only on those
        instances (whole leaves are still evicted — an extent is valid
        only in full).  Returns the slots freed on the counted instances;
        may be less than asked when every remaining extent is pinned.
        """
        wanted = set(instance_ids) if instance_ids is not None else None
        freed = 0
        while freed < num_tokens:
            victim = self._lru_evictable_leaf(wanted)
            if victim is None:
                break
            freed += self._evict_node(victim, wanted)
        return freed

    def _lru_evictable_leaf(self, wanted: set[int] | None) -> _Node | None:
        best: _Node | None = None
        stack = [self.root]
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            if node is self.root or node.ref > 0 or not node.is_leaf:
                continue
            if wanted is not None and not (
                wanted & self.pool.placement_of(node.owner).keys()
            ):
                continue
            if best is None or node.last_access < best.last_access:
                best = node
        return best

    def _evict_node(self, node: _Node, wanted: set[int] | None) -> int:
        placement = self.pool.placement_of(node.owner)
        released = self.pool.evict(node.owner)
        assert node.parent is not None  # root is never evicted
        if self.tiers is not None:
            # Demote instead of dropping: the full root-to-leaf sequence
            # keys the extent, the payload is only this node's span (the
            # ancestors stay GPU-resident).
            parts = []
            walk = node.parent
            while walk is not None:
                parts.append(walk.tokens)
                walk = walk.parent
            prefix: tuple[int, ...] = ()
            for part in reversed(parts):
                prefix += part
            self.tiers.offload(
                prefix + node.tokens, len(prefix), now=node.last_access
            )
        del node.parent.children[node.tokens[0]]
        self._resident_tokens -= len(node.tokens)
        self.stats.evicted_tokens += released
        if wanted is None:
            return released
        return sum(t for i, t in placement.items() if i in wanted)

    # -- tree mechanics -------------------------------------------------------

    def _walk(self, tokens: tuple[int, ...]) -> tuple[list[tuple[_Node, int]], int]:
        """Descend along ``tokens``; returns (path of (node, tokens matched
        inside node), total matched).  Only the last path entry may be a
        partial match."""
        path: list[tuple[_Node, int]] = []
        node = self.root
        pos = 0
        while pos < len(tokens):
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.tokens
            limit = min(len(edge), len(tokens) - pos)
            k = 0
            while k < limit and edge[k] == tokens[pos + k]:
                k += 1
            path.append((child, k))
            pos += k
            if k < len(edge):
                break
            node = child
        return path, pos

    def _split(self, node: _Node, offset: int) -> None:
        """Split ``node``'s extent at ``offset``; ``node`` keeps the prefix.

        The new suffix node inherits the ref count and joins every lock
        path containing ``node`` (lock paths fully cover their nodes, so
        both halves stay pinned — see the module docstring invariant).
        """
        if not 0 < offset < len(node.tokens):
            raise ValueError(
                f"split offset {offset} outside extent of {len(node.tokens)} tokens"
            )
        suffix = _Node(
            tokens=node.tokens[offset:],
            parent=node,
            owner=-next(self._owner_ids),
            last_access=node.last_access,
        )
        suffix.children = node.children
        for child in suffix.children.values():
            child.parent = suffix
        suffix.ref = node.ref
        self.pool.reassign(node.owner, suffix.owner, len(node.tokens) - offset)
        node.tokens = node.tokens[:offset]
        node.children = {suffix.tokens[0]: suffix}
        for locked in self._locks.values():
            if node in locked:
                locked.insert(locked.index(node) + 1, suffix)
