"""Multi-tenant SLO classes (the QoS tier model).

The paper evaluates goodput against a single 25x no-load-latency SLO
(§7.1); production mixed long/short serving is multi-tenant — an
interactive chat turn, a standard API call, and an overnight batch
summarisation job arrive interleaved but buy very different latency
contracts.  A :class:`QoSClass` makes that contract explicit:

* ``priority`` — dispatch order between tiers (0 = most important);
* ``deadline_scale`` — the tier's SLO as a multiple of the request's
  own no-load (ideal) latency, the paper's deadline shape with a
  per-tier scale;
* ``preemptible`` — whether the tier's *decoding* requests may be
  preempted (evicted + recomputed later) to make room for a
  higher tier's prefill that would otherwise miss its deadline;
* ``admission`` — what the admission controller does with an arrival
  whose deadline is already infeasible: ``"reject"`` it outright,
  ``"downgrade"`` it to ``downgrade_to`` (a looser deadline, lower
  priority), or ``"always"`` admit it regardless (batch work waits).

The three standard tiers cover the design space; experiments may build
custom registries, but every registry must be priority-consistent
(downgrades move to a strictly lower tier, so the chain terminates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.types import Request

__all__ = [
    "BATCH",
    "DEFAULT_QOS_MIX",
    "INTERACTIVE",
    "QOS_CLASSES",
    "STANDARD",
    "QoSClass",
    "assign_qos",
    "parse_qos_mix",
    "qos_mix_sampler",
    "resolve_qos_class",
]


@dataclass(frozen=True)
class QoSClass:
    """One SLO tier's service contract."""

    name: str
    priority: int
    deadline_scale: float
    preemptible: bool = False
    admission: str = "reject"  # "reject" | "downgrade" | "always"
    downgrade_to: str | None = None

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")
        if self.deadline_scale <= 0:
            raise ValueError(
                f"deadline_scale must be positive, got {self.deadline_scale}"
            )
        if self.admission not in ("reject", "downgrade", "always"):
            raise ValueError(
                f"admission must be reject/downgrade/always, got {self.admission!r}"
            )
        if self.admission == "downgrade" and self.downgrade_to is None:
            raise ValueError(f"class {self.name!r} downgrades but names no target")


INTERACTIVE = QoSClass(
    name="interactive",
    priority=0,
    deadline_scale=10.0,
    admission="downgrade",
    downgrade_to="standard",
)
STANDARD = QoSClass(
    name="standard",
    priority=1,
    deadline_scale=25.0,  # the paper's default SLO scale
    admission="reject",
)
BATCH = QoSClass(
    name="batch",
    priority=2,
    deadline_scale=100.0,
    preemptible=True,
    admission="always",
)

QOS_CLASSES: dict[str, QoSClass] = {
    c.name: c for c in (INTERACTIVE, STANDARD, BATCH)
}

# Untagged requests are served with standard semantics (the paper's
# single-tier world is exactly "everything is standard").
DEFAULT_CLASS = STANDARD

DEFAULT_QOS_MIX: dict[str, float] = {
    "interactive": 0.3,
    "standard": 0.5,
    "batch": 0.2,
}


def resolve_qos_class(
    name: str | None, classes: Mapping[str, QoSClass] | None = None
) -> QoSClass:
    """Map a request's class name to its tier (None -> standard)."""
    registry = classes or QOS_CLASSES
    if name is None:
        return DEFAULT_CLASS
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown QoS class {name!r}; choose from {sorted(registry)}"
        ) from None


def parse_qos_mix(spec: str) -> dict[str, float]:
    """Parse a ``--qos-mix`` string like ``interactive:0.3,batch:0.7``.

    Weights must be positive; they are normalised to sum to 1, so
    ``interactive:1,batch:3`` is a valid 25/75 split.
    """
    mix: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight_part = part.partition(":")
        name = name.strip()
        resolve_qos_class(name)  # validates the class name
        try:
            weight = float(weight_part)
        except ValueError:
            raise ValueError(
                f"qos mix entry {part!r} wants CLASS:WEIGHT (e.g. interactive:0.3)"
            ) from None
        if weight <= 0:
            raise ValueError(f"qos mix weight for {name!r} must be positive")
        mix[name] = mix.get(name, 0.0) + weight
    if not mix:
        raise ValueError(f"empty qos mix {spec!r}")
    total = sum(mix.values())
    return {name: weight / total for name, weight in mix.items()}


def qos_mix_sampler(mix: Mapping[str, float], seed: int = 0):
    """Validated draw() -> class-name sampler over a qos mix.

    The single implementation of mix validation, normalisation, and the
    seeded draw, shared by request tagging (:func:`assign_qos`) and
    session-plan tagging
    (:func:`repro.sessions.workload.tag_session_plans`) so the two can
    never diverge.  Uses its own RNG stream, so tagging never perturbs
    the workload sampling itself.
    """
    names = sorted(mix)
    if not names:
        raise ValueError("qos mix must name at least one class")
    weights = np.array([mix[name] for name in names], dtype=float)
    if np.any(weights <= 0):
        raise ValueError("qos mix weights must be positive")
    weights = weights / weights.sum()
    for name in names:
        resolve_qos_class(name)
    rng = np.random.default_rng(seed)

    def draw() -> str:
        return names[int(rng.choice(len(names), p=weights))]

    return draw


def assign_qos(
    requests: Sequence[Request] | Iterable[Request],
    mix: Mapping[str, float],
    seed: int = 0,
) -> None:
    """Tag requests with classes drawn from ``mix`` (in place).

    All turns of one session get the same class — a conversation is one
    tenant's workload, and splitting its turns across tiers would make
    per-class session metrics meaningless.
    """
    draw = qos_mix_sampler(mix, seed=seed)
    session_class: dict[int, str] = {}
    for request in requests:
        if request.session_id is not None and request.session_id in session_class:
            request.qos = session_class[request.session_id]
            continue
        choice = draw()
        request.qos = choice
        if request.session_id is not None:
            session_class[request.session_id] = choice
