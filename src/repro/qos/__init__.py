"""Multi-tenant QoS: SLO classes, admission control, deadline scheduling.

The paper's evaluation scores every request against one 25x no-load
latency SLO (§7.1); this package makes SLOs *heterogeneous and
enforced*.  Workloads tag requests with an SLO class
(``interactive``/``standard``/``batch`` — :mod:`repro.qos.classes`), an
admission controller prices each arrival with the analytical cost model
and rejects or downgrades the ones whose deadline is already infeasible
(:mod:`repro.qos.admission`), and a :class:`QoSPolicy` hands the core
scheduler deadline-aware dispatch ordering plus batch-tier decode
preemption (:mod:`repro.qos.policy`; enacted in
:mod:`repro.core.server`).

Fleet-level counterparts live where the fleet machinery lives: the
``slo`` placement router in :mod:`repro.fleet.router`, the predictive
autoscaler in :mod:`repro.fleet.autoscaler`, and the per-class ledgers
in :mod:`repro.metrics.qos`.  Everything is off by default; with no
policy armed behaviour is bit-identical to the pre-QoS build.
"""

from repro.qos.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    prefill_token_rate,
)
from repro.qos.classes import (
    BATCH,
    DEFAULT_QOS_MIX,
    INTERACTIVE,
    QOS_CLASSES,
    STANDARD,
    QoSClass,
    assign_qos,
    parse_qos_mix,
    resolve_qos_class,
)
from repro.qos.policy import QoSPolicy

__all__ = [
    "BATCH",
    "DEFAULT_QOS_MIX",
    "INTERACTIVE",
    "QOS_CLASSES",
    "STANDARD",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "QoSClass",
    "QoSPolicy",
    "assign_qos",
    "parse_qos_mix",
    "prefill_token_rate",
    "resolve_qos_class",
]
