"""Deadline-feasibility admission control.

An overloaded serving system that admits everything misses SLOs
uniformly; admission control converts hopeless latency into an explicit
up-front rejection (or a renegotiated lower tier), so the capacity those
requests would have burned protects the traffic that can still meet its
deadline.

The controller is deliberately *predictive, not reactive*: it prices an
arrival with the same analytical machinery the scheduler plans with —
the request's no-load ideal latency (cost model) plus a queueing-delay
estimate from the live backlog and the deployment's prefill service
rate — and compares the predicted completion against the tier's
deadline.  Three outcomes per the tier's contract
(:class:`~repro.qos.classes.QoSClass.admission`):

* feasible -> **admit** at the requested tier;
* infeasible, tier downgrades -> retry the test at the downgrade target
  (looser deadline, lower priority) — the chain terminates because
  downgrades must strictly lower the tier;
* infeasible, tier rejects -> **reject** (the request aborts; a miss
  either way, but the fleet keeps the capacity).

**Prefix-aware bias**: under contention (non-zero predicted wait) a
request whose prompt is largely resident in the prefix-KV cache gets a
slack credit proportional to the cached fraction — it is cheaper to
serve than its length suggests, so ties break toward hot-prefix work
(the prefix-aware admission the PR 2 roadmap opened).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.qos.classes import QoSClass, resolve_qos_class
from repro.types import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (policy imports us)
    from repro.qos.policy import QoSPolicy

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "prefill_token_rate",
]


def prefill_token_rate(
    cost_model,
    instance_ids: Sequence[int],
    tensor_parallel: int,
    probe_tokens: int = 8192,
) -> float:
    """Sustained prefill throughput (tokens/s) of one deployment.

    Probed from the cost model at a representative batch size; used to
    convert token backlogs into queueing-delay estimates by admission
    control, SLO routing, and predictive autoscaling.
    """
    duration = cost_model.prefill_time(
        [probe_tokens], list(instance_ids), tensor_parallel
    )
    if duration <= 0:
        return float("inf")
    return probe_tokens / duration


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of :class:`AdmissionController`.

    ``prefix_bias_scale`` — slack credit for a fully-cached prompt, as a
    fraction of the request's ideal latency (scaled linearly by the
    cached fraction; applied only under contention).
    ``headroom`` — multiplier on the predicted completion before the
    deadline test (> 1 admits conservatively, < 1 optimistically).
    """

    prefix_bias_scale: float = 1.0
    headroom: float = 1.0

    def __post_init__(self) -> None:
        if self.prefix_bias_scale < 0:
            raise ValueError("prefix_bias_scale must be >= 0")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one arrival's admission test.

    ``action`` is ``"admit"`` or ``"reject"``; ``qos_class`` the tier the
    request was finally evaluated at (differs from the request's own tag
    when the chain downgraded); ``deadline`` the absolute completion
    deadline at that tier; ``predicted_completion`` what the model
    expected, for tracing.
    """

    action: str
    qos_class: QoSClass
    deadline: float
    predicted_completion: float

    @property
    def admitted(self) -> bool:
        return self.action == "admit"


class AdmissionController:
    """Predict each arrival's completion; admit, downgrade, or reject."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()

    def decide(
        self,
        request: Request,
        now: float,
        wait_s: float,
        policy: "QoSPolicy",
    ) -> AdmissionDecision:
        """Run the downgrade chain for one arrival.

        ``wait_s`` is the caller's live queueing-delay estimate (work
        ahead of this request divided by the deployment's service rate).
        """
        ideal_s = policy.ideal_latency(request)
        predicted = now + self.config.headroom * (wait_s + ideal_s)
        bias = 0.0
        if wait_s > 0 and request.input_len > 0:
            cached_fraction = min(
                1.0, request.cached_prefix_len / request.input_len
            )
            bias = self.config.prefix_bias_scale * ideal_s * cached_fraction
        current = resolve_qos_class(request.qos, policy.classes)
        while True:
            deadline = request.arrival_time + current.deadline_scale * ideal_s
            if predicted <= deadline + bias or current.admission == "always":
                return AdmissionDecision(
                    action="admit",
                    qos_class=current,
                    deadline=deadline,
                    predicted_completion=predicted,
                )
            if current.admission == "downgrade":
                target = resolve_qos_class(current.downgrade_to, policy.classes)
                if target.priority <= current.priority:
                    raise ValueError(
                        f"downgrade from {current.name!r} to {target.name!r} "
                        f"does not lower the tier; the chain would not terminate"
                    )
                current = target
                continue
            return AdmissionDecision(
                action="reject",
                qos_class=current,
                deadline=deadline,
                predicted_completion=predicted,
            )
