"""The QoS policy bundle a server schedules under.

:class:`QoSPolicy` packages everything the core scheduler needs to
thread SLO classes end-to-end: the tier registry, the no-load ideal
latency model the deadlines derive from (with a memoised cache — the
same (input, output) shape prices identically every time), the
deployment's prefill service rate for queueing-delay estimates, the
optional admission controller, and the deadline-preemption switch.

One policy instance is immutable state shared across a server's runs;
all mutable accounting lives in the server's per-run
:class:`~repro.metrics.qos.QoSLedger`.
"""

from __future__ import annotations

from typing import Mapping

from repro.metrics.slo import CachedIdealLatency, IdealLatencyModel
from repro.qos.admission import AdmissionController, prefill_token_rate
from repro.qos.classes import QOS_CLASSES, QoSClass, resolve_qos_class
from repro.types import Request

__all__ = ["QoSPolicy"]


class QoSPolicy:
    """Tier registry + deadline model + admission + preemption knobs."""

    def __init__(
        self,
        ideal: IdealLatencyModel,
        classes: Mapping[str, QoSClass] | None = None,
        admission: AdmissionController | None = None,
        preemption: bool = True,
        token_rate: float | None = None,
        max_preemptions_per_tick: int = 8,
        preempt_slack_fraction: float = 0.5,
    ) -> None:
        self.ideal = ideal
        self.classes = dict(classes or QOS_CLASSES)
        self.admission = admission
        self.preemption = preemption
        # Prefill tokens/s of the deployment the policy schedules for;
        # derived from the ideal model's cost model when not given.
        self.token_rate = (
            token_rate
            if token_rate is not None
            else prefill_token_rate(
                ideal.cost_model,
                list(range(ideal.max_instances)),
                ideal.tensor_parallel,
            )
        )
        if max_preemptions_per_tick < 1:
            raise ValueError("max_preemptions_per_tick must be >= 1")
        self.max_preemptions_per_tick = max_preemptions_per_tick
        # A memory-blocked top-tier prefill triggers deadline preemption
        # only once its remaining slack drops below this fraction of its
        # whole deadline budget; above it, waiting for decodes to drain
        # naturally is still safe.
        if not 0.0 <= preempt_slack_fraction <= 1.0:
            raise ValueError("preempt_slack_fraction must be in [0, 1]")
        self.preempt_slack_fraction = preempt_slack_fraction
        self._cached_ideal = CachedIdealLatency(ideal)

    @classmethod
    def for_config(
        cls,
        config,
        cost_model,
        admission: bool = False,
        **kwargs,
    ) -> "QoSPolicy":
        """Build the policy for one deployment's launch configuration."""
        ideal = IdealLatencyModel(
            cost_model=cost_model,
            tensor_parallel=config.tensor_parallel,
            max_instances=config.num_instances,
        )
        return cls(
            ideal=ideal,
            admission=AdmissionController() if admission else None,
            **kwargs,
        )

    # -- deadline model --------------------------------------------------------

    def qos_class(self, request: Request) -> QoSClass:
        """The tier the request is *currently served* under (downgrades
        renegotiate service; the workload tag stays for reporting)."""
        return resolve_qos_class(request.effective_qos, self.classes)

    def ideal_latency(self, request: Request) -> float:
        """Memoised no-load latency — deadlines, slack, and admission all
        reprice the same shapes constantly."""
        return self._cached_ideal(request)

    def deadline_for(self, request: Request) -> float:
        """Absolute completion deadline at the request's current tier."""
        return (
            request.arrival_time
            + self.qos_class(request).deadline_scale * self.ideal_latency(request)
        )

    def slack(self, request: Request, now: float) -> float:
        """Seconds to spare if the request started executing right now.

        Uses the runtime deadline when admission stamped one (the
        renegotiated contract), else the tier-model deadline.
        """
        deadline = (
            request.deadline
            if request.deadline is not None
            else self.deadline_for(request)
        )
        return deadline - now - self.ideal_latency(request)

    def dispatch_key(self, request: Request, now: float):
        """Earliest-slack-first within descending tier priority.

        The trailing (arrival, id) terms keep the order total and
        deterministic for equal-slack requests.
        """
        return (
            self.qos_class(request).priority,
            self.slack(request, now),
            request.arrival_time,
            request.request_id,
        )
