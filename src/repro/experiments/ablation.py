"""Ablations of LoongServe's own design choices (DESIGN.md §5).

Beyond the paper's figures, these isolate decisions the paper makes
implicitly:

* ``planning_model_ablation`` — the global manager plans with the
  SIB-*fitted* analytical model (§5.5).  How much scheduling quality does
  the fit lose vs. planning with the roofline ground truth directly?
* ``multi_master_ablation`` — multi-master decoding on/off, end to end
  (the §4.2 design beyond the per-iteration Figure 14b view).
* ``scale_down_headroom_ablation`` — the proactive scale-down keeps
  enough free slots for N future decode iterations; too little headroom
  causes rapid re-scale-ups, too much wastes instances that prefills
  could use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SchedulerConfig, default_config
from repro.core import scaling_plan as scaling_plan_module
from repro.core.global_manager import GlobalManager
from repro.core.server import LoongServeServer
from repro.costmodel.latency import RooflineCostModel
from repro.metrics.latency import summarize_latency
from repro.workloads.datasets import MIXED, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace


@dataclass(frozen=True)
class AblationPoint:
    """One variant's end-to-end outcome."""

    variant: str
    per_token: float
    input_token: float
    output_token: float
    finished: int
    scale_ups: int


def _run_server(server: LoongServeServer, trace) -> AblationPoint:
    result = server.run(clone_requests(trace))
    summary = summarize_latency(result)
    return AblationPoint(
        variant=server.name,
        per_token=summary.per_token,
        input_token=summary.input_token,
        output_token=summary.output_token,
        finished=summary.finished,
        scale_ups=sum(1 for e in result.scaling_events if e.kind == "scale_up"),
    )


class _RooflinePlanner(GlobalManager):
    """A global manager that plans with the ground-truth cost model.

    The fitted analytical model is replaced by the roofline itself, which
    is the unrealisable ideal (a real system cannot query its hardware's
    exact future iteration time).  The gap between this and the default
    manager measures what the Eq. 7 fit costs.
    """

    def _bootstrap_predictor(self):
        roofline = self.cost_model

        class _Oracle:
            """Adapter: IterationCostModel + the AnalyticalModel surface
            the batching DP needs (per-strategy predictions from sums)."""

            def prefill_time(self, input_lens, instances, tensor_parallel):
                return roofline.prefill_time(input_lens, instances, tensor_parallel)

            def has_strategy(self, strategy):
                return True

            def predict_sums(self, strategy, total_len, total_len_sq):
                # Reconstruct a representative workload from the sums: the
                # DP only needs consistent relative ordering, and a single
                # equivalent request preserves both Σlen and Σlen².
                if total_len <= 0:
                    return 0.0
                equivalent = max(1, int(total_len_sq / total_len))
                count = max(1, round(total_len / equivalent))
                return roofline.prefill_time(
                    [equivalent] * count,
                    strategy.sequence_parallel,
                    strategy.tensor_parallel,
                )

            def predict(self, strategy, input_lens):
                return roofline.prefill_time(
                    list(input_lens), strategy.sequence_parallel, strategy.tensor_parallel
                )

        return _Oracle()


def planning_model_ablation(
    rate: float = 1.0, num_requests: int = 60, seed: int = 21
) -> list[AblationPoint]:
    """Fitted Eq. 7 planning vs. roofline-oracle planning."""
    trace = make_trace(MIXED, rate=rate, num_requests=num_requests, seed=seed)
    config = default_config()
    cost = RooflineCostModel(cluster=config.cluster, model=config.model)

    fitted = LoongServeServer(config, cost_model=cost)
    fitted.name = "fitted analytical model (paper)"
    oracle_manager = _RooflinePlanner(config, cost)
    oracle = LoongServeServer(config, cost_model=cost, manager=oracle_manager)
    oracle.name = "roofline oracle (ideal)"
    return [_run_server(fitted, trace), _run_server(oracle, trace)]


def multi_master_ablation(
    rate: float = 40.0, num_requests: int = 800, seed: int = 22
) -> list[AblationPoint]:
    """Multi-master decoding on vs. off under ShareGPT load."""
    trace = make_trace(SHAREGPT, rate=rate, num_requests=num_requests, seed=seed)
    points = []
    for enabled in (True, False):
        config = default_config(
            scheduler=SchedulerConfig(enable_multi_master=enabled)
        )
        server = LoongServeServer(config)
        server.name = f"multi-master={'on' if enabled else 'off'}"
        points.append(_run_server(server, trace))
    return points


def scale_down_headroom_ablation(
    headrooms: tuple[int, ...] = (4, 32, 256),
    rate: float = 30.0,
    num_requests: int = 600,
    seed: int = 23,
) -> list[AblationPoint]:
    """Sensitivity to the proactive scale-down's decode headroom."""
    trace = make_trace(SHAREGPT, rate=rate, num_requests=num_requests, seed=seed)
    original = scaling_plan_module.DECODE_HEADROOM_ITERATIONS
    points = []
    try:
        for headroom in headrooms:
            scaling_plan_module.DECODE_HEADROOM_ITERATIONS = headroom
            server = LoongServeServer(default_config())
            server.name = f"headroom={headroom} iterations"
            points.append(_run_server(server, trace))
    finally:
        scaling_plan_module.DECODE_HEADROOM_ITERATIONS = original
    return points
