"""Fault tolerance: replica crash, KV loss, failover, recovery.

Two questions, two sweeps:

* **Failover policy** (:func:`failover_sweep`) — a replica serving
  multi-turn sessions crashes mid-run, taking its queued work, running
  batches, and resident prefix KV with it.  How fast does tail latency
  recover?  *Naive* re-dispatch scatters the orphans (and every later
  turn of their sessions) round-robin across the survivors, so each one
  re-prefills its conversation from scratch.  *KV-migration failover*
  routes orphans through the affinity router onto the prefix copies
  earlier steal-coupled and drain-rescue migrations left on the
  survivors, so the crash costs far less recomputation — the post-crash
  P99 per-token latency is the headline.
* **Availability** (:func:`availability_sweep`) — the same fleet under
  stochastic (seeded Poisson) crash schedules of decreasing MTBF:
  availability, goodput, and lost-KV tokens as failures become routine.

Run via ``python -m repro.experiments faults``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.systems import make_fleet
from repro.fleet.faults import FaultPlan
from repro.metrics.latency import summarize_latency
from repro.sessions import SessionSpec, make_session_trace
from repro.workloads.datasets import LengthSpec
from repro.workloads.trace_gen import clone_requests

# The failover scenario: *long-context* conversations (the paper's
# regime) on deliberately small replicas, so prefill is the expensive
# phase, resident prefix KV is genuinely valuable, and the crash lands
# while the fleet is loaded.  Short think times keep follow-up turns
# arriving throughout the downtime window.
SESSION_SPEC = SessionSpec(
    mean_turns=4.0,
    first_input=LengthSpec(
        log_mean=math.log(5000.0), log_sigma=0.6, minimum=800, maximum=16_000
    ),
    turn_input=LengthSpec(
        log_mean=math.log(1500.0), log_sigma=0.6, minimum=200, maximum=5000
    ),
    output=LengthSpec(
        log_mean=math.log(150.0), log_sigma=0.6, minimum=8, maximum=500
    ),
    think_time_mean_s=4.0,
    max_context_len=50_000,
)
SESSION_RATE = 3.0
SESSION_COUNT = 24
REPLICAS = 3
NUM_GPUS = 2  # per replica: one TP=2 instance — prefill-bound on purpose
CRASH_TIME = 15.0
DOWNTIME_S = 30.0

# Placement-policy variants compared under the same mid-run crash.
# "no-fault" is the ceiling; "naive" models a fleet whose failover path
# is blind re-dispatch (round-robin, no migration); "failover" is the
# full stack: affinity placement + steal-coupled/drain-rescue KV
# migration, which doubles as crash redundancy.
FAULT_VARIANTS: dict[str, dict] = {
    "no-fault": {"router": "affinity", "steal": True, "migrate_kv": True},
    "naive": {"router": "round-robin", "faulted": True},
    "failover": {
        "router": "affinity", "steal": True, "migrate_kv": True, "faulted": True,
    },
}


@dataclass(frozen=True)
class FaultPoint:
    """One variant's measurements on the crash scenario."""

    variant: str
    per_token: float
    per_token_p99: float
    post_crash_p99: float
    post_crash_mean: float
    finished: int
    total: int
    hit_rate: float
    availability: float
    crashes: int
    lost_kv_tokens: int
    failovers: int
    failover_reprefill_tokens: int

    @classmethod
    def measure(cls, variant: str, result, crash_time: float) -> "FaultPoint":
        summary = summarize_latency(result)
        cache = result.cache_stats or {}
        cache_total = cache.get("hit_tokens", 0) + cache.get("miss_tokens", 0)
        elastic = result.elastic
        return cls(
            variant=variant,
            per_token=summary.per_token,
            per_token_p99=summary.per_token_p99,
            post_crash_p99=post_crash_per_token_p99(result, crash_time),
            post_crash_mean=post_crash_per_token_mean(result, crash_time),
            finished=summary.finished,
            total=summary.total,
            hit_rate=(
                cache.get("hit_tokens", 0) / cache_total if cache_total else 0.0
            ),
            availability=(
                elastic.availability(result.makespan) if elastic else 1.0
            ),
            crashes=elastic.crashes if elastic else 0,
            lost_kv_tokens=elastic.lost_kv_tokens if elastic else 0,
            failovers=elastic.failovers if elastic else 0,
            failover_reprefill_tokens=(
                elastic.failover_reprefill_tokens if elastic else 0
            ),
        )


def _post_crash_latencies(result, crash_time: float) -> list[float]:
    return [
        r.normalized_latency
        for r in result.finished_requests
        if r.arrival_time >= crash_time
    ]


def post_crash_per_token_p99(result, crash_time: float) -> float:
    """P99 normalised per-token latency of requests arriving after the
    crash — the quantity that shows how fast the fleet *recovered* (the
    orphans' own latency is sunk cost either way)."""
    latencies = _post_crash_latencies(result, crash_time)
    if not latencies:
        return 0.0
    return float(np.percentile(latencies, 99))


def post_crash_per_token_mean(result, crash_time: float) -> float:
    """Mean normalised per-token latency of post-crash arrivals."""
    latencies = _post_crash_latencies(result, crash_time)
    if not latencies:
        return 0.0
    return float(np.mean(latencies))


def failover_sweep(
    variants: Sequence[str] = tuple(FAULT_VARIANTS),
    replicas: int = REPLICAS,
    num_gpus: int = NUM_GPUS,
    scale: float = 1.0,
    seed: int = 11,
    crash_time: float = CRASH_TIME,
    downtime_s: float = DOWNTIME_S,
) -> list[FaultPoint]:
    """Mid-run crash of replica 0 under each failover policy variant.

    The post-crash P99 gap between ``naive`` and ``failover`` needs the
    fleet under real pressure; below ``scale`` ~0.7 the survivors have
    slack and the tail flattens (the token/availability ledgers stay
    meaningful at any scale).
    """
    count = max(6, int(SESSION_COUNT * scale))
    trace = make_session_trace(
        SESSION_SPEC, rate=SESSION_RATE, num_sessions=count, seed=seed
    )
    plan = FaultPlan.scripted((crash_time, 0), downtime_s=downtime_s)
    points = []
    for variant in variants:
        kwargs = dict(FAULT_VARIANTS[variant])
        faulted = kwargs.pop("faulted", False)
        fleet = make_fleet(
            "loongserve", replicas=replicas, requests=trace,
            num_gpus=num_gpus, prefix_cache=True,
            faults=plan if faulted else None, **kwargs,
        )
        result = fleet.run(clone_requests(trace))
        points.append(FaultPoint.measure(variant, result, crash_time))
    return points


def failover_advantage(points: Sequence[FaultPoint]) -> dict[str, float]:
    """Headline ratios: how much better the migration-backed failover
    recovers post-crash tail latency than naive re-dispatch."""
    by_name = {p.variant: p for p in points}
    naive = by_name["naive"]
    failover = by_name["failover"]
    return {
        "post_crash_p99_ratio": (
            naive.post_crash_p99 / failover.post_crash_p99
            if failover.post_crash_p99
            else float("inf")
        ),
        "post_crash_mean_ratio": (
            naive.post_crash_mean / failover.post_crash_mean
            if failover.post_crash_mean
            else float("inf")
        ),
        "per_token_ratio": (
            naive.per_token / failover.per_token
            if failover.per_token
            else float("inf")
        ),
        "failover_availability": failover.availability,
    }


def availability_sweep(
    mtbf_values: Sequence[float] = (240.0, 120.0, 60.0),
    replicas: int = REPLICAS,
    num_gpus: int = NUM_GPUS,
    scale: float = 1.0,
    seed: int = 11,
    fault_seed: int = 7,
    downtime_s: float = 15.0,
) -> list[tuple[float, FaultPoint]]:
    """The full failover stack under Poisson crash schedules.

    Returns ``(mtbf, point)`` pairs, tightest MTBF last; the horizon is
    the trace's arrival span, so faults always land on live traffic.
    """
    count = max(6, int(SESSION_COUNT * scale))
    trace = make_session_trace(
        SESSION_SPEC, rate=SESSION_RATE, num_sessions=count, seed=seed
    )
    horizon = max(r.arrival_time for r in trace)
    points: list[tuple[float, FaultPoint]] = []
    for mtbf in mtbf_values:
        plan = FaultPlan.poisson(
            num_replicas=replicas, horizon_s=horizon, mtbf_s=mtbf,
            seed=fault_seed, downtime_s=downtime_s,
        )
        fleet = make_fleet(
            "loongserve", replicas=replicas, router="affinity",
            requests=trace, num_gpus=num_gpus, prefix_cache=True,
            steal=True, migrate_kv=True, faults=plan,
        )
        result = fleet.run(clone_requests(trace))
        points.append((mtbf, FaultPoint.measure(f"mtbf={mtbf:.0f}s", result, 0.0)))
    return points


def render_fault_table(points: Sequence[FaultPoint]) -> str:
    """Text table: one row per variant."""
    from repro.experiments.report import table

    rows = [
        [
            p.variant,
            f"{p.per_token * 1000:.2f}",
            f"{p.per_token_p99 * 1000:.2f}",
            f"{p.post_crash_p99 * 1000:.2f}",
            f"{p.finished}/{p.total}",
            f"{p.availability:.1%}",
            f"{p.lost_kv_tokens:,}",
            str(p.failovers),
            f"{p.failover_reprefill_tokens:,}",
            f"{p.hit_rate:.1%}",
        ]
        for p in points
    ]
    return table(
        ["variant", "per-tok ms", "p99 ms", "post-crash p99 ms", "fin/total",
         "avail", "lost-kv", "failovers", "re-prefill", "hit-rate"],
        rows,
    )
