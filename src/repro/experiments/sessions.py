"""Multi-turn session serving: cache-affinity routing vs. baselines.

A rate sweep over the Sessions conversation workload with N LoongServe
replicas (prefix-KV cache armed) behind each routing policy.  Stateless
policies scatter a conversation's turns across the fleet, so a follow-up
turn usually lands on a replica that never saw the session and
re-prefills the whole context; cache-affinity routing sends each turn to
the replica holding the longest matching prefix, which turns the shared
context into pure prefill savings.  The sweep reports the paper's
normalised-latency metrics plus the cache telemetry that explains the
gap: per-policy prefix hit rate and fleet-wide saved prefill tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.endtoend import RatePoint, SystemCurve, reference_ideal_model
from repro.experiments.systems import make_fleet
from repro.metrics.fleet import fleet_load_report
from repro.metrics.latency import summarize_latency
from repro.metrics.slo import slo_report
from repro.sessions import SESSIONS, SessionSpec, make_session_trace
from repro.workloads.trace_gen import clone_requests

SESSION_ROUTERS = ["round-robin", "least-kv", "affinity"]
# Session arrival rates (sessions/s, each session ~`mean_turns` requests);
# chosen so a 4-replica fleet moves from relaxed to clearly contended.
SESSION_RATES = [0.4, 0.8, 1.2]
SESSION_WINDOW_S = 25.0


@dataclass
class SessionCurve:
    """One router's rate sweep plus per-rate cache telemetry."""

    router: str
    curve: SystemCurve
    hit_rates: list[float] = field(default_factory=list)
    saved_tokens: list[int] = field(default_factory=list)


def session_sweep(
    system: str = "loongserve",
    routers: Sequence[str] = tuple(SESSION_ROUTERS),
    rates: Sequence[float] = tuple(SESSION_RATES),
    replicas: int = 4,
    spec: SessionSpec = SESSIONS,
    num_gpus: int = 8,
    scale: float = 1.0,
    seed: int = 11,
    min_sessions: int = 10,
) -> list[SessionCurve]:
    """Sweep session arrival rate under each router, caches armed."""
    ideal = reference_ideal_model(num_gpus=num_gpus)
    results = {
        name: SessionCurve(router=name, curve=SystemCurve(system=name))
        for name in routers
    }
    for rate in rates:
        count = max(int(min_sessions * scale), int(rate * SESSION_WINDOW_S * scale))
        trace = make_session_trace(spec, rate=rate, num_sessions=count, seed=seed)
        for name in routers:
            fleet = make_fleet(
                system, replicas=replicas, router=name,
                requests=trace, num_gpus=num_gpus, prefix_cache=True,
            )
            result = fleet.run(clone_requests(trace))
            latency = summarize_latency(result)
            slo = slo_report(result, ideal)
            results[name].curve.points.append(
                RatePoint(
                    rate=rate,
                    per_token=latency.per_token,
                    input_token=latency.input_token,
                    output_token=latency.output_token,
                    attainment=slo.attainment,
                    finished=latency.finished,
                    total=slo.total,
                    aborted=len(result.aborted),
                    scale_up_events=sum(
                        1 for e in result.scaling_events if e.kind == "scale_up"
                    ),
                )
            )
            report = fleet_load_report(result.per_replica)
            cache = result.cache_stats or {}
            total = cache.get("hit_tokens", 0) + cache.get("miss_tokens", 0)
            results[name].hit_rates.append(
                cache.get("hit_tokens", 0) / total if total else 0.0
            )
            results[name].saved_tokens.append(report.saved_prefill_tokens)
    return [results[name] for name in routers]


def affinity_advantage(curves: Sequence[SessionCurve]) -> dict[str, float]:
    """Headline comparison at the highest swept rate.

    Returns round-robin / affinity ratios of mean per-token input
    (prefill) latency and overall per-token latency, plus affinity's
    prefix hit rate — the numbers showing that keeping a conversation on
    the replica holding its KV converts the shared context into saved
    prefill (> 1.0 ratios when affinity wins).
    """
    by_name = {c.router: c for c in curves}
    rr = by_name["round-robin"].curve.points[-1]
    aff = by_name["affinity"].curve.points[-1]
    return {
        "input_token_ratio": (
            rr.input_token / aff.input_token if aff.input_token else float("inf")
        ),
        "per_token_ratio": (
            rr.per_token / aff.per_token if aff.per_token else float("inf")
        ),
        "affinity_hit_rate": by_name["affinity"].hit_rates[-1],
        "round_robin_hit_rate": by_name["round-robin"].hit_rates[-1],
        "rate": aff.rate,
    }


def render_session_curves(curves: Sequence[SessionCurve]) -> str:
    """Text table: one row per (router, rate) measurement."""
    from repro.experiments.report import table

    rows = [
        [
            session_curve.router,
            f"{point.rate:.1f}",
            f"{point.per_token * 1000:.2f}",
            f"{point.input_token * 1000:.2f}",
            f"{point.output_token * 1000:.2f}",
            f"{point.attainment:.1%}",
            f"{point.finished}/{point.total}",
            f"{hit_rate:.1%}",
            f"{saved:,}",
        ]
        for session_curve in curves
        for point, hit_rate, saved in zip(
            session_curve.curve.points,
            session_curve.hit_rates,
            session_curve.saved_tokens,
        )
    ]
    return table(
        ["router", "rate", "per-tok ms", "input ms", "output ms",
         "attain", "fin/total", "hit-rate", "saved-tok"],
        rows,
    )
