"""Plain-text rendering of experiment results.

The reproduction has no plotting dependency; every figure is rendered as
an aligned text table whose rows/series match the paper's plot, plus the
paper-reported anchor values for easy side-by-side reading.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.endtoend import SystemCurve
from repro.experiments.microbench import (
    Figure2Row,
    Figure3Row,
    Figure14aRow,
    Figure14bRow,
    Figure15Point,
)


def table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Align columns; headers underlined.

    The one shared row formatter: every experiment table (figures,
    fleet/sessions/elastic/fault sweeps, QoS per-class breakdowns)
    renders through here instead of hand-aligning f-strings.
    """
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in rows)
    return "\n".join(lines)


def render_figure2(rows: list[Figure2Row]) -> str:
    body = []
    for row in rows:
        times = row.times
        tps = sorted(times)
        body.append(
            [
                row.phase,
                str(row.batch_size),
                str(row.length),
                *(f"{times[tp] * 1000:.2f}" for tp in tps),
                f"{row.speedup_at_max_tp:.2f}x",
            ]
        )
    tps = sorted(rows[0].times)
    return table(
        ["phase", "BS", "len", *(f"TP={tp} (ms)" for tp in tps), "speedup 2->8"],
        body,
    )


def render_figure3(rows: list[Figure3Row]) -> str:
    labels = list(rows[0].times)
    body = [
        [
            row.phase,
            str(row.batch_size),
            str(row.length),
            *(f"{row.times[label]:.4f}" for label in labels),
            row.best,
        ]
        for row in rows
    ]
    return table(["phase", "BS", "len", *(f"{l} (s)" for l in labels), "best"], body)


def render_curves(curves: list[SystemCurve]) -> str:
    body = []
    for curve in curves:
        for point in curve.points:
            body.append(
                [
                    curve.system,
                    f"{point.rate:.2f}",
                    f"{point.per_token:.4f}",
                    f"{point.input_token:.4f}",
                    f"{point.output_token:.4f}",
                    f"{point.attainment * 100:.0f}%",
                    f"{point.finished}/{point.total}",
                    str(point.aborted),
                ]
            )
    return table(
        [
            "system",
            "rate(req/s)",
            "tok(s/t)",
            "in(s/t)",
            "out(s/t)",
            "SLO",
            "finished",
            "aborted",
        ],
        body,
    )


def render_goodput(curves: list[SystemCurve], target: float = 0.90) -> str:
    body = [
        [curve.system, f"{curve.goodput(target):.2f}"] for curve in curves
    ]
    return table(["system", "P90 goodput (req/s)"], body)


def render_figure14a(rows: list[Figure14aRow]) -> str:
    body = [
        [
            str(row.batch_size),
            str(row.length),
            f"{row.plain_prefill:.3f}",
            f"{row.proactive_overhead * 100:.2f}%",
            f"{row.reactive_overhead * 100:.2f}%",
        ]
        for row in rows
    ]
    return table(
        ["BS", "len", "prefill (s)", "proactive ovh", "reactive ovh"], body
    )


def render_figure14b(rows: list[Figure14bRow]) -> str:
    body = [
        [
            str(row.batch_size),
            str(row.length),
            *(f"{row.times[m] * 1000:.2f}" for m in (1, 2, 4)),
            f"{row.speedup_4_masters:.2f}x",
        ]
        for row in rows
    ]
    return table(
        ["BS", "len", "1 master (ms)", "2 masters (ms)", "4 masters (ms)", "speedup"],
        body,
    )


def render_class_table(outcomes, makespan: float) -> str:
    """Per-QoS-class breakdown (``repro.metrics.qos.ClassOutcome``).

    Rows render in tier order — tightest deadline scale first — not
    alphabetically.
    """
    rows = []
    for name in sorted(
        outcomes, key=lambda n: (outcomes[n].deadline_scale, n)
    ):
        o = outcomes[name]
        rows.append(
            [
                o.qos_class,
                f"{o.deadline_scale:.0f}x",
                str(o.submitted),
                str(o.finished),
                f"{o.attainment:.1%}",
                f"{o.goodput_tokens_per_s(makespan):,.0f}",
                str(o.rejected),
                str(o.downgraded),
                str(o.preempted),
            ]
        )
    return table(
        ["class", "slo", "submitted", "finished", "attain", "goodput tok/s",
         "rejected", "downgraded", "preempted"],
        rows,
    )


def render_figure15(points: list[Figure15Point], limit: int = 30) -> str:
    body = [
        [
            p.strategy,
            str(p.batch_size),
            str(p.length),
            f"{p.predicted:.3f}",
            f"{p.measured:.3f}",
            f"{p.deviation * 100:.2f}%",
        ]
        for p in points[:limit]
    ]
    return table(["strategy", "BS", "len", "pred (s)", "real (s)", "dev"], body)
