"""QoS under overload: protecting interactive traffic at equal capacity.

The scenario the subsystem exists for: a fleet sized below the offered
load serves three tenant tiers at once — interactive multi-turn
sessions (tight 10x deadline), standard single-turn API calls, and
batch long-context jobs (loose 100x deadline, preemptible).  An
FCFS/no-QoS fleet spreads the misses uniformly: long batch prefills
queue ahead of chat turns and everybody's attainment sinks together.
The QoS stack — deadline-feasibility admission, earliest-slack-first
dispatch with batch-tier preemption, and slack-predicting ``slo``
placement — concentrates the inevitable misses on the traffic that
bought loose deadlines.

Three variants at *equal capacity* (same replicas, same trace):

* ``fcfs`` — least-kv placement, no QoS anywhere (the baseline).
* ``priority`` — deadline-aware scheduling only (no admission, default
  placement): the ordering/preemption ablation.
* ``qos`` — the full stack: admission + preemption + ``slo`` routing.

Headline (asserted by ``benchmarks/bench_qos.py``): interactive-tier
attainment at least ~1.3x the FCFS baseline with total goodput no
worse.  A closed-loop coda re-runs the session tier with arrival
feedback (``repro.sessions.ClosedLoopDriver``) — the realistic
interactive driver — to show the stack end-to-end off the open-loop
grid.  Run via ``python -m repro.experiments qos``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.endtoend import reference_ideal_model
from repro.experiments.systems import make_fleet
from repro.metrics.latency import summarize_latency
from repro.metrics.qos import ClassOutcome, per_class_report
from repro.sessions import (
    ClosedLoopDriver,
    SessionSpec,
    make_session_trace,
    plan_sessions,
    tag_session_plans,
)
from repro.workloads.datasets import MIXED, LengthSpec
from repro.workloads.trace_gen import clone_requests, make_trace

# Interactive tier: chatty multi-turn sessions with short think times,
# so turns keep arriving while the fleet is saturated.
QOS_SESSION_SPEC = SessionSpec(
    mean_turns=4.0,
    first_input=LengthSpec(
        log_mean=math.log(600.0), log_sigma=0.7, minimum=32, maximum=4000
    ),
    turn_input=LengthSpec(
        log_mean=math.log(200.0), log_sigma=0.6, minimum=16, maximum=1500
    ),
    output=LengthSpec(
        log_mean=math.log(180.0), log_sigma=0.7, minimum=8, maximum=800
    ),
    think_time_mean_s=5.0,
    max_context_len=24_000,
)

# Standard/batch tiers: the paper's Mixed long/short population, long
# inputs capped so they fit the deliberately small replicas.
SINGLES_MIX = {"standard": 0.55, "batch": 0.45}
MAX_SINGLE_INPUT = 30_000

REPLICAS = 3
NUM_GPUS = 4  # per replica: two TP=2 instances — small on purpose
SESSION_RATE = 3.0  # sessions/s
SINGLES_RATE = 16.0  # requests/s
SESSION_COUNT = 30
SINGLES_COUNT = 100

QOS_VARIANTS: dict[str, dict] = {
    "fcfs": {"router": "least-kv"},
    "priority": {"router": "least-kv", "qos": True},
    "qos": {"router": "slo", "qos": True, "admission": True},
}


def make_qos_trace(
    scale: float = 1.0,
    seed: int = 13,
    session_rate: float = SESSION_RATE,
    singles_rate: float = SINGLES_RATE,
):
    """The overloaded three-tier trace: sessions (interactive) merged
    with Mixed singles (standard/batch), sorted by arrival."""
    sessions = make_session_trace(
        QOS_SESSION_SPEC,
        rate=session_rate,
        num_sessions=max(6, int(SESSION_COUNT * scale)),
        seed=seed,
        qos_mix={"interactive": 1.0},
    )
    singles = make_trace(
        MIXED,
        rate=singles_rate,
        num_requests=max(20, int(SINGLES_COUNT * scale)),
        seed=seed + 1,
        max_input_len=MAX_SINGLE_INPUT,
        qos_mix=SINGLES_MIX,
    )
    trace = sessions + singles
    trace.sort(key=lambda r: (r.arrival_time, r.request_id))
    return trace


@dataclass(frozen=True)
class QoSPoint:
    """One variant's per-class scorecard on the shared trace."""

    variant: str
    outcomes: dict[str, ClassOutcome]
    makespan: float
    per_token: float
    finished: int
    total: int

    def attainment(self, qos_class: str) -> float:
        outcome = self.outcomes.get(qos_class)
        return outcome.attainment if outcome is not None else 0.0

    @property
    def total_goodput(self) -> float:
        """Attained tokens/s summed over every class."""
        return sum(
            o.goodput_tokens_per_s(self.makespan) for o in self.outcomes.values()
        )


def qos_sweep(
    variants: Sequence[str] = tuple(QOS_VARIANTS),
    replicas: int = REPLICAS,
    num_gpus: int = NUM_GPUS,
    scale: float = 1.0,
    seed: int = 13,
    session_rate: float = SESSION_RATE,
    singles_rate: float = SINGLES_RATE,
) -> list[QoSPoint]:
    """Serve the shared overloaded trace under each variant."""
    trace = make_qos_trace(
        scale=scale, seed=seed,
        session_rate=session_rate, singles_rate=singles_rate,
    )
    ideal = reference_ideal_model(num_gpus=num_gpus)
    points = []
    for variant in variants:
        kwargs = dict(QOS_VARIANTS[variant])
        fleet = make_fleet(
            "loongserve", replicas=replicas, requests=trace,
            num_gpus=num_gpus, prefix_cache=True, **kwargs,
        )
        result = fleet.run(clone_requests(trace))
        summary = summarize_latency(result)
        points.append(
            QoSPoint(
                variant=variant,
                outcomes=per_class_report(result, ideal),
                makespan=result.makespan,
                per_token=summary.per_token,
                finished=summary.finished,
                total=summary.total + len(result.aborted),
            )
        )
    return points


def qos_advantage(points: Sequence[QoSPoint]) -> dict[str, float]:
    """Headline ratios: full QoS stack vs. the FCFS baseline."""
    by_name = {p.variant: p for p in points}
    fcfs = by_name["fcfs"]
    qos = by_name["qos"]
    base_attainment = fcfs.attainment("interactive")
    return {
        "interactive_attainment_ratio": (
            qos.attainment("interactive") / base_attainment
            if base_attainment
            else float("inf")
        ),
        "interactive_fcfs": base_attainment,
        "interactive_qos": qos.attainment("interactive"),
        "goodput_ratio": (
            qos.total_goodput / fcfs.total_goodput
            if fcfs.total_goodput
            else float("inf")
        ),
        "batch_qos": qos.attainment("batch"),
    }


def closed_loop_attainment(
    replicas: int = REPLICAS,
    num_gpus: int = NUM_GPUS,
    scale: float = 1.0,
    seed: int = 13,
) -> dict[str, float]:
    """Interactive sessions under arrival feedback, full QoS stack.

    Closed-loop arrivals are the realistic interactive driver: the next
    turn cannot arrive before the previous one finishes, so overload
    self-throttles instead of stacking turns.  Returns the tier's
    attainment plus the realised request count (a run outcome here).
    """
    plans = tag_session_plans(
        plan_sessions(
            QOS_SESSION_SPEC,
            rate=SESSION_RATE,
            num_sessions=max(6, int(SESSION_COUNT * scale)),
            seed=seed,
        ),
        {"interactive": 1.0},
        seed=seed,
    )
    fleet = make_fleet(
        "loongserve", replicas=replicas, num_gpus=num_gpus,
        prefix_cache=True, router="slo", qos=True, admission=True,
    )
    result = fleet.run_driven(ClosedLoopDriver(plans))
    ideal = reference_ideal_model(num_gpus=num_gpus)
    outcomes = per_class_report(result, ideal)
    interactive = outcomes.get("interactive")
    return {
        "attainment": interactive.attainment if interactive else 0.0,
        "submitted": float(interactive.submitted if interactive else 0),
        "finished": float(len(result.finished_requests)),
    }


def render_qos_table(points: Sequence[QoSPoint]) -> str:
    """Summary table (one row per variant) plus per-class breakdowns."""
    from repro.experiments.report import render_class_table, table

    rows = [
        [
            p.variant,
            f"{p.attainment('interactive'):.1%}",
            f"{p.attainment('standard'):.1%}",
            f"{p.attainment('batch'):.1%}",
            f"{p.total_goodput:,.0f}",
            f"{p.per_token * 1000:.2f}",
            f"{p.finished}/{p.total}",
        ]
        for p in points
    ]
    blocks = [
        table(
            ["variant", "interactive", "standard", "batch",
             "goodput tok/s", "per-tok ms", "fin/total"],
            rows,
        )
    ]
    for p in points:
        blocks.append(f"\n[{p.variant}]")
        blocks.append(render_class_table(p.outcomes, p.makespan))
    return "\n".join(blocks)
