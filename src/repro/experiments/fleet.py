"""Fleet-scale routing-policy comparison.

A rate sweep over the Mixed long/short workload with N identical
replicas behind each routing policy — the fleet analogue of the paper's
Figure 11 interference scenario: round-robin lands long-context
prefills on every replica, stalling the short requests batched behind
them, while length-aware routing confines the long population to a
subset of replicas and protects the short requests' latency.  The
sweep reports the paper's normalised-latency metrics, SLO attainment,
and the per-replica token imbalance that explains the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.endtoend import RatePoint, SystemCurve, reference_ideal_model
from repro.experiments.systems import make_fleet
from repro.metrics.fleet import fleet_load_report
from repro.metrics.latency import summarize_latency
from repro.metrics.slo import slo_report
from repro.workloads.datasets import MIXED
from repro.workloads.trace_gen import clone_requests, make_trace

FLEET_ROUTERS = ["round-robin", "least-outstanding", "least-kv", "length-aware"]
# Per-replica rates around one deployment's Mixed knee (Figure 10 swept
# 0.3-1.2 req/s on 8 GPUs); a 4-replica fleet saturates at ~4x that.
FLEET_RATES = [2.0, 4.0, 6.0]
FLEET_WINDOW_S = 25.0


@dataclass
class FleetCurve:
    """One router's rate sweep plus per-rate load-imbalance stats."""

    router: str
    curve: SystemCurve
    token_imbalance: list[float] = field(default_factory=list)


def router_sweep(
    system: str = "loongserve",
    routers: Sequence[str] = tuple(FLEET_ROUTERS),
    rates: Sequence[float] = tuple(FLEET_RATES),
    replicas: int = 4,
    dataset=MIXED,
    num_gpus: int = 8,
    scale: float = 1.0,
    seed: int = 17,
    min_requests: int = 40,
) -> list[FleetCurve]:
    """Sweep arrival rate for one replica system under each router."""
    ideal = reference_ideal_model(num_gpus=num_gpus)
    results = {name: FleetCurve(router=name, curve=SystemCurve(system=name))
               for name in routers}
    for rate in rates:
        count = max(int(min_requests * scale), int(rate * FLEET_WINDOW_S * scale))
        trace = make_trace(dataset, rate=rate, num_requests=count, seed=seed)
        for name in routers:
            fleet = make_fleet(
                system, replicas=replicas, router=name,
                requests=trace, num_gpus=num_gpus,
            )
            result = fleet.run(clone_requests(trace))
            latency = summarize_latency(result)
            slo = slo_report(result, ideal)
            results[name].curve.points.append(
                RatePoint(
                    rate=rate,
                    per_token=latency.per_token,
                    input_token=latency.input_token,
                    output_token=latency.output_token,
                    attainment=slo.attainment,
                    finished=latency.finished,
                    total=slo.total,
                    aborted=len(result.aborted),
                    scale_up_events=sum(
                        1 for e in result.scaling_events if e.kind == "scale_up"
                    ),
                )
            )
            results[name].token_imbalance.append(
                fleet_load_report(result.per_replica).token_imbalance
            )
    return [results[name] for name in routers]


def length_aware_advantage(curves: Sequence[FleetCurve]) -> dict[str, float]:
    """Headline comparison at the highest swept rate.

    Returns the round-robin / length-aware ratios of mean per-token
    latency and the attainment delta — the numbers that show sharding
    long-context requests away from short-request replicas paying off
    under pressure (> 1.0 / > 0.0 respectively when length-aware wins).
    """
    by_name = {c.router: c for c in curves}
    rr = by_name["round-robin"].curve.points[-1]
    la = by_name["length-aware"].curve.points[-1]
    return {
        "per_token_ratio": rr.per_token / la.per_token if la.per_token else float("inf"),
        "attainment_delta": la.attainment - rr.attainment,
        "rate": la.rate,
    }


def render_fleet_curves(curves: Sequence[FleetCurve]) -> str:
    """Text table: one row per (router, rate) measurement."""
    from repro.experiments.report import table

    rows = [
        [
            fleet_curve.router,
            f"{point.rate:.1f}",
            f"{point.per_token * 1000:.2f}",
            f"{point.input_token * 1000:.2f}",
            f"{point.output_token * 1000:.2f}",
            f"{point.attainment:.1%}",
            f"{point.finished}/{point.total}",
            f"{imbalance:.2f}",
        ]
        for fleet_curve in curves
        for point, imbalance in zip(
            fleet_curve.curve.points, fleet_curve.token_imbalance
        )
    ]
    return table(
        ["router", "rate", "per-tok ms", "input ms", "output ms",
         "attain", "fin/total", "imb"],
        rows,
    )
