"""End-to-end serving experiments: Figures 10, 11, 12, 13.

Each figure is a rate sweep: generate a Poisson trace per rate, replay it
on every system, and collect the paper's metrics.  Request counts scale
with the rate so every run covers a comparable arrival window; the
``scale`` knob shrinks runs for quick benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.cluster import Cluster
from repro.costmodel.latency import RooflineCostModel
from repro.experiments.systems import make_system
from repro.metrics.latency import summarize_latency
from repro.metrics.slo import (
    DEFAULT_SLO_SCALE,
    IdealLatencyModel,
    max_rate_under_slo,
    slo_report,
)
from repro.metrics.summary import scale_event_histogram
from repro.model.spec import LWM_7B_1M
from repro.types import Request
from repro.workloads.datasets import DATASETS, MIXED, SHAREGPT, ZipfMixed
from repro.workloads.trace_gen import clone_requests, make_trace


def reference_ideal_model(num_gpus: int = 8) -> IdealLatencyModel:
    """One deadline model shared by every system (fair comparison)."""
    cluster = Cluster.homogeneous(num_gpus=num_gpus)
    cost = RooflineCostModel(cluster=cluster, model=LWM_7B_1M)
    return IdealLatencyModel(
        cost_model=cost, tensor_parallel=2, max_instances=num_gpus // 2
    )


@dataclass
class RatePoint:
    """One (system, rate) measurement."""

    rate: float
    per_token: float
    input_token: float
    output_token: float
    attainment: float
    finished: int
    total: int
    aborted: int
    scale_up_events: int = 0


@dataclass
class SystemCurve:
    system: str
    points: list[RatePoint] = field(default_factory=list)

    def goodput(self, target: float = 0.90) -> float:
        return max_rate_under_slo(
            [p.rate for p in self.points],
            [p.attainment for p in self.points],
            target=target,
        )


def run_system_at_rate(
    system_name: str,
    trace: Sequence[Request],
    rate: float,
    ideal: IdealLatencyModel,
    num_gpus: int = 8,
    gpus_per_node: int = 8,
    slo_scale: float = DEFAULT_SLO_SCALE,
) -> RatePoint:
    """Replay one trace on one system and summarise it."""
    system = make_system(
        system_name, requests=trace, num_gpus=num_gpus, gpus_per_node=gpus_per_node
    )
    result = system.run(clone_requests(trace))
    latency = summarize_latency(result)
    slo = slo_report(result, ideal, scale=slo_scale)
    scale_ups = sum(1 for e in result.scaling_events if e.kind == "scale_up")
    return RatePoint(
        rate=rate,
        per_token=latency.per_token,
        input_token=latency.input_token,
        output_token=latency.output_token,
        attainment=slo.attainment,
        finished=latency.finished,
        total=slo.total,
        aborted=len(result.aborted),
        scale_up_events=scale_ups,
    )


def sweep(
    system_names: Sequence[str],
    dataset,
    rates: Sequence[float],
    requests_per_rate_second: float,
    seed: int = 7,
    min_requests: int = 40,
    num_gpus: int = 8,
    gpus_per_node: int = 8,
    scale: float = 1.0,
) -> list[SystemCurve]:
    """Rate sweep for several systems over one dataset."""
    ideal = reference_ideal_model(num_gpus=num_gpus)
    curves = {name: SystemCurve(system=name) for name in system_names}
    for rate in rates:
        count = max(int(min_requests * scale), int(rate * requests_per_rate_second * scale))
        trace = make_trace(dataset, rate=rate, num_requests=count, seed=seed)
        for name in system_names:
            point = run_system_at_rate(
                name, trace, rate, ideal, num_gpus=num_gpus, gpus_per_node=gpus_per_node
            )
            curves[name].points.append(point)
    return list(curves.values())


# -- Figure 10: single-node end-to-end comparison -----------------------------------

FIGURE10_SYSTEMS = ["loongserve", "vllm", "splitfuse", "distserve"]
# The simulated substrate is an idealised A800 node, so saturation sits at
# higher absolute rates than the paper's testbed; the grids below bracket
# each system's knee (the paper's ranges were ShareGPT 0-30, L-Eval 0-2.5,
# LV-Eval 0-0.2, Mixed 0-0.6 req/s).
FIGURE10_RATES = {
    "sharegpt": [10.0, 20.0, 40.0, 60.0, 80.0],
    "leval": [0.5, 1.0, 2.0, 3.0, 4.0],
    "lveval": [0.1, 0.2, 0.3, 0.4],
    "mixed": [0.3, 0.6, 0.9, 1.2],
}
FIGURE10_WINDOW_S = 25.0  # arrival window covered per rate point


def figure10(
    datasets: Sequence[str] | None = None,
    scale: float = 1.0,
    seed: int = 7,
) -> dict[str, list[SystemCurve]]:
    """The paper's headline comparison (Figure 10).

    DeepSpeed-MII only joins the ShareGPT row (it crashes past 32K-token
    prompts, §7.1), exactly as in the paper.
    """
    results: dict[str, list[SystemCurve]] = {}
    for dataset_name in datasets or list(FIGURE10_RATES):
        systems = list(FIGURE10_SYSTEMS)
        if dataset_name == "sharegpt":
            systems.insert(2, "deepspeed-mii")
        results[dataset_name] = sweep(
            systems,
            DATASETS[dataset_name],
            FIGURE10_RATES[dataset_name],
            requests_per_rate_second=FIGURE10_WINDOW_S,
            seed=seed,
            scale=scale,
        )
    return results


def headline_ratios(results: dict[str, list[SystemCurve]]) -> dict[str, float]:
    """Throughput-ratio headlines (§7.2): LoongServe vs. each baseline.

    The ratio for a baseline is the best over datasets of
    (LoongServe goodput) / (baseline goodput); infinite ratios (baseline
    never meets the SLO at any swept rate) are reported as the largest
    finite comparison.
    """
    ratios: dict[str, float] = {}
    for curves in results.values():
        by_name = {c.system: c for c in curves}
        loong = by_name.get("loongserve")
        if loong is None:
            continue
        loong_goodput = loong.goodput()
        for name, curve in by_name.items():
            if name == "loongserve":
                continue
            baseline_goodput = curve.goodput()
            if baseline_goodput > 0 and loong_goodput > 0:
                ratio = loong_goodput / baseline_goodput
                ratios[name] = max(ratios.get(name, 0.0), ratio)
    return ratios


# -- Figure 11: multi-node -------------------------------------------------------------

FIGURE11_RATES = [0.2, 0.4, 0.6, 0.8]


def figure11(scale: float = 1.0, seed: int = 11) -> list[SystemCurve]:
    """16-GPU Mixed-workload comparison (Figure 11).

    Baselines deploy one replica per server (the paper's setup); the
    replicated builders live in systems.py and are addressed through
    dedicated names here.
    """
    from repro.experiments import systems as sys_mod

    ideal = reference_ideal_model(num_gpus=16)
    builders = {
        "loongserve": lambda trace: sys_mod.build_loongserve(
            num_gpus=16, gpus_per_node=8
        ),
        "vllm": lambda trace: sys_mod.build_vllm_per_node(num_gpus=16, gpus_per_node=8),
        "splitfuse": lambda trace: sys_mod.build_splitfuse_per_node(
            trace, num_gpus=16, gpus_per_node=8
        ),
    }
    curves = {name: SystemCurve(system=name) for name in builders}
    for rate in FIGURE11_RATES:
        count = max(int(40 * scale), int(rate * FIGURE10_WINDOW_S * 2 * scale))
        trace = make_trace(MIXED, rate=rate, num_requests=count, seed=seed)
        for name, builder in builders.items():
            system = builder(trace)
            result = system.run(clone_requests(trace))
            latency = summarize_latency(result)
            slo = slo_report(result, ideal)
            curves[name].points.append(
                RatePoint(
                    rate=rate,
                    per_token=latency.per_token,
                    input_token=latency.input_token,
                    output_token=latency.output_token,
                    attainment=slo.attainment,
                    finished=latency.finished,
                    total=slo.total,
                    aborted=len(result.aborted),
                )
            )
    return list(curves.values())


# -- Figure 12: ESP ablation under Zipf length skew ---------------------------------------

FIGURE12_SYSTEMS = ["loongserve", "vllm", "static-sp", "replicated-tp2"]
# As with Figure 10, the substrate's knees sit above the paper's testbed
# rates (paper: Zipf 1.0 swept to 1.75, 1.2 to 3, 1.4 to 10 req/s).
FIGURE12_RATES = {
    1.0: [1.0, 2.0, 4.0, 6.0, 8.0],
    1.2: [2.0, 5.0, 10.0, 15.0],
    1.4: [5.0, 15.0, 30.0, 45.0],
}


def figure12(
    zipf_params: Sequence[float] = (1.0, 1.2, 1.4),
    scale: float = 1.0,
    seed: int = 12,
) -> dict[float, list[SystemCurve]]:
    """P90 goodput of static parallelisms vs. LoongServe (Figure 12)."""
    results = {}
    for zipf in zipf_params:
        dataset = ZipfMixed(name=f"Zipf-{zipf}", zipf=zipf)
        results[zipf] = sweep(
            FIGURE12_SYSTEMS,
            dataset,
            FIGURE12_RATES[zipf],
            requests_per_rate_second=FIGURE10_WINDOW_S,
            seed=seed,
            scale=scale,
        )
    return results


def figure12_goodput_ratios(results: dict[float, list[SystemCurve]]) -> dict[float, float]:
    """LoongServe's P90 goodput over the best static baseline, per Zipf."""
    ratios = {}
    for zipf, curves in results.items():
        by_name = {c.system: c for c in curves}
        loong = by_name["loongserve"].goodput()
        best_static = max(
            (c.goodput() for name, c in by_name.items() if name != "loongserve"),
            default=0.0,
        )
        ratios[zipf] = loong / best_static if best_static > 0 else float("inf")
    return ratios


# -- Figure 13: elastic scale-up ablation ------------------------------------------------

FIGURE13_RATES = [10.0, 20.0, 30.0, 45.0, 60.0, 80.0]
FIGURE13_FREQUENCY_RATE = 40.0


def figure13a(scale: float = 1.0, seed: int = 13) -> list[SystemCurve]:
    """SLO attainment with and without elastic scale-up (ShareGPT).

    Uses a longer arrival window than Figure 10: the no-scale-up penalty
    is memory pressure on the batch's original instances, which takes
    sustained load to build up.
    """
    return sweep(
        ["loongserve", "loongserve-no-scaleup"],
        SHAREGPT,
        FIGURE13_RATES,
        requests_per_rate_second=2 * FIGURE10_WINDOW_S,
        seed=seed,
        scale=scale,
    )


def figure13b(
    duration_s: float = 200.0, rate: float = FIGURE13_FREQUENCY_RATE, seed: int = 13
) -> list[int]:
    """Scale-up operations per 10-second bin at 25 req/s (Figure 13b)."""
    count = int(rate * duration_s)
    trace = make_trace(SHAREGPT, rate=rate, num_requests=count, seed=seed)
    system = make_system("loongserve", requests=trace)
    result = system.run(clone_requests(trace))
    return scale_event_histogram(
        result.scaling_events, kind="scale_up", bin_seconds=10.0, until=result.makespan
    )
