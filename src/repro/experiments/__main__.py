"""CLI: regenerate any paper figure as a text table.

    python -m repro.experiments figure2
    python -m repro.experiments figure10 --scale 0.5 --datasets sharegpt mixed
    python -m repro.experiments all --scale 0.25
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.experiments import endtoend, microbench, report


def _run_figure2(args: argparse.Namespace) -> None:
    rows = microbench.figure2()
    print("Figure 2 — scalability of requests vs. TP degree")
    print(report.render_figure2(rows))
    print("\npaper anchor: prefill 100K is ~106x slower than 1K on 8 GPUs")


def _run_figure3(args: argparse.Namespace) -> None:
    rows = microbench.figure3()
    print("Figure 3 — fixed sequence parallelism vs. tensor parallelism")
    print(report.render_figure3(rows))
    print("\npaper anchor: SPxTP matches or beats pure TP=8 in both phases")


def _run_figure10(args: argparse.Namespace) -> None:
    results = endtoend.figure10(datasets=args.datasets, scale=args.scale)
    for dataset, curves in results.items():
        print(f"\nFigure 10 — {dataset}")
        print(report.render_curves(curves))
        print(report.render_goodput(curves))
    ratios = endtoend.headline_ratios(results)
    print("\nheadline throughput ratios (LoongServe / baseline, best dataset):")
    for name, ratio in sorted(ratios.items()):
        print(f"  vs {name}: {ratio:.2f}x")
    print("paper anchors: up to 3.85x vs chunked prefill, 5.81x vs disaggregation,")
    print("               4.64x vs vLLM")


def _run_figure11(args: argparse.Namespace) -> None:
    curves = endtoend.figure11(scale=args.scale)
    print("Figure 11 — multi-node (16 GPUs), Mixed workload")
    print(report.render_curves(curves))
    print(report.render_goodput(curves))
    print("\npaper anchors: 1.86x total throughput vs vLLM, 3.37x vs SplitFuse")


def _run_figure12(args: argparse.Namespace) -> None:
    results = endtoend.figure12(scale=args.scale)
    for zipf, curves in results.items():
        print(f"\nFigure 12 — Zipf={zipf}")
        print(report.render_curves(curves))
        print(report.render_goodput(curves))
    ratios = endtoend.figure12_goodput_ratios(results)
    print("\ngoodput improvement over best static parallelism:")
    for zipf, ratio in sorted(ratios.items()):
        print(f"  Zipf={zipf}: {ratio:.2f}x")
    print("paper anchors: 2.33x / 1.98x / 1.53x at Zipf 1.0 / 1.2 / 1.4")


def _run_figure13(args: argparse.Namespace) -> None:
    curves = endtoend.figure13a(scale=args.scale)
    print("Figure 13a — SLO attainment with/without elastic scale-up (ShareGPT)")
    print(report.render_curves(curves))
    print(report.render_goodput(curves))
    bins = endtoend.figure13b(duration_s=100.0 * args.scale + 50.0)
    mean_rate = float(np.mean(bins)) if bins else 0.0
    print(f"\nFigure 13b — scale-up ops per 10s bin: {bins}")
    print(f"mean: {mean_rate:.2f} per 10s (paper anchor: 7.12 per 10s; 2.87x goodput)")


def _run_figure14(args: argparse.Namespace) -> None:
    rows_a = microbench.figure14a()
    rows_b = microbench.figure14b()
    print("Figure 14a — scale-down overhead (proactive vs. reactive)")
    print(report.render_figure14a(rows_a))
    print("\nFigure 14b — scale-up: decode with 1/2/4 masters")
    print(report.render_figure14b(rows_b))
    print("\npaper anchors: scale-down <2% overhead; 4 masters ~2x at large BS,")
    print("               <10% overhead at small BS")


def _run_figure15(args: argparse.Namespace) -> None:
    points = microbench.figure15()
    print("Figure 15 — analytical model accuracy")
    print(report.render_figure15(points))
    print(
        f"\nmax deviation:  {microbench.figure15_max_deviation(points) * 100:.2f}% "
        "(paper anchor: <10%)"
    )
    print(f"mean deviation: {microbench.figure15_mean_deviation(points) * 100:.2f}%")


def _run_fleet(args: argparse.Namespace) -> None:
    from repro.experiments import fleet

    curves = fleet.router_sweep(scale=args.scale)
    print("Fleet — 4x LoongServe replicas, Mixed workload, routing policies")
    print(fleet.render_fleet_curves(curves))
    advantage = fleet.length_aware_advantage(curves)
    print(
        f"\nlength-aware vs round-robin at {advantage['rate']:.1f} req/s: "
        f"{advantage['per_token_ratio']:.2f}x lower per-token latency, "
        f"{advantage['attainment_delta']:+.1%} SLO attainment"
    )
    print("(sharding long-context requests away from short-request replicas")
    print(" removes the Figure-11 prefill interference fleet-wide)")


def _run_sessions(args: argparse.Namespace) -> None:
    from repro.experiments import sessions

    curves = sessions.session_sweep(scale=args.scale)
    print("Sessions — 4x LoongServe replicas (prefix-KV cache), multi-turn workload")
    print(sessions.render_session_curves(curves))
    advantage = sessions.affinity_advantage(curves)
    print(
        f"\naffinity vs round-robin at {advantage['rate']:.1f} sessions/s: "
        f"{advantage['input_token_ratio']:.2f}x lower per-token prefill latency, "
        f"hit rate {advantage['affinity_hit_rate']:.1%} "
        f"vs {advantage['round_robin_hit_rate']:.1%}"
    )
    print("(routing follow-up turns to the replica holding their conversation's")
    print(" KV prefix turns the shared context into skipped prefill work)")


def _run_elastic_fleet(args: argparse.Namespace) -> None:
    from repro.experiments import elastic_fleet

    mixed = elastic_fleet.bursty_mixed_sweep(scale=args.scale)
    print("Elastic fleet — 4x LoongServe replicas, bursty Mixed workload")
    print(elastic_fleet.render_elastic_table(mixed))
    advantage = elastic_fleet.elastic_advantage(mixed)
    print(
        f"\nelastic vs static at equal replica count: "
        f"{advantage['per_token_ratio']:.2f}x lower mean per-token latency, "
        f"{advantage['p99_ratio']:.2f}x lower P99, "
        f"{advantage['capacity_ratio']:.2f}x fewer replica-seconds paid"
    )
    sessions = elastic_fleet.session_rebalance_sweep(scale=args.scale)
    print("\nElastic fleet — 2x LoongServe replicas (prefix caches), "
          "burst-then-lull Sessions")
    print(elastic_fleet.render_elastic_table(sessions, with_cache=True))
    preservation = elastic_fleet.migration_hit_preservation(sessions)
    retained = preservation.get("elastic_retention", 0.0)
    dropped = preservation.get("autoscale_retention", 0.0)
    print(
        f"\nKV migration keeps {retained:.1%} of the static affinity hit rate "
        f"after scale-in (vs {dropped:.1%} without migration)"
    )
    print("(parking a replica ships its resident session prefixes to the")
    print(" survivors, so consolidation does not cold-start conversations)")


def _run_disagg(args: argparse.Namespace) -> None:
    from repro.experiments import disagg

    mixed = disagg.disagg_mixed_sweep(scale=args.scale)
    print("Disaggregation — 4 replicas, bursty chat-heavy Mixed, "
          "monolithic vs 2 prefill + 2 decode")
    print(disagg.render_disagg_table(mixed))
    advantage = disagg.disagg_advantage(mixed)
    print(
        f"\ndisagg vs monolithic on the identical trace: "
        f"{advantage['attained_delta']:+.0f} SLO-attained requests, "
        f"{advantage['goodput_ratio']:.2f}x goodput, "
        f"{advantage['tpot_p90_ratio']:.2f}x lower TPOT P90"
    )
    print("(the decode pool never sees a prompt, so long prefills stop")
    print(" stalling co-resident decode iterations)")
    sessions = disagg.disagg_session_sweep(scale=args.scale)
    print("\nDisaggregation — 4 replicas, multi-turn sessions, "
          "monolithic (affinity) vs 1 prefill + 3 decode")
    print(disagg.render_disagg_table(sessions))
    print("(decode-pool prefix caches keep conversation KV warm across")
    print(" turns; each turn pays one priced prefill->decode handoff)")


def _run_faults(args: argparse.Namespace) -> None:
    from repro.experiments import faults

    # The failover sweep runs at full scale regardless of --scale: the
    # post-crash P99 gap only exists when the survivors are genuinely
    # loaded (see failover_sweep's docstring).
    points = faults.failover_sweep(scale=1.0)
    print("Faults — 3x LoongServe replicas (prefix caches), long-context "
          "sessions, replica 0 crashes mid-run")
    print(faults.render_fault_table(points))
    advantage = faults.failover_advantage(points)
    print(
        f"\nKV-migration failover vs naive re-dispatch after the crash: "
        f"{advantage['post_crash_p99_ratio']:.2f}x lower post-crash P99 "
        f"per-token latency, {advantage['post_crash_mean_ratio']:.2f}x lower mean "
        f"(availability {advantage['failover_availability']:.1%})"
    )
    print("(the copies steal-coupled and drain-rescue migration left on the")
    print(" survivors turn affinity failover into warm re-dispatch)")
    sweep = faults.availability_sweep(scale=min(args.scale, 0.5))
    print("\nAvailability under stochastic crashes (seeded Poisson, "
          "full failover stack):")
    for mtbf, point in sweep:
        print(
            f"  MTBF {mtbf:>6.0f}s: availability {point.availability:6.1%}, "
            f"{point.crashes} crashes, {point.lost_kv_tokens:,} KV tokens lost, "
            f"{point.finished}/{point.total} finished"
        )
    print("(every crash re-dispatches its orphans; no request is ever lost)")


def _run_qos(args: argparse.Namespace) -> None:
    from repro.experiments import qos

    # Like the faults sweep, the QoS gap needs genuine overload: below
    # full scale the short trace drains before queues build, so the
    # headline comparison ignores --scale (ledgers stay meaningful).
    points = qos.qos_sweep(scale=1.0)
    print("QoS — 3x LoongServe replicas (prefix caches), overloaded "
          "mixed long/short + sessions, three SLO tiers")
    print(qos.render_qos_table(points))
    advantage = qos.qos_advantage(points)
    print(
        f"\nfull QoS stack vs FCFS at equal capacity: interactive attainment "
        f"{advantage['interactive_qos']:.1%} vs {advantage['interactive_fcfs']:.1%} "
        f"({advantage['interactive_attainment_ratio']:.2f}x), total goodput "
        f"{advantage['goodput_ratio']:.2f}x, batch attainment "
        f"{advantage['batch_qos']:.1%}"
    )
    print("(admission sheds infeasible work, earliest-slack dispatch and")
    print(" batch-tier preemption protect tight deadlines, slo routing")
    print(" places each request where its predicted slack is largest)")
    closed = qos.closed_loop_attainment(scale=min(args.scale, 0.5))
    print(
        f"\nclosed-loop sessions (arrival feedback, full stack): "
        f"{closed['attainment']:.1%} interactive attainment over "
        f"{closed['submitted']:.0f} turns"
    )


def _main_explain(argv: list[str]) -> int:
    """`python -m repro.experiments explain` — replay an exported trace.

    Reconstructs one request's lifecycle story (spans + the audit
    records that mention it) from a ``--trace-out`` export, or diffs
    the telemetry of two runs.  Reads both export formats (Perfetto
    trace JSON and JSONL).
    """
    from repro.obs import diff_telemetry, load_export, request_ids, request_story

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments explain",
        description="Replay an observability export: one request's story, "
                    "or a telemetry diff of two runs.",
    )
    parser.add_argument("--trace-in", required=True, metavar="PATH",
                        help="export written by `python -m repro serve "
                             "--trace-out` (Perfetto JSON or JSONL)")
    parser.add_argument("--request", type=int, default=None, metavar="ID",
                        help="reconstruct this request's lifecycle story")
    parser.add_argument("--diff", default=None, metavar="PATH",
                        help="second export: print a per-metric telemetry "
                             "diff plus a latency blame diff (--trace-in vs "
                             "--diff) instead of a story")
    parser.add_argument("--top", type=int, default=5, metavar="K",
                        help="--diff only: list the K most-regressed requests")
    args = parser.parse_args(argv)

    data = load_export(args.trace_in)
    if args.diff is not None:
        import os

        from repro.obs import attribute, diff_blame

        other = load_export(args.diff)
        label_a = os.path.basename(args.trace_in) or args.trace_in
        label_b = os.path.basename(args.diff) or args.diff
        if label_a == label_b:
            label_a, label_b = args.trace_in, args.diff
        print(f"telemetry diff: {args.trace_in} vs {args.diff}")
        print(diff_telemetry(data, other, label_a=label_a, label_b=label_b))
        blame_a, blame_b = attribute(data), attribute(other)
        if blame_a.requests and blame_b.requests:
            print()
            print(
                diff_blame(
                    blame_a, blame_b,
                    label_a=label_a, label_b=label_b, top=args.top,
                )
            )
        return 0
    if args.request is None:
        ids = request_ids(data)
        print(f"{args.trace_in}: {len(data['spans'])} spans, "
              f"{len(data['audits'])} audit records, "
              f"{len(ids)} requests traced")
        if ids:
            preview = ", ".join(str(i) for i in ids[:20])
            more = ", ..." if len(ids) > 20 else ""
            print(f"request ids: {preview}{more}")
            print("rerun with --request ID for one request's story")
        return 0
    print(request_story(data, args.request))
    return 0


def _main_forensics(argv: list[str]) -> int:
    """`python -m repro.experiments forensics` — blame a run's latency.

    Builds the exact critical-path blame partition for every finished
    request in an export and renders the forensics report: per-category
    totals, per-QoS blame, and ASCII blame timelines for the slowest
    requests.  With ``--diff``, attributes the latency delta between
    two runs instead.
    """
    from repro.obs import (
        attribute,
        diff_blame,
        load_export,
        render_report,
        verify_partition,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments forensics",
        description="Critical-path blame attribution for an observability "
                    "export: where did every request's latency go?",
    )
    parser.add_argument("--trace-in", required=True, metavar="PATH",
                        help="export written by `python -m repro serve "
                             "--trace-out` (Perfetto JSON or JSONL)")
    parser.add_argument("--diff", default=None, metavar="PATH",
                        help="second export: attribute the run-to-run "
                             "latency delta instead of reporting one run")
    parser.add_argument("--top", type=int, default=5, metavar="K",
                        help="how many slowest/most-regressed requests to "
                             "detail (default 5)")
    parser.add_argument("--width", type=int, default=60, metavar="COLS",
                        help="blame timeline width in characters (default 60)")
    args = parser.parse_args(argv)

    report_a = attribute(load_export(args.trace_in))
    if args.diff is not None:
        import os

        report_b = attribute(load_export(args.diff))
        label_a = os.path.basename(args.trace_in) or args.trace_in
        label_b = os.path.basename(args.diff) or args.diff
        if label_a == label_b:
            label_a, label_b = args.trace_in, args.diff
        print(
            diff_blame(
                report_a, report_b,
                label_a=label_a, label_b=label_b, top=args.top,
            )
        )
        return 0
    print(render_report(report_a, top=args.top, width=args.width))
    bad = verify_partition(report_a)
    if bad:
        worst = max(error for _, error in bad)
        print(
            f"\nWARNING: {len(bad)} request(s) violate the exact-partition "
            f"invariant (max error {worst:.3g}s)"
        )
        return 1
    return 0


FIGURES = {
    "figure2": _run_figure2,
    "figure3": _run_figure3,
    "figure10": _run_figure10,
    "figure11": _run_figure11,
    "figure12": _run_figure12,
    "figure13": _run_figure13,
    "figure14": _run_figure14,
    "figure15": _run_figure15,
    "fleet": _run_fleet,
    "sessions": _run_sessions,
    "elastic-fleet": _run_elastic_fleet,
    "disagg": _run_disagg,
    "faults": _run_faults,
    "qos": _run_qos,
}


def main(argv: list[str] | None = None) -> int:
    raw = sys.argv[1:] if argv is None else argv
    if raw and raw[0] == "explain":
        return _main_explain(raw[1:])
    if raw and raw[0] == "forensics":
        return _main_forensics(raw[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate LoongServe paper figures on the simulated "
                    "substrate (or `explain`/`forensics` an observability "
                    "export).",
    )
    parser.add_argument("figure", choices=[*FIGURES, "all", "explain", "forensics"])
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink (<1) or grow (>1) request counts for the serving figures",
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        help="figure10 only: subset of sharegpt/leval/lveval/mixed",
    )
    args = parser.parse_args(argv)

    targets = list(FIGURES) if args.figure == "all" else [args.figure]
    for target in targets:
        start = time.time()
        FIGURES[target](args)
        print(f"\n[{target} done in {time.time() - start:.1f}s]\n" + "=" * 72)
    return 0


if __name__ == "__main__":
    sys.exit(main())
