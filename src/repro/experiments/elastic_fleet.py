"""Elastic fleet control plane: static routing vs. closed-loop actuators.

Two scenarios, both deliberately bursty (elasticity is worthless under
perfectly smooth load):

* **Bursty Mixed** — the long/short interference workload under on/off
  modulated Poisson arrivals.  Route-once placement eats the bursts as
  deep per-replica queues; work stealing drains them sideways, and the
  autoscaler parks capacity between bursts.  Headline: at equal replica
  count the elastic fleet beats the static fleet on mean *and* P99
  per-token latency, while autoscaling cuts replica-seconds paid.
* **Burst-then-lull Sessions** — conversation openers arrive densely,
  then think-time gaps let the autoscaler consolidate the fleet.  A
  parked replica would orphan its sessions' prefix KV; cross-replica
  migration rescues the extents onto survivors, keeping the affinity
  router's token hit rate within a few points of the static fleet.

Run via ``python -m repro.experiments elastic-fleet``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.systems import make_fleet
from repro.metrics.fleet import ElasticStats
from repro.metrics.latency import summarize_latency
from repro.sessions import SessionSpec, make_session_trace
from repro.workloads.arrival import BurstyArrivals
from repro.workloads.datasets import MIXED
from repro.workloads.trace_gen import clone_requests, make_trace

# Actuator combinations swept by both scenarios, in presentation order.
ELASTIC_VARIANTS: dict[str, dict] = {
    "static": {},
    "autoscale": {"autoscale": True},
    "steal": {"steal": True},
    "steal+migrate": {"steal": True, "migrate_kv": True},
    "elastic": {"autoscale": True, "steal": True, "migrate_kv": True},
}

MIXED_RATE = 4.0  # mean req/s into the 4-replica fleet (bursts hit 4x)
MIXED_REQUESTS = 80
# Dense openers + long think times: the burst-then-lull session shape.
SESSION_SPEC = SessionSpec(think_time_mean_s=45.0, mean_turns=3.0)
SESSION_RATE = 3.0
SESSION_COUNT = 14


@dataclass(frozen=True)
class ElasticPoint:
    """One variant's measurements on one scenario."""

    variant: str
    per_token: float
    per_token_p99: float
    finished: int
    total: int
    hit_rate: float
    replica_seconds: float
    stolen: int
    reprefill_tokens: int
    migrated_tokens: int
    parks: int
    unparks: int

    @classmethod
    def measure(cls, variant: str, result, replicas: int) -> "ElasticPoint":
        summary = summarize_latency(result)
        cache = result.cache_stats or {}
        cache_total = cache.get("hit_tokens", 0) + cache.get("miss_tokens", 0)
        elastic: ElasticStats | None = result.elastic
        if elastic is not None and elastic.capacity_timeline:
            replica_seconds = elastic.replica_seconds(result.makespan)
        else:
            replica_seconds = replicas * result.makespan
        return cls(
            variant=variant,
            per_token=summary.per_token,
            per_token_p99=summary.per_token_p99,
            finished=summary.finished,
            total=summary.total,
            hit_rate=(
                cache.get("hit_tokens", 0) / cache_total if cache_total else 0.0
            ),
            replica_seconds=replica_seconds,
            stolen=elastic.stolen_requests if elastic else 0,
            reprefill_tokens=elastic.steal_reprefill_tokens if elastic else 0,
            migrated_tokens=elastic.migrated_kv_tokens if elastic else 0,
            parks=elastic.scale_downs if elastic else 0,
            unparks=elastic.scale_ups if elastic else 0,
        )


def bursty_mixed_sweep(
    variants: Sequence[str] = tuple(ELASTIC_VARIANTS),
    replicas: int = 4,
    rate: float = MIXED_RATE,
    num_gpus: int = 8,
    scale: float = 1.0,
    seed: int = 17,
    router: str = "round-robin",
) -> list[ElasticPoint]:
    """The steal/autoscale scenario (no prefix caches, Mixed lengths).

    Variants touching KV migration degrade to their cache-less subset
    here (migration is a session feature), so the table stays square.
    """
    count = max(20, int(MIXED_REQUESTS * scale))
    trace = make_trace(
        MIXED, rate=rate, num_requests=count, seed=seed,
        arrivals=BurstyArrivals(rate=rate),
    )
    points = []
    # Dropping migrate_kv can collapse two variants onto one actuator
    # set; the simulator is deterministic, so those rows are computed
    # once and reused instead of re-running an identical fleet.
    cache: dict[frozenset, object] = {}
    for variant in variants:
        kwargs = dict(ELASTIC_VARIANTS[variant])
        kwargs.pop("migrate_kv", None)  # needs prefix caches; see sessions sweep
        key = frozenset(kwargs.items())
        result = cache.get(key)
        if result is None:
            fleet = make_fleet(
                "loongserve", replicas=replicas, router=router,
                requests=trace, num_gpus=num_gpus, **kwargs,
            )
            result = cache[key] = fleet.run(clone_requests(trace))
        points.append(ElasticPoint.measure(variant, result, replicas))
    return points


def session_rebalance_sweep(
    variants: Sequence[str] = tuple(ELASTIC_VARIANTS),
    replicas: int = 2,
    num_gpus: int = 8,
    scale: float = 1.0,
    seed: int = 11,
) -> list[ElasticPoint]:
    """The KV-migration scenario: affinity routing + burst-then-lull
    sessions, where scale-in must not orphan conversation KV."""
    count = max(6, int(SESSION_COUNT * scale))
    trace = make_session_trace(
        SESSION_SPEC, rate=SESSION_RATE, num_sessions=count, seed=seed
    )
    points = []
    for variant in variants:
        fleet = make_fleet(
            "loongserve", replicas=replicas, router="affinity",
            requests=trace, num_gpus=num_gpus, prefix_cache=True,
            **ELASTIC_VARIANTS[variant],
        )
        result = fleet.run(clone_requests(trace))
        points.append(ElasticPoint.measure(variant, result, replicas))
    return points


def elastic_advantage(points: Sequence[ElasticPoint]) -> dict[str, float]:
    """Static-vs-elastic headline ratios on one scenario's points."""
    by_name = {p.variant: p for p in points}
    static = by_name["static"]
    best = by_name.get("elastic") or by_name.get("steal") or static
    return {
        "per_token_ratio": (
            static.per_token / best.per_token if best.per_token else float("inf")
        ),
        "p99_ratio": (
            static.per_token_p99 / best.per_token_p99
            if best.per_token_p99
            else float("inf")
        ),
        "capacity_ratio": (
            static.replica_seconds / best.replica_seconds
            if best.replica_seconds
            else float("inf")
        ),
    }


def migration_hit_preservation(points: Sequence[ElasticPoint]) -> dict[str, float]:
    """How much of the static affinity hit rate each rebalanced variant
    keeps (the ``elastic`` variant must stay >= 0.8, the PR gate)."""
    by_name = {p.variant: p for p in points}
    static_hit = by_name["static"].hit_rate
    if static_hit <= 0:
        return {"static_hit_rate": 0.0}
    out = {"static_hit_rate": static_hit}
    for name in ("autoscale", "elastic"):
        if name in by_name:
            out[f"{name}_retention"] = by_name[name].hit_rate / static_hit
    return out


def render_elastic_table(points: Sequence[ElasticPoint], with_cache: bool = False) -> str:
    """Text table: one row per variant."""
    from repro.experiments.report import table

    headers = ["variant", "per-tok ms", "p99 ms", "fin/total", "repl-s",
               "steals", "re-prefill", "migrated"]
    if with_cache:
        headers.append("hit-rate")
    rows = []
    for p in points:
        row = [
            p.variant,
            f"{p.per_token * 1000:.2f}",
            f"{p.per_token_p99 * 1000:.2f}",
            f"{p.finished}/{p.total}",
            f"{p.replica_seconds:.0f}",
            str(p.stolen),
            f"{p.reprefill_tokens:,}",
            f"{p.migrated_tokens:,}",
        ]
        if with_cache:
            row.append(f"{p.hit_rate:.1%}")
        rows.append(row)
    return table(headers, rows)
