"""Experiment harness: one entry point per paper figure.

``python -m repro.experiments figure10`` (etc.) regenerates the series
behind each figure of the paper's evaluation; ``benchmarks/`` wraps the
same entry points in pytest-benchmark.  Figures are rendered as text
tables (this reproduction has no plotting dependency).
"""

from repro.experiments.systems import (
    build_distserve,
    build_replicated_tp2,
    build_splitfuse,
    build_static_sp,
    build_vllm,
    make_system,
)

__all__ = [
    "build_distserve",
    "build_replicated_tp2",
    "build_splitfuse",
    "build_static_sp",
    "build_vllm",
    "make_system",
]
