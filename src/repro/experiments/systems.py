"""Factories building every evaluated system in its §7.1 configuration.

All systems share the same cluster and roofline cost model; only the
parallelism layout and scheduling policy differ, matching how the paper
configures its baselines on the 8-GPU testbed.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import EngineServer
from repro.baselines.distserve import DistServeServer
from repro.baselines.no_scaleup import build_loongserve, build_no_scale_up_loongserve
from repro.baselines.replicated import ReplicatedServer
from repro.baselines.splitfuse import SplitFuseServer, ideal_chunk_size
from repro.baselines.static_sp import StaticSPServer
from repro.baselines.vllm import PrefillPriorityPolicy, VLLMServer
from repro.config import SchedulerConfig, default_config
from repro.types import Request

# DeepSpeed-MII crashes ("illegal memory access") past 32K-token prompts
# (§7.1), so the paper only evaluates it on ShareGPT.
DEEPSPEED_MII_INPUT_LIMIT = 32_768


def build_vllm(num_gpus: int = 8, gpus_per_node: int = 8) -> VLLMServer:
    """vLLM with TP spanning the whole node (TP=8)."""
    config = default_config(
        num_gpus=num_gpus, tensor_parallel=num_gpus, gpus_per_node=gpus_per_node
    )
    return VLLMServer(config)


def build_splitfuse(
    requests: Sequence[Request] | None = None,
    chunk_size: int | None = None,
    num_gpus: int = 8,
    gpus_per_node: int = 8,
    deepspeed_mii: bool = False,
) -> SplitFuseServer:
    """Chunked prefill at TP=8, with SARATHI's oracle chunk size.

    The paper grants LightLLM-SplitFuse the per-dataset ideal "P:D ratio"
    chunk size; pass the workload's requests to compute it, or an explicit
    ``chunk_size``.
    """
    if chunk_size is None:
        if requests is None:
            chunk_size = 2048
        else:
            chunk_size = ideal_chunk_size(requests)
    config = default_config(
        num_gpus=num_gpus, tensor_parallel=num_gpus, gpus_per_node=gpus_per_node
    )
    if deepspeed_mii:
        return SplitFuseServer(
            config,
            chunk_size=chunk_size,
            crash_input_len=DEEPSPEED_MII_INPUT_LIMIT,
            name="DeepSpeed MII (Dynamic SplitFuse)",
        )
    return SplitFuseServer(config, chunk_size=chunk_size)


def build_distserve(num_gpus: int = 8, gpus_per_node: int = 8) -> DistServeServer:
    """Prefill-decode disaggregation, DoP 4 + 4 on eight GPUs."""
    config = default_config(
        num_gpus=num_gpus, tensor_parallel=num_gpus // 2, gpus_per_node=gpus_per_node
    )
    return DistServeServer(config)


def build_static_sp(num_gpus: int = 8, gpus_per_node: int = 8) -> StaticSPServer:
    """LoongServe w/o ESP: fixed TP=2 x SP=4 hybrid."""
    config = default_config(
        num_gpus=num_gpus, tensor_parallel=2, gpus_per_node=gpus_per_node
    )
    return StaticSPServer(config)


def build_replicated_tp2(num_gpus: int = 8, gpus_per_node: int = 8) -> ReplicatedServer:
    """LoongServe w/o ESP (TP=2) x N: independent replicas, no KV sharing."""
    config = default_config(
        num_gpus=num_gpus, tensor_parallel=2, gpus_per_node=gpus_per_node
    )
    engines = [
        EngineServer(
            config=config,
            policy=PrefillPriorityPolicy(),
            instance_ids=[i],
            kv_slots=config.kv_slots_per_instance,
            name="TP=2 replica",
        )
        for i in range(config.num_instances)
    ]
    return ReplicatedServer(engines, name=f"LoongServe w/o ESP (TP=2) x {len(engines)}")


def build_vllm_per_node(num_gpus: int = 16, gpus_per_node: int = 8) -> ReplicatedServer:
    """Multi-node vLLM: one TP=8 replica per server (Figure 11)."""
    config = default_config(
        num_gpus=num_gpus, tensor_parallel=gpus_per_node, gpus_per_node=gpus_per_node
    )
    engines = [
        EngineServer(
            config=config,
            policy=PrefillPriorityPolicy(),
            instance_ids=[i],
            kv_slots=config.kv_slots_per_instance,
            name="vLLM",
        )
        for i in range(config.num_instances)
    ]
    return ReplicatedServer(engines, name="vLLM")


def build_splitfuse_per_node(
    requests: Sequence[Request] | None = None,
    num_gpus: int = 16,
    gpus_per_node: int = 8,
) -> ReplicatedServer:
    """Multi-node LightLLM-SplitFuse: one replica per server (Figure 11)."""
    chunk = ideal_chunk_size(requests) if requests else 2048
    config = default_config(
        num_gpus=num_gpus, tensor_parallel=gpus_per_node, gpus_per_node=gpus_per_node
    )
    from repro.baselines.splitfuse import SplitFusePolicy

    engines = [
        EngineServer(
            config=config,
            policy=SplitFusePolicy(chunk_size=chunk),
            instance_ids=[i],
            kv_slots=config.kv_slots_per_instance,
            name="LightLLM w/ SplitFuse",
        )
        for i in range(config.num_instances)
    ]
    return ReplicatedServer(engines, name="LightLLM w/ SplitFuse")


# Systems whose servers expose the crash()/recover surface failure
# injection needs (LoongServe shapes; see LoongServeServer.crash).
CRASHABLE_SYSTEMS = ("loongserve", "loongserve-no-scaleup")

# QoS scheduling hooks live in the LoongServe global-manager loop, so
# the same shapes gate it.
QOS_SYSTEMS = CRASHABLE_SYSTEMS


def _replica_token_rate(server) -> float:
    """Prefill tokens/s one replica sustains, from its own cost model."""
    from repro.qos import prefill_token_rate

    config = getattr(server, "config", None)
    cost = getattr(server, "cost_model", None)
    if config is None or cost is None:
        raise ValueError(
            "predictive autoscaling needs replicas that expose a cost model "
            "(LoongServe shapes)"
        )
    return prefill_token_rate(
        cost, list(range(config.num_instances)), config.tensor_parallel
    )


def _slo_router_kwargs(server) -> dict:
    """Cost-model wiring for the ``slo`` router (empty when the replica
    shape exposes none — the router then ranks by token work alone)."""
    from repro.metrics.slo import IdealLatencyModel

    config = getattr(server, "config", None)
    cost = getattr(server, "cost_model", None)
    if config is None or cost is None:
        return {}
    ideal = IdealLatencyModel(
        cost_model=cost,
        tensor_parallel=config.tensor_parallel,
        max_instances=config.num_instances,
    )
    return {"ideal": ideal, "token_rate": _replica_token_rate(server)}


def make_fleet(
    system: str = "loongserve",
    replicas: int = 4,
    router: str = "round-robin",
    requests: Sequence[Request] | None = None,
    num_gpus: int = 8,
    gpus_per_node: int = 8,
    prefix_cache: bool = False,
    autoscale: bool = False,
    steal: bool = False,
    migrate_kv: bool = False,
    faults=None,
    warmup: bool | None = None,
    control_interval: float | None = None,
    qos: bool = False,
    admission: bool = False,
    autoscale_predictive: bool = False,
    sim_mode: str = "discrete",
    sharded: bool = True,
    fluid_max_window_s: float | None = None,
    disagg: int = 0,
    kv_tiers: str | None = None,
    kv_host_tokens: int = 200_000,
    kv_ssd_tokens: int = 1_000_000,
    standby: int = 0,
    **router_kwargs,
):
    """Build a fleet of identical replicas under a cluster policy.

    ``system`` is any :func:`make_system` name; ``num_gpus`` is the GPU
    count *per replica* (the fleet spans ``replicas * num_gpus`` GPUs).
    ``prefix_cache`` arms every replica's prefix-KV cache (LoongServe
    replicas only) — required for ``router="affinity"`` to have any
    state to match against.

    ``autoscale`` / ``steal`` / ``migrate_kv`` arm the control-loop
    actuators (replica park/unpark on load hysteresis, queued-request
    rebalancing, and cross-replica session-KV migration); with all
    three off the fleet is the bit-identical route-once front-end of
    PR 1–2.  ``control_interval`` overrides the control-tick period.

    ``faults`` takes a :class:`~repro.fleet.faults.FaultPlan`: replicas
    crash at the scheduled instants (queued/running requests orphaned,
    KV lost), orphans fail over through the placement router, and the
    replica recovers after its downtime plus a modelled warm-up.  An
    empty plan is the off switch — no injector is armed at all, so the
    run stays bit-identical to a fault-free fleet.  ``warmup`` controls
    the replica lifecycle pricing (weight-loading latency on unpark and
    crash recovery, cool-down capacity on park); the default arms it
    exactly when something can change replica lifecycle state
    (``autoscale``, ``autoscale_predictive``, or ``faults``).

    QoS (``repro.qos``): ``qos`` arms every replica's scheduler with the
    SLO-class policy (deadline-aware dispatch + batch-tier preemption),
    ``admission`` adds the deadline-feasibility admission controller,
    ``router="slo"`` places on predicted slack (the router is built with
    the replicas' cost model), and ``autoscale_predictive`` swaps the
    reactive autoscaler for the forecast-driven one.  All off = the
    bit-identical pre-QoS fleet.

    Disaggregated serving (``repro.fleet.disagg``): ``disagg=N`` makes
    the first ``N`` replicas a dedicated prefill pool and the rest the
    decode pool — arrivals prefill on the first pool and their KV rides
    the priced fabric to a decode replica (requires ``prefix_cache``;
    composes with ``steal`` — moves never cross the pool boundary and
    clones are pinned — and with ``faults`` — a prefill-source crash
    mid-clone degrades to the direct-decode fallback, a decode-side
    crash re-routes over the surviving pool).  ``kv_tiers`` arms
    host/SSD KV offload
    on every replica's prefix cache with that victim policy
    (``lru``/``fifo``/``lifo``; capacities via ``kv_host_tokens`` /
    ``kv_ssd_tokens``).  ``standby=N`` appends ``N`` warm standby
    replicas: parked decode capacity with weights resident that an
    autoscaler promotes with zero warm-up (requires ``autoscale`` or
    ``autoscale_predictive``).

    ``sim_mode="hybrid"`` arms every replica's fluid stepper (windows
    engage per replica, bounded by the replica's local event horizon —
    including the next control tick); ``fluid_max_window_s`` caps window
    length (shorter windows track the discrete schedule tighter at the
    cost of more window launches).  ``sharded=False`` funnels every
    replica through one shared event heap (the pre-PR-8 layout; the
    sharded default is bit-identical and faster).
    """
    from repro.fleet import (
        DEFAULT_CONTROL_INTERVAL,
        ClusterPolicy,
        FaultInjector,
        FleetServer,
        KVMigrator,
        PredictiveAutoscaler,
        QueueDepthAutoscaler,
        WorkStealer,
        make_router,
    )
    from repro.costmodel.comm import CollectiveModel
    from repro.costmodel.latency import ReplicaLifecycleModel

    if replicas < 1:
        raise ValueError(f"need at least one replica, got {replicas}")
    if migrate_kv and not prefix_cache:
        raise ValueError(
            "migrate_kv moves prefix-KV cache extents; it needs prefix_cache=True"
        )
    if autoscale and autoscale_predictive:
        raise ValueError(
            "pass at most one of autoscale / autoscale_predictive"
        )
    if disagg:
        if not prefix_cache:
            raise ValueError(
                "disagg hands prefilled KV between replicas' prefix caches; "
                "it needs prefix_cache=True"
            )
        if not 1 <= disagg < replicas:
            raise ValueError(
                f"disagg={disagg} must leave both pools non-empty "
                f"(fleet has {replicas} replicas)"
            )
    if standby:
        if standby < 0:
            raise ValueError(f"standby must be >= 0, got {standby}")
        if not (autoscale or autoscale_predictive):
            raise ValueError(
                "standby replicas start parked; an autoscaler must be armed "
                "to ever promote them"
            )
    if faults:
        if system not in CRASHABLE_SYSTEMS:
            raise ValueError(
                f"failure injection needs a crashable system "
                f"({', '.join(CRASHABLE_SYSTEMS)}), not {system!r}"
            )
        if faults.max_replica_id >= replicas:
            raise ValueError(
                f"fault plan targets replica {faults.max_replica_id} but the "
                f"fleet has only {replicas} replicas"
            )
    servers = [
        make_system(system, requests=requests, num_gpus=num_gpus,
                    gpus_per_node=gpus_per_node, prefix_cache=prefix_cache,
                    qos=qos, admission=admission, sim_mode=sim_mode,
                    fluid_max_window_s=fluid_max_window_s,
                    kv_tiers=kv_tiers, kv_host_tokens=kv_host_tokens,
                    kv_ssd_tokens=kv_ssd_tokens)
        for _ in range(replicas + standby)
    ]
    migrator = None
    if migrate_kv:
        config = servers[0].config  # LoongServe shape, guaranteed by the gate
        migrator = KVMigrator(
            collectives=CollectiveModel(cluster=config.cluster),
            model=config.model,
            tensor_parallel=config.tensor_parallel,
        )
    if warmup is None:
        warmup = autoscale or autoscale_predictive or bool(faults)
    lifecycle = None
    if warmup:
        config = getattr(servers[0], "config", None)
        if config is not None:
            lifecycle = ReplicaLifecycleModel.for_model(
                config.model, config.tensor_parallel
            )
    if router == "slo" and "ideal" not in router_kwargs:
        # The SLO router prices queueing in seconds; hand it the
        # replicas' own cost model when they expose one.
        router_kwargs.update(_slo_router_kwargs(servers[0]))
    autoscaler = None
    if autoscale:
        autoscaler = QueueDepthAutoscaler()
    elif autoscale_predictive:
        autoscaler = PredictiveAutoscaler(
            token_rate=_replica_token_rate(servers[0])
        )
    policy = ClusterPolicy(
        router=make_router(router, **router_kwargs),
        autoscaler=autoscaler,
        stealer=WorkStealer() if steal else None,
        migrator=migrator,
        injector=FaultInjector(plan=faults) if faults else None,
        lifecycle=lifecycle,
    )
    dispatcher = None
    if disagg:
        from repro.fleet.disagg import DisaggDispatcher

        config = servers[0].config  # LoongServe shape, guaranteed by the gate
        dispatcher = DisaggDispatcher(
            num_prefill=disagg,
            pricing=(
                CollectiveModel(cluster=config.cluster),
                config.model,
                config.tensor_parallel,
            ),
        )
    fleet = FleetServer(
        servers,
        policy=policy,
        control_interval=(
            DEFAULT_CONTROL_INTERVAL if control_interval is None else control_interval
        ),
        sharded=sharded,
        disagg=dispatcher,
    )
    for handle in fleet.replicas[len(fleet.replicas) - standby:] if standby else ():
        handle.standby = True
    return fleet


def make_system(
    name: str,
    requests: Sequence[Request] | None = None,
    num_gpus: int = 8,
    gpus_per_node: int = 8,
    prefix_cache: bool = False,
    qos: bool = False,
    admission: bool = False,
    sim_mode: str = "discrete",
    fluid_max_window_s: float | None = None,
    kv_tiers: str | None = None,
    kv_host_tokens: int = 200_000,
    kv_ssd_tokens: int = 1_000_000,
):
    """Build any evaluated system by its paper name.

    ``prefix_cache=True`` enables the radix prefix-KV cache
    (``repro.sessions``); it is a LoongServe scheduler feature, so other
    systems reject it rather than silently serving without one.
    ``kv_tiers`` adds host/SSD offload tiers under that cache
    (``repro.kvcache.tiers``) with the given victim policy.

    ``qos=True`` arms the SLO-class policy (``repro.qos``) on the
    server's scheduler — deadline-aware dispatch ordering plus
    batch-tier decode preemption; ``admission=True`` additionally arms
    the deadline-feasibility admission controller.  Both are LoongServe
    scheduler features and off by default (bit-identical without them).
    """
    if prefix_cache and name not in ("loongserve", "loongserve-no-scaleup"):
        raise ValueError(
            f"prefix_cache is only supported on LoongServe systems, not {name!r}"
        )
    if admission and not qos:
        raise ValueError("admission control requires the QoS policy (qos=True)")
    if qos and name not in QOS_SYSTEMS:
        raise ValueError(
            f"QoS scheduling is only supported on LoongServe systems, not {name!r}"
        )
    if sim_mode != "discrete" and name != "loongserve":
        raise ValueError(
            f"sim_mode={sim_mode!r} (the fluid stepper) is only supported on "
            f"the 'loongserve' system, not {name!r}"
        )
    if kv_tiers is not None and name != "loongserve":
        raise ValueError(
            f"kv_tiers (tiered KV offload) is only supported on the "
            f"'loongserve' system, not {name!r}"
        )
    scheduler = None
    if prefix_cache or sim_mode != "discrete" or kv_tiers is not None:
        kwargs = {}
        if fluid_max_window_s is not None:
            kwargs["fluid_max_window_s"] = fluid_max_window_s
        if kv_tiers is not None:
            kwargs.update(
                kv_tier_policy=kv_tiers,
                kv_host_tokens=kv_host_tokens,
                kv_ssd_tokens=kv_ssd_tokens,
            )
        scheduler = SchedulerConfig(
            enable_prefix_cache=prefix_cache, sim_mode=sim_mode, **kwargs
        )
    builders = {
        "loongserve": lambda: build_loongserve(
            num_gpus=num_gpus, gpus_per_node=gpus_per_node,
            scheduler=scheduler,
        ),
        "loongserve-no-scaleup": lambda: build_no_scale_up_loongserve(
            num_gpus=num_gpus, gpus_per_node=gpus_per_node,
            prefix_cache=prefix_cache,
        ),
        "vllm": lambda: build_vllm(num_gpus=num_gpus, gpus_per_node=gpus_per_node),
        "deepspeed-mii": lambda: build_splitfuse(
            requests, num_gpus=num_gpus, gpus_per_node=gpus_per_node, deepspeed_mii=True
        ),
        "splitfuse": lambda: build_splitfuse(
            requests, num_gpus=num_gpus, gpus_per_node=gpus_per_node
        ),
        "distserve": lambda: build_distserve(
            num_gpus=num_gpus, gpus_per_node=gpus_per_node
        ),
        "static-sp": lambda: build_static_sp(
            num_gpus=num_gpus, gpus_per_node=gpus_per_node
        ),
        "replicated-tp2": lambda: build_replicated_tp2(
            num_gpus=num_gpus, gpus_per_node=gpus_per_node
        ),
    }
    try:
        server = builders[name]()
    except KeyError:
        raise ValueError(f"unknown system {name!r}; choose from {sorted(builders)}") from None
    if qos:
        from repro.qos import QoSPolicy

        server.qos = QoSPolicy.for_config(
            server.config, server.cost_model, admission=admission
        )
    return server
