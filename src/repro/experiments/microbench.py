"""Cost-model-level experiments: Figures 2, 3, 14, and 15.

These figures characterise iteration-time behaviour rather than
end-to-end serving, so they evaluate the cost models directly — exactly
what the paper's microbenchmarks do to the real kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.sib import ScalingInformationBase
from repro.costmodel.latency import RooflineCostModel
from repro.model.spec import LWM_7B_1M, ModelSpec
from repro.parallel.strategy import ParallelismStrategy


def _cost_model(num_gpus: int = 8, model: ModelSpec = LWM_7B_1M) -> RooflineCostModel:
    cluster = Cluster.homogeneous(num_gpus=num_gpus)
    return RooflineCostModel(cluster=cluster, model=model)


# -- Figure 2: scalability of requests vs. TP degree --------------------------------

FIGURE2_PREFILL_GRID = [(16, 10), (16, 50), (16, 100), (16, 500)]
FIGURE2_PREFILL_LONG_GRID = [(1, 100), (1, 1_000), (1, 10_000), (1, 100_000)]
FIGURE2_TP_DEGREES = [2, 4, 8]


@dataclass
class Figure2Row:
    batch_size: int
    length: int
    phase: str
    times: dict[int, float] = field(default_factory=dict)  # tp -> seconds

    @property
    def normalized(self) -> dict[int, float]:
        base = self.times[min(self.times)]
        return {tp: t / base for tp, t in self.times.items()}

    @property
    def speedup_at_max_tp(self) -> float:
        tps = sorted(self.times)
        return self.times[tps[0]] / self.times[tps[-1]]


def figure2(model: ModelSpec = LWM_7B_1M) -> list[Figure2Row]:
    """Iteration time vs. TP degree, prefill and decode (Figure 2)."""
    cost = _cost_model(model=model)
    rows: list[Figure2Row] = []
    for grid, phase in [
        (FIGURE2_PREFILL_GRID, "prefill"),
        (FIGURE2_PREFILL_LONG_GRID, "prefill"),
    ]:
        for bs, length in grid:
            row = Figure2Row(batch_size=bs, length=length, phase=phase)
            for tp in FIGURE2_TP_DEGREES:
                row.times[tp] = cost.prefill_time([length] * bs, instances=1, tensor_parallel=tp)
            rows.append(row)
    for bs, length in FIGURE2_PREFILL_GRID + FIGURE2_PREFILL_LONG_GRID:
        row = Figure2Row(batch_size=bs, length=length, phase="decode")
        for tp in FIGURE2_TP_DEGREES:
            row.times[tp] = cost.decode_time([length] * bs, instances=1, tensor_parallel=tp)
        rows.append(row)
    return rows


# -- Figure 3: fixed sequence parallelism vs. tensor parallelism -------------------------

FIGURE3_GRID = [
    (512, 1_000),
    (128, 5_000),
    (64, 10_000),
    (16, 50_000),
    (4, 100_000),
    (1, 500_000),
]
FIGURE3_STRATEGIES = [
    ParallelismStrategy(tensor_parallel=8, sequence_parallel=1),
    ParallelismStrategy(tensor_parallel=4, sequence_parallel=2),
    ParallelismStrategy(tensor_parallel=2, sequence_parallel=4),
]


@dataclass
class Figure3Row:
    batch_size: int
    length: int
    phase: str
    times: dict[str, float] = field(default_factory=dict)  # strategy label -> s

    @property
    def best(self) -> str:
        return min(self.times, key=self.times.get)


def figure3(model: ModelSpec = LWM_7B_1M) -> list[Figure3Row]:
    """SPxTP vs. pure TP iteration times over the paper's grid (Figure 3)."""
    cost = _cost_model(model=model)
    rows = []
    for bs, length in FIGURE3_GRID:
        prefill_row = Figure3Row(batch_size=bs, length=length, phase="prefill")
        decode_row = Figure3Row(batch_size=bs, length=length, phase="decode")
        for strategy in FIGURE3_STRATEGIES:
            prefill_row.times[strategy.label] = cost.prefill_time(
                [length] * bs,
                instances=strategy.sequence_parallel,
                tensor_parallel=strategy.tensor_parallel,
            )
            decode_row.times[strategy.label] = cost.decode_time(
                [length] * bs,
                instances=strategy.sequence_parallel,
                tensor_parallel=strategy.tensor_parallel,
                num_masters=strategy.sequence_parallel,
            )
        rows.append(prefill_row)
        rows.append(decode_row)
    return rows


# -- Figure 14: overhead of the elastic scaling mechanisms ----------------------------

FIGURE14_GRID = [
    (1024, 10),
    (256, 100),
    (64, 1_000),
    (16, 10_000),
    (4, 50_000),
    (2, 100_000),
    (1, 200_000),
]


@dataclass
class Figure14aRow:
    """Scale-down: prefill with proactive retention vs. reactive migration."""

    batch_size: int
    length: int
    plain_prefill: float
    with_proactive: float
    with_reactive: float

    @property
    def proactive_overhead(self) -> float:
        return self.with_proactive / self.plain_prefill - 1.0

    @property
    def reactive_overhead(self) -> float:
        return self.with_reactive / self.plain_prefill - 1.0


def figure14a(model: ModelSpec = LWM_7B_1M) -> list[Figure14aRow]:
    """Scale-down overhead (Figure 14a).

    Proactive scale-down reuses the prefill's own ring traffic, so its
    iteration time equals the plain prefill (the <2% the paper reports is
    kernel-level bookkeeping).  The reactive alternative pays an explicit
    post-prefill KV migration of half the batch's tokens (DoP 4 -> 2).
    """
    cost = _cost_model(model=model)
    instances = [0, 1, 2, 3]
    rows = []
    for bs, length in FIGURE14_GRID:
        plain = cost.prefill_time([length] * bs, instances, tensor_parallel=2)
        proactive = plain  # zero extra communication by construction (§4.1)
        moved_tokens = bs * length // 2
        reactive = plain + cost.migration_time(
            moved_tokens, src_instance=2, dst_instance=0, tensor_parallel=2
        )
        rows.append(
            Figure14aRow(
                batch_size=bs,
                length=length,
                plain_prefill=plain,
                with_proactive=proactive,
                with_reactive=reactive,
            )
        )
    return rows


@dataclass
class Figure14bRow:
    """Scale-up: decode latency with 1/2/4 master instances (group of 4)."""

    batch_size: int
    length: int
    times: dict[int, float] = field(default_factory=dict)  # masters -> s

    @property
    def speedup_4_masters(self) -> float:
        return self.times[1] / self.times[4]


def figure14b(model: ModelSpec = LWM_7B_1M) -> list[Figure14bRow]:
    """Multi-master decode overhead/benefit (Figure 14b)."""
    cost = _cost_model(model=model)
    instances = [0, 1, 2, 3]
    rows = []
    for bs, length in FIGURE14_GRID:
        row = Figure14bRow(batch_size=bs, length=length)
        for masters in (1, 2, 4):
            row.times[masters] = cost.decode_time(
                [length] * bs, instances, tensor_parallel=2, num_masters=masters
            )
        rows.append(row)
    return rows


# -- Figure 15: accuracy of the analytical model --------------------------------

FIGURE15_STRATEGIES = [
    ParallelismStrategy(tensor_parallel=4, sequence_parallel=2),
    ParallelismStrategy(tensor_parallel=2, sequence_parallel=4),
    ParallelismStrategy(tensor_parallel=1, sequence_parallel=8),
]
FIGURE15_BATCH_SIZES = [1, 2, 4, 8]
FIGURE15_LENGTHS = [10_000, 50_000, 100_000, 200_000, 300_000, 400_000, 500_000]


@dataclass
class Figure15Point:
    strategy: str
    batch_size: int
    length: int
    predicted: float
    measured: float

    @property
    def deviation(self) -> float:
        return abs(self.predicted - self.measured) / self.measured


def figure15(model: ModelSpec = LWM_7B_1M) -> list[Figure15Point]:
    """Fit the SIB model and compare predictions vs. ground truth (Fig. 15)."""
    cost = _cost_model(model=model)
    sib = ScalingInformationBase()
    fitted = sib.profile_strategies(cost, FIGURE15_STRATEGIES)
    points = []
    for strategy in FIGURE15_STRATEGIES:
        for bs in FIGURE15_BATCH_SIZES:
            for length in FIGURE15_LENGTHS:
                if bs * length > 1_000_000:
                    continue  # beyond the context window
                workload = [length] * bs
                measured = cost.prefill_time(
                    workload,
                    instances=strategy.sequence_parallel,
                    tensor_parallel=strategy.tensor_parallel,
                )
                predicted = fitted.predict(strategy, workload)
                points.append(
                    Figure15Point(
                        strategy=strategy.label,
                        batch_size=bs,
                        length=length,
                        predicted=predicted,
                        measured=measured,
                    )
                )
    return points


def figure15_max_deviation(points: list[Figure15Point]) -> float:
    return max(p.deviation for p in points)


def figure15_mean_deviation(points: list[Figure15Point]) -> float:
    return float(np.mean([p.deviation for p in points]))
