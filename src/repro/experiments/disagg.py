"""Disaggregated prefill/decode fleet vs. equal-hardware monolithic.

The comparison the dispatcher exists for: the same replica count serving
the same trace, once as a monolithic fleet (every replica interleaves
prefill and decode) and once split into prefill and decode pools
(``repro.fleet.disagg``).  Disaggregation pays a priced KV handoff per
request but isolates decode from prompt bursts — on chat-dominant
traffic with a long-prompt tail, a monolithic replica's multi-thousand
token prefill stalls every co-resident decode iteration, while the
disaggregated decode pool never sees a prompt.

Goodput follows the DistServe-style phase SLOs rather than one
end-to-end deadline: a request counts when its TTFT (arrival to first
token) and its TPOT (mean inter-token time over the decode) both meet
absolute chat targets.  This is the metric under which phase
interference is visible at all — end-to-end latency averages the stall
into the decode tail.

Because both fleets serve the *identical* finite trace, the offered
window is the same on both sides and the gateable comparison is the
count of SLO-attained requests; ``goodput`` (attained per makespan
second) is reported alongside but its denominator carries a few
milliseconds of final-handoff tail noise at small trace sizes.

Two scenarios, both bursty:

* **Chat-heavy Mixed** — ShareGPT-dominant traffic with an L-Eval
  long-prompt tail (7:1), on/off burst arrivals.  The long prompts are
  the interference source; the chat decodes are the victims.
* **Sessions** — multi-turn conversations with think-time gaps
  (``repro.sessions``), where the decode pool's prefix caches also keep
  conversation KV warm across turns.

Run via ``python -m repro.experiments disagg``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.systems import make_fleet
from repro.sessions import SessionSpec, make_session_trace
from repro.types import ServeResult
from repro.workloads.arrival import BurstyArrivals
from repro.workloads.datasets import LEVAL, SHAREGPT, MixedDistribution
from repro.workloads.trace_gen import clone_requests, make_trace

# Absolute phase SLOs (chat service targets, DistServe-style): first
# token within 400 ms of arrival, then a steady 40 ms per output token.
TTFT_SLO_S = 0.4
TPOT_SLO_S = 0.040

# ShareGPT-dominant Mixed with a capped L-Eval long-prompt tail: enough
# long prefills to stall monolithic decodes, few enough that a small
# prefill pool absorbs them.
CHAT_MIXED = MixedDistribution(
    name="Mixed-chat",
    components=(SHAREGPT,) * 7 + (LEVAL,),
    max_input_len=32_768,
)
MIXED_RATE = 12.0
MIXED_REQUESTS = 240

SESSION_SPEC = SessionSpec(think_time_mean_s=45.0, mean_turns=3.0)
SESSION_RATE = 3.0
SESSION_COUNT = 14


@dataclass(frozen=True)
class DisaggPoint:
    """One fleet layout's measurements on one scenario."""

    variant: str
    attained: int
    total: int
    goodput: float  # phase-SLO-attained requests per second
    ttft_p90: float
    tpot_p90: float
    makespan: float
    handoffs: int
    handoff_tokens: int
    handoff_seconds: float
    tier_offloaded: int
    tier_swapped_in: int

    @classmethod
    def measure(cls, variant: str, result: ServeResult) -> "DisaggPoint":
        attained, ttft_p90, tpot_p90 = phase_slo_attainment(result)
        elastic = getattr(result, "elastic", None)
        cache = result.cache_stats or {}
        return cls(
            variant=variant,
            attained=attained,
            total=len(result.requests) + len(result.aborted),
            goodput=attained / result.makespan if result.makespan else 0.0,
            ttft_p90=ttft_p90,
            tpot_p90=tpot_p90,
            makespan=result.makespan,
            handoffs=elastic.disagg_handoffs if elastic else 0,
            handoff_tokens=elastic.disagg_handoff_tokens if elastic else 0,
            handoff_seconds=elastic.disagg_handoff_seconds if elastic else 0.0,
            tier_offloaded=int(cache.get("tier_offloaded_tokens", 0)),
            tier_swapped_in=int(cache.get("tier_swapped_in_tokens", 0)),
        )


def phase_slo_attainment(
    result: ServeResult,
    ttft_slo: float = TTFT_SLO_S,
    tpot_slo: float = TPOT_SLO_S,
) -> tuple[int, float, float]:
    """(requests meeting both phase SLOs, TTFT P90, TPOT P90).

    TTFT is arrival to end of prefill (the first output token); TPOT is
    the mean inter-token gap over the remaining decode.  Unfinished and
    aborted requests attain nothing.
    """
    attained = 0
    ttfts: list[float] = []
    tpots: list[float] = []
    for request in result.requests:
        if request.finish_time is None or request.prefill_end is None:
            continue
        ttft = request.prefill_end - request.arrival_time
        steps = max(1, request.output_len - 1)
        tpot = (request.finish_time - request.prefill_end) / steps
        ttfts.append(ttft)
        tpots.append(tpot)
        if ttft <= ttft_slo and tpot <= tpot_slo:
            attained += 1

    def p90(values: list[float]) -> float:
        if not values:
            return 0.0
        return sorted(values)[min(len(values) - 1, int(0.9 * len(values)))]

    return attained, p90(ttfts), p90(tpots)


def disagg_mixed_sweep(
    replicas: int = 4,
    prefill: int = 2,
    rate: float = MIXED_RATE,
    num_gpus: int = 8,
    scale: float = 1.0,
    seed: int = 17,
    kv_tiers: str | None = "lru",
) -> list[DisaggPoint]:
    """Monolithic vs. disaggregated on bursty chat-heavy Mixed.

    Both fleets get ``replicas`` identical replicas with prefix caches;
    the disaggregated one dedicates the first ``prefill`` to prompts.
    ``kv_tiers`` arms tiered offload on the disaggregated fleet so the
    sweep also exercises host/SSD demotion under cache pressure.
    """
    count = max(30, int(MIXED_REQUESTS * scale))
    trace = make_trace(
        CHAT_MIXED, rate=rate, num_requests=count, seed=seed,
        arrivals=BurstyArrivals(rate=rate),
    )
    mono = make_fleet(
        "loongserve", replicas=replicas, router="round-robin",
        requests=trace, num_gpus=num_gpus, prefix_cache=True,
    )
    disagg = make_fleet(
        "loongserve", replicas=replicas, router="round-robin",
        requests=trace, num_gpus=num_gpus, prefix_cache=True,
        disagg=prefill, kv_tiers=kv_tiers,
    )
    return [
        DisaggPoint.measure("monolithic", mono.run(clone_requests(trace))),
        DisaggPoint.measure(
            f"disagg {prefill}p+{replicas - prefill}d",
            disagg.run(clone_requests(trace)),
        ),
    ]


def disagg_session_sweep(
    replicas: int = 4,
    prefill: int = 1,
    num_gpus: int = 8,
    scale: float = 1.0,
    seed: int = 11,
    kv_tiers: str | None = "lru",
) -> list[DisaggPoint]:
    """Monolithic (affinity-routed) vs. disaggregated on sessions."""
    count = max(6, int(SESSION_COUNT * scale))
    trace = make_session_trace(
        SESSION_SPEC, rate=SESSION_RATE, num_sessions=count, seed=seed
    )
    mono = make_fleet(
        "loongserve", replicas=replicas, router="affinity",
        requests=trace, num_gpus=num_gpus, prefix_cache=True,
    )
    disagg = make_fleet(
        "loongserve", replicas=replicas, router="round-robin",
        requests=trace, num_gpus=num_gpus, prefix_cache=True,
        disagg=prefill, kv_tiers=kv_tiers,
    )
    return [
        DisaggPoint.measure("monolithic", mono.run(clone_requests(trace))),
        DisaggPoint.measure(
            f"disagg {prefill}p+{replicas - prefill}d",
            disagg.run(clone_requests(trace)),
        ),
    ]


def disagg_advantage(points: Sequence[DisaggPoint]) -> dict[str, float]:
    """Headline ratios of one scenario's (monolithic, disagg) pair."""
    mono, disagg = points[0], points[-1]
    return {
        "attained_delta": float(disagg.attained - mono.attained),
        "goodput_ratio": (
            disagg.goodput / mono.goodput if mono.goodput else float("inf")
        ),
        "tpot_p90_ratio": (
            mono.tpot_p90 / disagg.tpot_p90 if disagg.tpot_p90 else float("inf")
        ),
    }


def render_disagg_table(points: Sequence[DisaggPoint]) -> str:
    """Text table: one row per fleet layout."""
    from repro.experiments.report import table

    headers = ["variant", "attained", "goodput req/s", "ttft p90 s",
               "tpot p90 ms", "handoffs", "handoff tokens",
               "tier offl", "tier swap-in"]
    rows = [
        [
            p.variant,
            f"{p.attained}/{p.total}",
            f"{p.goodput:.2f}",
            f"{p.ttft_p90:.3f}",
            f"{p.tpot_p90 * 1000:.1f}",
            str(p.handoffs),
            f"{p.handoff_tokens:,}",
            f"{p.tier_offloaded:,}",
            f"{p.tier_swapped_in:,}",
        ]
        for p in points
    ]
    return table(headers, rows)
