"""Host/SSD KV tiers: cold prefix extents park off-GPU instead of dying.

Production long-context fleets spill cold KV down a memory hierarchy
(GPU HBM -> pinned host memory over PCIe -> local NVMe) because decode-
side KV residency, not prefill compute, is the binding resource.  This
module models that hierarchy for the prefix cache: when
:class:`~repro.sessions.prefix_cache.PrefixKVCache` evicts an extent, a
:class:`TieredKVStore` (when armed) catches the full root-to-leaf token
sequence in the host tier; under host pressure extents demote to the
SSD tier, and off the bottom they are dropped for real.  A later prefix
match that extends past GPU residency *fetches* the extent back up,
charging the swap-in transfer to the request's prefill launch via the
cache's swap-debt ledger.

Victim selection within a tier is pluggable (the fluid vLLM simulator's
swapping mode is the exemplar): ``lru`` demotes the coldest extent,
``fifo`` the oldest-inserted, ``lifo`` the newest-inserted (which
protects long-lived hot prefixes at the cost of thrashing fresh ones).

Invariants the chaos tests lean on (see :meth:`TieredKVStore.check_invariants`):

* **Token conservation** — every token ever accepted into the store is
  exactly one of: still resident (host or SSD), swapped back in, or
  dropped.
* **No double-residency** — an extent lives in exactly one tier, and no
  extent's payload span is contained in another extent's payload span
  of the same sequence line (covered extents are deduplicated on
  offload, overlapping ones trimmed).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.costmodel.comm import SwapPricing

#: Recognised victim-selection policies for tier demotion.
VICTIM_POLICIES = ("lru", "fifo", "lifo")


@dataclass
class TierStats:
    """Flow counters for one store; safe to sum across replicas."""

    offloaded_tokens: int = 0    # accepted from the GPU cache
    swapped_in_tokens: int = 0   # fetched back up to the GPU
    spilled_tokens: int = 0      # demoted host -> SSD
    dropped_tokens: int = 0      # fell off the bottom (or deduplicated)
    swap_in_seconds: float = 0.0
    swap_out_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "tier_offloaded_tokens": self.offloaded_tokens,
            "tier_swapped_in_tokens": self.swapped_in_tokens,
            "tier_spilled_tokens": self.spilled_tokens,
            "tier_dropped_tokens": self.dropped_tokens,
            "tier_swap_in_seconds": self.swap_in_seconds,
            "tier_swap_out_seconds": self.swap_out_seconds,
        }


class _Extent:
    """One offloaded extent: the payload is ``seq[start:]``.

    ``seq`` is the full token sequence from the radix root, so prefix
    matching against a later prompt needs no tree — the span before
    ``start`` is context that was resident elsewhere when the extent
    was evicted.
    """

    __slots__ = ("seq", "start", "tier", "last_access", "seqno")

    def __init__(
        self, seq: tuple[int, ...], start: int, tier: str,
        last_access: float, seqno: int,
    ) -> None:
        self.seq = seq
        self.start = start
        self.tier = tier
        self.last_access = last_access
        self.seqno = seqno

    @property
    def tokens(self) -> int:
        return len(self.seq) - self.start


class TieredKVStore:
    """Two-tier (host/SSD) backing store for evicted prefix extents."""

    def __init__(
        self,
        policy: str = "lru",
        host_capacity_tokens: int = 200_000,
        ssd_capacity_tokens: int = 1_000_000,
        bytes_per_token: float = 0.0,
        pricing: SwapPricing | None = None,
    ) -> None:
        if policy not in VICTIM_POLICIES:
            raise ValueError(
                f"unknown victim policy {policy!r}; choose from {VICTIM_POLICIES}"
            )
        if host_capacity_tokens < 0 or ssd_capacity_tokens < 0:
            raise ValueError("tier capacities must be >= 0")
        self.policy = policy
        self.host_capacity_tokens = host_capacity_tokens
        self.ssd_capacity_tokens = ssd_capacity_tokens
        self.bytes_per_token = bytes_per_token
        self.pricing = pricing if pricing is not None else SwapPricing()
        self.stats = TierStats()
        self._extents: dict[tuple[int, ...], _Extent] = {}
        self._seqno = itertools.count()
        # Observability sinks (duck-typed so this module stays
        # dependency-light): a tracer records one audit per tier op, a
        # metrics registry counts token flow.  None = silent, the
        # bit-identical default.
        self._tracer = None
        self._metrics = None
        self._replica = -1

    def observe(self, tracer=None, metrics=None, replica: int = -1) -> None:
        """Attach audit/telemetry sinks (idempotent; fleet runs re-arm
        after every ``_reset`` since the store outlives crashes)."""
        self._tracer = tracer
        self._metrics = metrics
        self._replica = replica

    def _audit(self, now: float, kind: str, *, tokens: int, seconds: float = 0.0,
               **payload) -> None:
        """One tier-flow audit record (tokens, priced bytes + latency)."""
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.audit(
                now, kind, component="kvtiers", replica=self._replica,
                tokens=tokens, bytes=int(tokens * self.bytes_per_token),
                seconds=round(seconds, 9), **payload,
            )
        if self._metrics is not None:
            self._metrics.counter(f"{kind}_tokens").inc(tokens)

    # -- queries --------------------------------------------------------------

    def resident_tokens(self, tier: str | None = None) -> int:
        return sum(
            e.tokens
            for e in self._extents.values()
            if tier is None or e.tier == tier
        )

    def __len__(self) -> int:
        return len(self._extents)

    def extents(self, tier: str | None = None) -> list[tuple[tuple[int, ...], int, str]]:
        """(seq, start, tier) snapshots, insertion-ordered (tests/debug)."""
        return [
            (e.seq, e.start, e.tier)
            for e in self._extents.values()
            if tier is None or e.tier == tier
        ]

    def probe(self, token_ids: tuple[int, ...], resident_len: int) -> int:
        """Longest usable prefix of ``token_ids`` after fetching one
        extent, given ``resident_len`` tokens already GPU-resident.
        Returns ``resident_len`` when no extent extends the match."""
        extent = self._best_extension(token_ids, resident_len)
        if extent is None:
            return resident_len
        return self._usable(extent, token_ids)

    # -- offload path ---------------------------------------------------------

    def offload(self, seq: tuple[int, ...], start: int, now: float) -> int:
        """Accept an evicted extent (payload ``seq[start:]``) into the
        host tier.  Returns the tokens accepted (0 when the extent is
        already covered or empty)."""
        if not seq or start >= len(seq) or self.host_capacity_tokens == 0:
            return 0
        deduped = self._dedup_against_existing(seq, start, now)
        if deduped is None:
            return 0
        seq, start = deduped
        extent = _Extent(seq, start, "host", now, next(self._seqno))
        self._extents[seq] = extent
        accepted = extent.tokens
        self.stats.offloaded_tokens += accepted
        offload_s = self.pricing.host_swap_time(accepted * self.bytes_per_token)
        self.stats.swap_out_seconds += offload_s
        self._audit(now, "kv_tier_offload", tokens=accepted, seconds=offload_s,
                    tier="host")
        self._rebalance(now)
        return accepted

    def _dedup_against_existing(
        self, seq: tuple[int, ...], start: int, now: float
    ) -> tuple[tuple[int, ...], int] | None:
        """Enforce the no-double-residency invariant before insert.

        Any existing extent whose payload is covered by the new one is
        removed (its tokens count as dropped: the new copy supersedes
        it); if the new payload is covered by an existing extent it is
        rejected (None); partial overlaps trim the new extent's span.
        Returns the possibly trimmed ``(seq, start)`` to insert."""
        doomed = []
        for other in list(self._extents.values()):
            if other.seq == seq:
                # Same sequence line: keep whichever covers more.
                if other.start <= start:
                    return None
                doomed.append(other)
                continue
            if _is_prefix(other.seq, seq):
                # Existing is an ancestor line; its payload ends at
                # len(other.seq) <= len(seq).
                if start <= other.start:
                    doomed.append(other)  # fully inside the new span
                elif start < len(other.seq):
                    start = len(other.seq)  # skip past the covered part
                continue
            if _is_prefix(seq, other.seq):
                # Existing is a descendant line whose span runs to
                # len(other.seq) >= len(seq).
                if other.start <= start:
                    return None  # new payload fully inside existing span
                if other.start < len(seq):
                    # Trim the tail: [start, other.start) is the gap the
                    # existing extent does not cover.
                    seq = seq[: other.start]
                if start >= len(seq):
                    return None
        if start >= len(seq):
            return None
        for other in doomed:
            self._drop(other, now, reason="superseded")
        return seq, start

    def _rebalance(self, now: float) -> None:
        """Demote host overflow to SSD, drop SSD overflow."""
        while self.resident_tokens("host") > self.host_capacity_tokens:
            victim = self._victim("host")
            if victim is None:
                break
            if self.ssd_capacity_tokens > 0:
                victim.tier = "ssd"
                self.stats.spilled_tokens += victim.tokens
                demote_s = self.pricing.ssd_swap_time(
                    victim.tokens * self.bytes_per_token
                )
                self.stats.swap_out_seconds += demote_s
                self._audit(now, "kv_tier_demote", tokens=victim.tokens,
                            seconds=demote_s, tier="ssd")
            else:
                self._drop(victim, now, reason="capacity")
        while self.resident_tokens("ssd") > self.ssd_capacity_tokens:
            victim = self._victim("ssd")
            if victim is None:
                break
            self._drop(victim, now, reason="capacity")

    def _drop(self, extent: _Extent, now: float, reason: str) -> None:
        del self._extents[extent.seq]
        self.stats.dropped_tokens += extent.tokens
        self._audit(now, "kv_tier_drop", tokens=extent.tokens,
                    tier=extent.tier, reason=reason)

    def _victim(self, tier: str) -> _Extent | None:
        candidates = [e for e in self._extents.values() if e.tier == tier]
        if not candidates:
            return None
        if self.policy == "lru":
            return min(candidates, key=lambda e: (e.last_access, e.seqno))
        if self.policy == "fifo":
            return min(candidates, key=lambda e: e.seqno)
        return max(candidates, key=lambda e: e.seqno)  # lifo

    # -- swap-in path ---------------------------------------------------------

    def fetch(
        self, token_ids: tuple[int, ...], resident_len: int, now: float,
        request_id: int | None = None,
    ) -> tuple[int, float]:
        """Swap the best extending extent back up to the GPU.

        Returns ``(usable_len, swap_seconds)`` where ``usable_len`` is
        the new longest usable prefix of ``token_ids`` (== ``resident_len``
        when no extent helps, with zero cost).  The extent leaves the
        store — swap-in is a move, never a copy.  ``request_id`` names
        the benefiting request in the audit record (the prefill whose
        launch the swap debt will be charged to)."""
        extent = self._best_extension(token_ids, resident_len)
        if extent is None:
            return resident_len, 0.0
        usable = self._usable(extent, token_ids)
        seconds = self.pricing.swap_time(
            extent.tokens * self.bytes_per_token, extent.tier
        )
        tier = extent.tier
        del self._extents[extent.seq]
        self.stats.swapped_in_tokens += extent.tokens
        self.stats.swap_in_seconds += seconds
        self._audit(
            now, "kv_tier_swap_in", tokens=extent.tokens, seconds=seconds,
            tier=tier,
            **({} if request_id is None else {"request": request_id}),
        )
        return usable, seconds

    def _best_extension(
        self, token_ids: tuple[int, ...], resident_len: int
    ) -> _Extent | None:
        """The extent giving the longest usable prefix beyond
        ``resident_len``; contiguity requires its span to start at or
        before the resident boundary.  Deterministic tie-break by
        insertion order."""
        best = None
        best_usable = resident_len
        first = token_ids[0] if token_ids else None
        for extent in self._extents.values():
            if extent.start > resident_len:
                continue
            seq = extent.seq
            # An extent whose line diverges at token 0 has usable == 0,
            # which can never win (winning needs usable > resident_len
            # >= 0) — skip the token-by-token scan.  This is the common
            # case under multi-session traffic, where most offloaded
            # extents belong to other sequence lines.
            if not seq or seq[0] != first:
                continue
            usable = self._usable(extent, token_ids)
            if usable > best_usable or (
                usable == best_usable
                and best is not None
                and usable > resident_len
                and extent.seqno < best.seqno
            ):
                best = extent
                best_usable = usable
        return best

    @staticmethod
    def _usable(extent: _Extent, token_ids: tuple[int, ...]) -> int:
        limit = min(len(extent.seq), len(token_ids))
        k = 0
        seq = extent.seq
        while k < limit and seq[k] == token_ids[k]:
            k += 1
        return k

    # -- invariants -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when conservation or residency is broken
        (the chaos tests call this after every perturbation)."""
        host = self.resident_tokens("host")
        ssd = self.resident_tokens("ssd")
        stats = self.stats
        assert stats.offloaded_tokens == (
            host + ssd + stats.swapped_in_tokens + stats.dropped_tokens
        ), (
            f"tier token conservation broken: offloaded={stats.offloaded_tokens} "
            f"!= host={host} + ssd={ssd} + in={stats.swapped_in_tokens} "
            f"+ dropped={stats.dropped_tokens}"
        )
        assert host <= self.host_capacity_tokens, "host tier over capacity"
        assert ssd <= self.ssd_capacity_tokens, "ssd tier over capacity"
        spans = [
            (e.seq, e.start, len(e.seq)) for e in self._extents.values()
        ]
        for i, (seq_a, start_a, end_a) in enumerate(spans):
            for seq_b, start_b, end_b in spans[i + 1:]:
                if not (_is_prefix(seq_a, seq_b) or _is_prefix(seq_b, seq_a)):
                    continue  # different sequence lines never alias
                lo = max(start_a, start_b)
                hi = min(end_a, end_b)
                assert hi <= lo, (
                    f"double residency: spans [{start_a},{end_a}) and "
                    f"[{start_b},{end_b}) overlap on a shared line"
                )


def _is_prefix(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
    return len(a) <= len(b) and b[: len(a)] == a
