"""Unified distributed KV cache pool (§4).

LoongServe manages KV tensors at the granularity of a single token across
elastic instances.  ``InstancePool`` accounts one instance's slots;
``UnifiedKVPool`` provides the global view the manager schedules against,
including token-level request placements that may span instances (the
property that eliminates the Figure-4 fragmentation pathology).
"""

from repro.kvcache.migration import MigrationPlan, plan_eviction_migration
from repro.kvcache.pool import InstancePool
from repro.kvcache.unified import Placement, UnifiedKVPool

__all__ = [
    "InstancePool",
    "MigrationPlan",
    "Placement",
    "UnifiedKVPool",
    "plan_eviction_migration",
]
