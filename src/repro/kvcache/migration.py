"""KV migration planning.

LoongServe avoids migration on the scaling fast paths, but the allocation
step (§5.2) still migrates occasionally: when the prefill phase preempts
an instance, the evicted decode batch's KV moves to the surviving decode
instances.  This module plans such moves and prices them with the
communication model (Eq. 4's volume / avg_bandwidth).

Two granularities exist:

* :class:`MigrationPlan` — intra-deployment: token spans of live requests
  move between one deployment's elastic instances (one shared
  :class:`UnifiedKVPool`).
* :class:`PrefixHandoff` — cross-replica: a cached prefix extent moves
  between two *deployments'* prefix-KV caches (the fleet control plane's
  session rebalancing).  The bookkeeping lives in each side's cache
  (``export_prefix`` / ``import_prefix``); this type carries the volume
  and prices the transfer over the inter-node fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.comm import CollectiveModel
from repro.kvcache.unified import UnifiedKVPool
from repro.model.spec import ModelSpec


@dataclass(frozen=True, slots=True)
class MigrationStep:
    """Move ``num_tokens`` of one request from ``src`` to ``dst``."""

    request_id: int
    src: int
    dst: int
    num_tokens: int


@dataclass(slots=True)
class MigrationPlan:
    """An ordered set of migration steps plus the modelled time cost."""

    steps: list[MigrationStep] = field(default_factory=list)

    @property
    def total_tokens(self) -> int:
        return sum(s.num_tokens for s in self.steps)

    def is_empty(self) -> bool:
        return not self.steps

    def apply(self, pool: UnifiedKVPool) -> None:
        """Execute the bookkeeping moves against the unified pool."""
        for step in self.steps:
            pool.move(step.request_id, step.src, step.dst, step.num_tokens)

    def cost(
        self,
        collectives: CollectiveModel,
        model: ModelSpec,
        tensor_parallel: int,
    ) -> float:
        """Wall-clock seconds, assuming steps between distinct pairs overlap
        and steps sharing *either* endpoint serialise (a source's NIC sends
        one stream at a time, and a destination's NIC likewise receives one
        at a time — many-to-one fan-in is not free)."""
        per_endpoint: dict[tuple[str, int], float] = {}
        for step in self.steps:
            kv_bytes = step.num_tokens * model.kv_bytes_per_token
            t = collectives.migration_time(kv_bytes, step.src, step.dst, tensor_parallel)
            src_key = ("src", step.src)
            dst_key = ("dst", step.dst)
            per_endpoint[src_key] = per_endpoint.get(src_key, 0.0) + t
            per_endpoint[dst_key] = per_endpoint.get(dst_key, 0.0) + t
        return max(per_endpoint.values(), default=0.0)


@dataclass(frozen=True, slots=True)
class PrefixHandoff:
    """One cross-replica migration of a cached prefix extent.

    ``num_tokens`` is the span actually installed on the destination
    (the source may hold more; already-resident destination tokens are
    never re-shipped).  ``reprefill_tokens`` is the affinity debt the
    move could not cover: prefix tokens the destination must re-prefill
    because they did not fit or were not migrated.
    """

    request_id: int
    src_replica: int
    dst_replica: int
    num_tokens: int
    reprefill_tokens: int = 0

    def cost(
        self,
        collectives: CollectiveModel,
        model: ModelSpec,
        tensor_parallel: int,
    ) -> float:
        """Wall-clock seconds to ship the extent between replicas."""
        kv_bytes = self.num_tokens * model.kv_bytes_per_token
        return collectives.cross_replica_migration_time(kv_bytes, tensor_parallel)


def plan_eviction_migration(
    pool: UnifiedKVPool,
    vacate_instance: int,
    target_instances: list[int],
) -> MigrationPlan | None:
    """Plan to empty one instance by moving its KV to targets.

    Fills targets most-free-first (the paper: "target instances are always
    instances with the most unused key-value cache slots").  Returns None
    when the targets cannot absorb the vacated tokens.
    """
    targets = [t for t in target_instances if t != vacate_instance]
    source_pool = pool.pools[vacate_instance]
    to_move = source_pool.snapshot()
    total = sum(to_move.values())
    if total == 0:
        return MigrationPlan()
    capacity = sum(pool.pools[t].free for t in targets)
    if capacity < total:
        return None

    plan = MigrationPlan()
    free_left = {t: pool.pools[t].free for t in targets}
    order = sorted(targets, key=lambda t: -free_left[t])
    for request_id, tokens in sorted(to_move.items()):
        remaining = tokens
        for target in order:
            if remaining == 0:
                break
            take = min(free_left[target], remaining)
            if take > 0:
                plan.steps.append(
                    MigrationStep(
                        request_id=request_id,
                        src=vacate_instance,
                        dst=target,
                        num_tokens=take,
                    )
                )
                free_left[target] -= take
                remaining -= take
        if remaining > 0:
            return None
    return plan
