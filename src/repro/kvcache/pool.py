"""Per-instance KV slot accounting.

Each elastic instance owns a fixed number of token-granularity KV slots
(PagedAttention at token granularity, §6).  The pool tracks which request
owns how many slots; the simulator does not model physical page layout —
token counts are sufficient for every scheduling decision and capacity
constraint in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class PoolExhaustedError(RuntimeError):
    """Raised when an allocation exceeds the instance's free slots."""


@dataclass(slots=True)
class InstancePool:
    """Token-granularity KV slot pool of one elastic instance."""

    instance_id: int
    capacity: int
    _owned: dict[int, int] = field(default_factory=dict)
    # Incrementally maintained sum of ``_owned`` — ``used`` sits on the
    # hot scheduling path (free-slot probes every tick), so recomputing
    # the sum per call is avoided.
    _used: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"pool capacity must be positive, got {self.capacity}")
        self._used = sum(self._owned.values())

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self.used

    @property
    def requests(self) -> list[int]:
        """Request ids holding at least one slot here."""
        return sorted(self._owned)

    def held_by(self, request_id: int) -> int:
        """Slots owned by a request (0 when absent)."""
        return self._owned.get(request_id, 0)

    def allocate(self, request_id: int, num_tokens: int) -> None:
        """Grant ``num_tokens`` additional slots to a request."""
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        if num_tokens == 0:
            return
        if num_tokens > self.free:
            raise PoolExhaustedError(
                f"instance {self.instance_id}: requested {num_tokens} slots, "
                f"only {self.free} free of {self.capacity}"
            )
        self._owned[request_id] = self._owned.get(request_id, 0) + num_tokens
        self._used += num_tokens

    def release(self, request_id: int, num_tokens: int | None = None) -> int:
        """Free a request's slots (all of them when ``num_tokens`` is None).

        Returns the number of slots actually released.
        """
        held = self._owned.get(request_id, 0)
        if held == 0:
            return 0
        if num_tokens is None or num_tokens >= held:
            del self._owned[request_id]
            self._used -= held
            return held
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        self._owned[request_id] = held - num_tokens
        self._used -= num_tokens
        return num_tokens

    def release_all(self) -> None:
        self._owned.clear()
        self._used = 0

    def snapshot(self) -> dict[int, int]:
        """Copy of the ownership map (request id -> slots)."""
        return dict(self._owned)
