"""The unified distributed KV cache pool (§3, §4).

The global manager sees all instances' pools as one token-granularity
pool: a request's KV tokens may live on any subset of instances, in any
split.  ``Placement`` is that split.  Because no locality constraint
exists, a request fits whenever *total* free slots suffice — the direct
fix for the Figure-4 fragmentation example, which ``can_fit_grouped``
lets baselines reproduce for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kvcache.pool import InstancePool, PoolExhaustedError

# instance id -> token count; a request's KV split across instances.
Placement = dict[int, int]


@dataclass(slots=True)
class UnifiedKVPool:
    """Global view over every elastic instance's KV slots."""

    pools: dict[int, InstancePool] = field(default_factory=dict)
    _placements: dict[int, Placement] = field(default_factory=dict)

    @classmethod
    def create(cls, num_instances: int, slots_per_instance: int) -> UnifiedKVPool:
        pools = {
            i: InstancePool(instance_id=i, capacity=slots_per_instance)
            for i in range(num_instances)
        }
        return cls(pools=pools)

    # -- capacity queries ----------------------------------------------------

    @property
    def num_instances(self) -> int:
        return len(self.pools)

    @property
    def total_capacity(self) -> int:
        return sum(p.capacity for p in self.pools.values())

    @property
    def total_free(self) -> int:
        return sum(p.free for p in self.pools.values())

    @property
    def total_used(self) -> int:
        return sum(p.used for p in self.pools.values())

    def free_on(self, instance_ids: list[int] | None = None) -> int:
        """Free slots over a subset of instances (all when None)."""
        ids = self.pools.keys() if instance_ids is None else instance_ids
        return sum(self.pools[i].free for i in ids)

    def free_map(self) -> dict[int, int]:
        return {i: p.free for i, p in self.pools.items()}

    def can_fit_unified(self, num_tokens: int, instance_ids: list[int] | None = None) -> bool:
        """LoongServe's rule: total free slots suffice, any split allowed."""
        return self.free_on(instance_ids) >= num_tokens

    def can_fit_grouped(self, num_tokens: int, instance_ids: list[int] | None = None) -> bool:
        """Locality-constrained rule of group-based baselines: the whole
        request must fit inside a single instance (Figure 4)."""
        ids = self.pools.keys() if instance_ids is None else instance_ids
        return any(self.pools[i].free >= num_tokens for i in ids)

    # -- placement lifecycle ---------------------------------------------------

    def placement_of(self, request_id: int) -> Placement:
        """Current KV split of a request (empty when not resident)."""
        return dict(self._placements.get(request_id, {}))

    def tokens_of(self, request_id: int) -> int:
        return sum(self._placements.get(request_id, {}).values())

    def instances_of(self, request_id: int) -> list[int]:
        return sorted(self._placements.get(request_id, {}))

    def resident_requests(self) -> list[int]:
        return sorted(self._placements)

    def place(self, request_id: int, placement: Placement) -> None:
        """Install a request's KV tokens according to ``placement``.

        All-or-nothing: if any instance lacks slots the whole placement is
        rolled back and ``PoolExhaustedError`` raised.
        """
        if self._placements.get(request_id):
            raise ValueError(f"request {request_id} already placed; use extend()")
        done: list[tuple[int, int]] = []
        try:
            for instance_id, tokens in placement.items():
                self.pools[instance_id].allocate(request_id, tokens)
                done.append((instance_id, tokens))
        except PoolExhaustedError:
            for instance_id, tokens in done:
                self.pools[instance_id].release(request_id, tokens)
            raise
        self._placements[request_id] = {i: t for i, t in placement.items() if t > 0}

    def extend(self, request_id: int, instance_id: int, num_tokens: int = 1) -> None:
        """Append newly generated KV tokens on one instance (decode path)."""
        self.pools[instance_id].allocate(request_id, num_tokens)
        placement = self._placements.setdefault(request_id, {})
        placement[instance_id] = placement.get(instance_id, 0) + num_tokens

    def evict(self, request_id: int) -> int:
        """Drop a request's KV entirely (preemption); returns tokens freed."""
        placement = self._placements.pop(request_id, {})
        freed = 0
        for instance_id, tokens in placement.items():
            freed += self.pools[instance_id].release(request_id, tokens)
        return freed

    def reassign(self, src_owner: int, dst_owner: int, num_tokens: int) -> Placement:
        """Hand ``num_tokens`` of one owner's slots to another owner in
        place (no data movement — the slots stay on their instances).

        Used by the prefix-KV cache when a radix extent splits or adopts a
        finished request's suffix.  Tokens are taken from the source's
        instances in ascending id order; returns the transferred split.
        """
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        placement = self._placements.get(src_owner, {})
        held = sum(placement.values())
        if held < num_tokens:
            raise ValueError(
                f"owner {src_owner} holds {held} tokens, cannot reassign {num_tokens}"
            )
        moved: Placement = {}
        remaining = num_tokens
        for instance_id in sorted(placement):
            if remaining == 0:
                break
            take = min(placement[instance_id], remaining)
            self.pools[instance_id].release(src_owner, take)
            self.pools[instance_id].allocate(dst_owner, take)
            placement[instance_id] -= take
            if placement[instance_id] == 0:
                del placement[instance_id]
            moved[instance_id] = take
            remaining -= take
        if not placement:
            self._placements.pop(src_owner, None)
        if moved:
            dst = self._placements.setdefault(dst_owner, {})
            for instance_id, tokens in moved.items():
                dst[instance_id] = dst.get(instance_id, 0) + tokens
        return moved

    def move(self, request_id: int, src: int, dst: int, num_tokens: int) -> None:
        """Migrate tokens of one request between instances (bookkeeping
        only — the time cost is charged by the caller via the cost model)."""
        placement = self._placements.get(request_id)
        if not placement or placement.get(src, 0) < num_tokens:
            raise ValueError(
                f"request {request_id} holds {placement.get(src, 0) if placement else 0} "
                f"tokens on instance {src}, cannot move {num_tokens}"
            )
        self.pools[dst].allocate(request_id, num_tokens)
        self.pools[src].release(request_id, num_tokens)
        placement[src] -= num_tokens
        if placement[src] == 0:
            del placement[src]
        placement[dst] = placement.get(dst, 0) + num_tokens

    # -- placement helpers -------------------------------------------------------

    def balanced_placement(
        self, num_tokens: int, instance_ids: list[int]
    ) -> Placement:
        """Split tokens across instances proportionally to free capacity.

        Proactive scale-down permits any token-level split at zero cost
        (§4.1), so the manager balances by availability, avoiding the
        uneven-load problem reactive migration forces.
        """
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        frees = {i: self.pools[i].free for i in instance_ids}
        total_free = sum(frees.values())
        if total_free < num_tokens:
            raise PoolExhaustedError(
                f"{num_tokens} tokens do not fit in {total_free} free slots "
                f"on instances {instance_ids}"
            )
        placement: Placement = {}
        remaining = num_tokens
        for rank, instance_id in enumerate(sorted(instance_ids, key=lambda i: -frees[i])):
            if remaining == 0:
                break
            left = len(instance_ids) - rank
            share = min(frees[instance_id], -(-remaining // left))
            if share > 0:
                placement[instance_id] = share
                remaining -= share
        if remaining > 0:  # spill into residual free capacity
            for instance_id in sorted(instance_ids, key=lambda i: -frees[i]):
                spare = frees[instance_id] - placement.get(instance_id, 0)
                take = min(spare, remaining)
                if take > 0:
                    placement[instance_id] = placement.get(instance_id, 0) + take
                    remaining -= take
                if remaining == 0:
                    break
        assert remaining == 0
        return placement

    def fragmentation(self) -> float:
        """Largest single request placeable under locality constraints,
        relative to total free memory.  1.0 = no fragmentation."""
        total = self.total_free
        if total == 0:
            return 1.0
        largest = max(p.free for p in self.pools.values())
        return largest / total
