"""The paper's analytical iteration-time model (Eq. 7).

``T_p(R) = α_p + β_p · Σ len + γ_p · Σ len²`` with one coefficient triple
per parallelism strategy.  α captures constant overhead, β the linear
layers (FFN/projections), γ the quadratic attention.  Coefficients are
fitted from profiling samples by least squares (§5.5, fitting.py) and
stored in the SIB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.parallel.strategy import ParallelismStrategy


@dataclass(frozen=True)
class StrategyCoefficients:
    """Fitted (α, β, γ) for one parallelism strategy."""

    alpha: float
    beta: float
    gamma: float

    def predict(self, total_len: float, total_len_sq: float) -> float:
        """Predicted iteration time from Σ len and Σ len²."""
        return self.alpha + self.beta * total_len + self.gamma * total_len_sq


class AnalyticalModel:
    """Per-strategy quadratic predictor implementing ``IterationCostModel``.

    The global manager plans with this model; the DP batching step (§5.3)
    exploits that predictions depend only on the sums Σ len and Σ len²,
    which prefix sums provide in O(1) per interval.
    """

    # Prediction cache cap: the planner re-asks the same (strategy,
    # request-set) keys many times per tick (allocation's grow loop and
    # dispatching's co-opt scan), but distinct keys are bounded by the
    # trace, so a generous cap only guards pathological runs.
    _CACHE_MAX = 100_000

    def __init__(self) -> None:
        self._coefficients: dict[ParallelismStrategy, StrategyCoefficients] = {}
        self._predict_cache: dict[tuple, float] = {}

    def set_coefficients(
        self, strategy: ParallelismStrategy, coefficients: StrategyCoefficients
    ) -> None:
        self._coefficients[strategy] = coefficients
        self._predict_cache.clear()

    def coefficients(self, strategy: ParallelismStrategy) -> StrategyCoefficients:
        try:
            return self._coefficients[strategy]
        except KeyError:
            raise KeyError(
                f"no fitted coefficients for {strategy}; profile it into the SIB first"
            ) from None

    def has_strategy(self, strategy: ParallelismStrategy) -> bool:
        return strategy in self._coefficients

    @property
    def strategies(self) -> list[ParallelismStrategy]:
        return sorted(self._coefficients, key=lambda s: (s.sequence_parallel, s.tensor_parallel))

    def predict(
        self, strategy: ParallelismStrategy, input_lens: Sequence[int]
    ) -> float:
        """Predicted prefill iteration time for a request set.

        Memoised on the exact ``(strategy, input_lens)`` key — the cached
        float is the identical object the uncached path would return, so
        replay stays bit-for-bit.  ``set_coefficients`` invalidates.
        """
        key = (strategy, tuple(input_lens))
        cache = self._predict_cache
        hit = cache.get(key)
        if hit is not None:
            return hit
        total = float(sum(input_lens))
        total_sq = float(sum(n * n for n in input_lens))
        value = self.coefficients(strategy).predict(total, total_sq)
        if len(cache) >= self._CACHE_MAX:
            cache.clear()
        cache[key] = value
        return value

    def predict_sums(
        self, strategy: ParallelismStrategy, total_len: float, total_len_sq: float
    ) -> float:
        """Predict directly from precomputed sums (used by the batching DP)."""
        return self.coefficients(strategy).predict(total_len, total_len_sq)

    def prefill_time(
        self,
        input_lens: Sequence[int],
        instances: Sequence[int] | int,
        tensor_parallel: int,
    ) -> float:
        """``IterationCostModel`` interface: strategy inferred from the group."""
        if isinstance(instances, int):
            sp = instances
        else:
            sp = max(1, len(list(instances)))
        strategy = ParallelismStrategy(tensor_parallel=tensor_parallel, sequence_parallel=sp)
        return self.predict(strategy, input_lens)
