"""Communication cost primitives for the collectives LoongServe issues.

Three communication patterns matter:

* **Tensor-parallel all-reduce** — two per transformer layer over the
  activation tensor, inside one elastic instance (always NVLink).
* **Sequence-parallel ring pass** — striped attention circulates each
  instance's KV shard around the parallel group once per round, with
  ``sp - 1`` rounds per layer (§2.3, Figure 1).
* **Multi-master query exchange** — masters broadcast query tensors to the
  group and gather partial attention results back (§4.2, Figure 8).

All models are bandwidth + per-message latency; collective algorithms use
the standard ring formulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.topology import Interconnect


@dataclass(frozen=True)
class CollectiveModel:
    """Times collective operations on a concrete cluster."""

    cluster: Cluster

    def _instance_link(self, instances: list[int], tensor_parallel: int) -> Interconnect:
        """Bottleneck link among a set of elastic instances."""
        gpus: list[int] = []
        for inst in instances:
            gpus.extend(self.cluster.instance_gpus(inst, tensor_parallel))
        topo = self.cluster.topology
        if topo.spans_nodes(gpus):
            return topo.infiniband
        return topo.nvlink

    def allreduce_time(self, num_bytes: float, world: int, link: Interconnect) -> float:
        """Ring all-reduce of ``num_bytes`` across ``world`` participants.

        Standard cost: each participant sends ``2 (w-1)/w`` of the buffer.
        """
        if world <= 1 or num_bytes <= 0:
            return 0.0
        wire = 2 * (world - 1) / world * num_bytes / link.bandwidth
        return wire + 2 * (world - 1) * link.latency

    def tp_allreduce_time(self, activation_bytes: float, tensor_parallel: int) -> float:
        """One all-reduce inside an elastic instance (always intra-node)."""
        return self.allreduce_time(
            activation_bytes, tensor_parallel, self.cluster.topology.nvlink
        )

    def ring_pass_time(
        self,
        shard_bytes: float,
        instances: list[int],
        tensor_parallel: int,
    ) -> float:
        """One round of KV circulation: every instance forwards its shard.

        Each instance's TP ranks stream their slice in parallel, so the
        effective bandwidth is ``link_bw * tensor_parallel``; rounds are
        synchronous so one round costs one hop.
        """
        if len(instances) <= 1 or shard_bytes <= 0:
            return 0.0
        link = self._instance_link(instances, tensor_parallel)
        effective_bw = link.bandwidth * tensor_parallel
        return link.latency + shard_bytes / effective_bw

    def query_exchange_time(
        self,
        query_bytes: float,
        result_bytes: float,
        instances: list[int],
        tensor_parallel: int,
    ) -> float:
        """Master sends queries out and gathers partial attention back.

        Both directions cross the group bottleneck link; masters exchange
        concurrently so the cost is one send + one gather of the per-peer
        payload, not a full broadcast serialisation.
        """
        if len(instances) <= 1:
            return 0.0
        link = self._instance_link(instances, tensor_parallel)
        effective_bw = link.bandwidth * tensor_parallel
        total = query_bytes + result_bytes
        return 2 * link.latency + total / effective_bw

    def migration_time(
        self,
        kv_bytes: float,
        src_instance: int,
        dst_instance: int,
        tensor_parallel: int,
    ) -> float:
        """Bulk KV cache migration between two instances.

        This is the *reactive migration* cost the paper's baselines pay
        (§4.1) and LoongServe's allocation step weighs via Eq. 4.
        """
        if kv_bytes <= 0:
            return 0.0
        bw = self.cluster.instance_bandwidth(src_instance, dst_instance, tensor_parallel)
        src_gpu = self.cluster.instance_gpus(src_instance, tensor_parallel)[0]
        dst_gpu = self.cluster.instance_gpus(dst_instance, tensor_parallel)[0]
        latency = self.cluster.topology.link(src_gpu, dst_gpu).latency
        return latency + kv_bytes / bw

    def instance_bandwidth(
        self, src_instance: int, dst_instance: int, tensor_parallel: int
    ) -> float:
        """Aggregate bytes/s between two instances (Eq. 4's avg_bandwidth)."""
        return self.cluster.instance_bandwidth(src_instance, dst_instance, tensor_parallel)

    def cross_replica_migration_time(
        self, kv_bytes: float, tensor_parallel: int
    ) -> float:
        """Bulk KV transfer between two *replica deployments*.

        Replicas are separate deployments, so the transfer always crosses
        the inter-node fabric regardless of either side's intra-replica
        topology; each side streams through its ``tensor_parallel`` NIC
        lanes in parallel (the same lane model as :meth:`ring_pass_time`).
        The fleet control plane prices session-KV rebalancing with this —
        see ``repro.kvcache.migration.PrefixHandoff``.
        """
        if kv_bytes <= 0:
            return 0.0
        link = self.cluster.topology.infiniband
        return link.latency + kv_bytes / (link.bandwidth * max(1, tensor_parallel))


@dataclass(frozen=True)
class SwapPricing:
    """Prices KV movement down the local memory hierarchy.

    Tiered KV offload (``repro.kvcache.tiers``) parks cold prefix
    extents in pinned host memory (over PCIe) and spills further to
    local NVMe.  Both hops are bandwidth + per-transfer latency, like
    every other link model in this module.  Defaults approximate a
    PCIe 4.0 x16 GPU (~24 GB/s effective DMA) and a datacenter NVMe
    drive (~5 GB/s sequential, ~100 us access).
    """

    pcie_bandwidth: float = 24e9
    pcie_latency: float = 10e-6
    ssd_bandwidth: float = 5e9
    ssd_latency: float = 100e-6

    def host_swap_time(self, kv_bytes: float) -> float:
        """One GPU<->host copy of ``kv_bytes`` over PCIe."""
        if kv_bytes <= 0:
            return 0.0
        return self.pcie_latency + kv_bytes / self.pcie_bandwidth

    def ssd_swap_time(self, kv_bytes: float) -> float:
        """One GPU<->SSD transfer: NVMe read/write staged through host
        memory, so the PCIe hop is paid on top of the drive."""
        if kv_bytes <= 0:
            return 0.0
        return self.host_swap_time(kv_bytes) + self.ssd_latency + (
            kv_bytes / self.ssd_bandwidth
        )

    def swap_time(self, kv_bytes: float, tier: str) -> float:
        """Swap cost for one transfer to/from ``tier`` ("host"/"ssd")."""
        if tier == "host":
            return self.host_swap_time(kv_bytes)
        if tier == "ssd":
            return self.ssd_swap_time(kv_bytes)
        raise ValueError(f"unknown KV tier {tier!r}")
