"""Least-squares fitting of the analytical model (§5.5).

The paper trains the (α, β, γ) coefficients of Eq. 7 "by the least square
method based on a few profiling results".  ``fit_quadratic`` solves the
normal equations via :func:`numpy.linalg.lstsq`; ``profile_and_fit``
generates the profiling samples against a ground-truth cost model (the
roofline model stands in for the real testbed) and fits every requested
strategy, which is precisely the workflow behind Figure 15.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.costmodel.analytical import AnalyticalModel, StrategyCoefficients
from repro.parallel.strategy import ParallelismStrategy

ProfileSample = tuple[Sequence[int], float]


def fit_quadratic(samples: Iterable[ProfileSample]) -> StrategyCoefficients:
    """Fit (α, β, γ) from (input_lens, measured_time) samples.

    Each sample contributes the row ``[1, Σ len, Σ len²]``.  At least three
    linearly independent samples are required; α and γ are clamped at zero
    (a fitted negative constant or negative quadratic term is never
    physical and would mislead the scheduler's extrapolation).
    """
    rows = []
    times = []
    for input_lens, measured in samples:
        total = float(sum(input_lens))
        total_sq = float(sum(n * n for n in input_lens))
        rows.append([1.0, total, total_sq])
        times.append(measured)
    if len(rows) < 3:
        raise ValueError(f"need at least 3 profiling samples, got {len(rows)}")
    design = np.asarray(rows)
    target = np.asarray(times)
    solution, _, rank, _ = np.linalg.lstsq(design, target, rcond=None)
    if rank < 3:
        raise ValueError("profiling samples are degenerate; vary lengths and batch sizes")
    alpha, beta, gamma = (float(v) for v in solution)
    return StrategyCoefficients(alpha=max(alpha, 0.0), beta=beta, gamma=max(gamma, 0.0))


def default_profile_grid(max_len: int = 500_000) -> list[list[int]]:
    """The profiling workload grid: single requests plus small batches.

    Mirrors the paper's profiling tool, which sweeps batch sizes and
    lengths ("a few profiling results" per strategy).
    """
    singles: list[list[int]] = []
    length = 256
    while length <= max_len:
        singles.append([length])
        length *= 4
    batches = [
        [1024] * 4,
        [4096] * 4,
        [16384] * 2,
        [1024, 8192],
        [2048, 2048, 65536],
    ]
    grid = singles + [b for b in batches if sum(b) <= 2 * max_len]
    grid.append([max_len])
    return grid


def profile_and_fit(
    measure: Callable[[ParallelismStrategy, Sequence[int]], float],
    strategies: Iterable[ParallelismStrategy],
    grid: Sequence[Sequence[int]] | None = None,
    max_len: int = 500_000,
) -> AnalyticalModel:
    """Profile ``measure`` over the grid and fit one triple per strategy.

    ``measure(strategy, input_lens)`` plays the role of running the real
    profiling kernels; the reproduction points it at the roofline model.
    """
    workloads = [list(w) for w in (grid or default_profile_grid(max_len))]
    model = AnalyticalModel()
    for strategy in strategies:
        samples = [(w, measure(strategy, w)) for w in workloads]
        model.set_coefficients(strategy, fit_quadratic(samples))
    return model
