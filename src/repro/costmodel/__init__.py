"""Performance cost models.

Two models live here, mirroring the paper's architecture:

* ``RooflineCostModel`` (latency.py) — the "hardware ground truth" the
  discrete-event simulator executes against.  It derives iteration times
  from FLOP counts, HBM bytes, and interconnect bytes on the published
  A800 testbed numbers.
* ``AnalyticalModel`` (analytical.py) — the paper's Eq. 7 quadratic model
  ``T = α + β·Σlen + γ·Σlen²``, fitted per parallelism strategy by least
  squares (fitting.py) over profiles stored in the SIB.  The global
  manager plans with this fitted model, exactly as in §5.5.
"""

from repro.costmodel.analytical import AnalyticalModel, StrategyCoefficients
from repro.costmodel.comm import CollectiveModel
from repro.costmodel.fitting import fit_quadratic, profile_and_fit
from repro.costmodel.latency import IterationCostModel, RooflineCostModel

__all__ = [
    "AnalyticalModel",
    "CollectiveModel",
    "IterationCostModel",
    "RooflineCostModel",
    "StrategyCoefficients",
    "fit_quadratic",
    "profile_and_fit",
]
