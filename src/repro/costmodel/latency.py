"""Roofline iteration-time model — the simulator's "hardware ground truth".

Each iteration's duration is the max of its compute time and its HBM time
(the roofline), plus non-overlapped communication and a fixed launch
overhead.  The asymmetries the paper exploits all emerge from this model:

* Prefill is compute-bound (quadratic attention FLOPs), so more GPUs help.
* Decode is memory-bound at small batch sizes (every iteration streams the
  weights), so extra instances help only once the KV cache or batch size
  is large — Figure 2.
* Sequence parallelism communicates KV shards on a ring and overlaps the
  transfer with attention compute, so SPxTP combinations match or beat
  pure TP — Figure 3.
* Multi-master decoding parallelises the length-independent (linear)
  layers across masters, which pays off exactly when decode becomes
  compute-bound at large batch sizes — Figure 14b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.cluster.cluster import Cluster
from repro.costmodel.comm import CollectiveModel
from repro.model.flops import decode_flops
from repro.model.spec import ModelSpec


# Replica lifecycle defaults: weights stream host-to-device over PCIe
# (4.0 x16 effective, per GPU) on warm-up; the fixed overheads cover
# process launch / allocator + CUDA-graph warm-up and, on cool-down,
# KV flush + weight unload.
HOST_TO_DEVICE_BANDWIDTH = 25e9  # bytes/s per GPU
REPLICA_INIT_OVERHEAD_S = 0.5
REPLICA_TEARDOWN_S = 0.2


@dataclass(frozen=True)
class ReplicaLifecycleModel:
    """Warm-up / cool-down costs of moving a replica in or out of rotation.

    The elastic control plane used to treat park/unpark as free, which
    over-credits autoscaling: a real unpark pays weight loading before
    the replica serves anything, and a park pays a teardown.  The fleet
    charges ``warmup_s`` as *latency* (the replica joins the placement
    pool only after it elapses — crash recovery pays it too) and
    ``cooldown_s`` as *capacity* (replica-seconds added to the bill).
    """

    warmup_s: float
    cooldown_s: float = REPLICA_TEARDOWN_S

    def __post_init__(self) -> None:
        if self.warmup_s < 0:
            raise ValueError(f"warmup_s must be non-negative, got {self.warmup_s}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be non-negative, got {self.cooldown_s}")

    @classmethod
    def for_model(
        cls,
        model: ModelSpec,
        tensor_parallel: int,
        host_bandwidth: float = HOST_TO_DEVICE_BANDWIDTH,
        init_overhead_s: float = REPLICA_INIT_OVERHEAD_S,
        cooldown_s: float = REPLICA_TEARDOWN_S,
    ) -> "ReplicaLifecycleModel":
        """Warm-up = per-GPU weight shard over PCIe + fixed init.

        Every GPU loads its ``weight_bytes / tensor_parallel`` shard in
        parallel (instances also load concurrently), so the shard size —
        not the replica's GPU count — sets the load time.
        """
        load = (model.weight_bytes / max(1, tensor_parallel)) / host_bandwidth
        return cls(warmup_s=load + init_overhead_s, cooldown_s=cooldown_s)


class IterationCostModel(Protocol):
    """What the global manager needs from a cost model (§5.5).

    ``T(R, E)`` in the paper: predicted prefill iteration time of request
    set ``R`` on elastic instance set ``E``.  Implemented both by the
    roofline ground truth and by the SIB-fitted analytical model.
    """

    def prefill_time(
        self,
        input_lens: Sequence[int],
        instances: Sequence[int],
        tensor_parallel: int,
    ) -> float: ...


@dataclass(frozen=True)
class RooflineCostModel:
    """Derives iteration times from the cluster and model specs.

    ``iteration_overhead`` covers CUDA launch, scheduling RPC, and Python
    driver time per iteration; ``layer_sync_overhead`` is the per-layer
    synchronisation cost sequence parallelism adds when a group has more
    than one instance.  ``sp_overlap`` / ``decode_overlap`` are the
    fractions of ring-pass / query-exchange traffic hidden behind attention
    compute (striped attention and multi-master decoding both overlap
    communication with computation, §4).
    """

    cluster: Cluster
    model: ModelSpec
    iteration_overhead: float = 3.0e-3
    layer_sync_overhead: float = 8.0e-6
    per_seq_overhead: float = 2.0e-4
    sp_overlap: float = 0.90
    decode_overlap: float = 0.80

    # Memoised results cap — every field above is frozen, so entries
    # never go stale; the cap only bounds memory on pathological traces.
    _CACHE_MAX = 200_000

    def __post_init__(self) -> None:
        # The dataclass is frozen but not slotted, so instance ``__dict__``
        # can hold derived state: one CollectiveModel for the lifetime of
        # the model (it used to be rebuilt on every property access, which
        # dominated the planner's call counts) and a bounded memo for the
        # prefill/decode entry points the scheduler hammers with repeating
        # (lens, group) keys.
        object.__setattr__(self, "_collectives", CollectiveModel(cluster=self.cluster))
        object.__setattr__(self, "_time_cache", {})

    @property
    def collectives(self) -> CollectiveModel:
        return self._collectives

    # -- helpers -----------------------------------------------------------

    def _resolve_instances(self, instances: Sequence[int] | int) -> list[int]:
        if isinstance(instances, int):
            return list(range(instances))
        return list(instances)

    def _group_gpus(self, instances: list[int], tensor_parallel: int) -> list[int]:
        gpus: list[int] = []
        for inst in instances:
            gpus.extend(self.cluster.instance_gpus(inst, tensor_parallel))
        return gpus

    # -- prefill -----------------------------------------------------------

    def prefill_time(
        self,
        input_lens: Sequence[int],
        instances: Sequence[int] | int,
        tensor_parallel: int,
    ) -> float:
        """Iteration time of a pure prefill batch on an ESP group."""
        insts = self._resolve_instances(instances)
        if not input_lens:
            return 0.0
        # Memoised on the exact argument key: the dispatch/allocation
        # planners re-price the same candidate (lens, group) pairs many
        # times per tick, and a cache hit returns the identical float.
        key = ("p", tuple(input_lens), tuple(insts), tensor_parallel)
        cache = self._time_cache
        hit = cache.get(key)
        if hit is not None:
            return hit
        chunks = [(n, 0) for n in input_lens]
        value = self.fused_iteration_time(chunks, [], insts, tensor_parallel)
        if len(cache) >= self._CACHE_MAX:
            cache.clear()
        cache[key] = value
        return value

    def fused_iteration_time(
        self,
        prefill_chunks: Sequence[tuple[int, int]],
        decode_contexts: Sequence[int],
        instances: Sequence[int] | int,
        tensor_parallel: int,
        num_masters: int = 1,
    ) -> float:
        """General iteration: prefill chunks plus piggybacked decodes.

        ``prefill_chunks`` is a list of ``(new_tokens, cached_context)``
        pairs — a full prefill is ``(input_len, 0)``; chunked prefill
        (SplitFuse) passes the chunk plus the tokens already cached.
        ``decode_contexts`` are the KV lengths of fused decode requests.
        This single entry point serves LoongServe, vLLM-style mixed
        batching, and both chunked-prefill baselines.
        """
        insts = self._resolve_instances(instances)
        sp = max(1, len(insts))
        tp = tensor_parallel
        world = sp * tp
        gpu = self.cluster.gpu
        m = self.model

        new_tokens = sum(c for c, _ in prefill_chunks)
        batch_tokens = new_tokens + len(decode_contexts)
        if batch_tokens == 0:
            return 0.0

        # Compute: linear work scales with tokens processed, attention with
        # query x context pairs.  Striped attention balances the causal
        # wedge across instances, so an even split is accurate.
        linear_flops = m.flops_per_token_linear() * batch_tokens
        attn_flops = 0.0
        for chunk, context in prefill_chunks:
            attn_flops += m.attention_flops(chunk, context + chunk / 2)
        for context in decode_contexts:
            attn_flops += m.attention_flops(1, context + 1)
        compute_time = (linear_flops + attn_flops) / (world * gpu.sustained_flops)
        attn_compute_time = attn_flops / (world * gpu.sustained_flops)

        # Memory: every instance streams its weight shard once; activations
        # and the attended KV stream through HBM as well.
        kv_read = sum(context for _, context in prefill_chunks) + sum(
            c + 1 for c in decode_contexts
        )
        kv_bytes = kv_read * m.kv_bytes_per_token / sp  # split across instances
        act_bytes = 2 * batch_tokens * m.hidden_size * m.dtype_bytes * m.num_layers / sp
        per_gpu_bytes = m.weight_bytes / tp + (kv_bytes + act_bytes) / tp
        memory_time = per_gpu_bytes / gpu.sustained_bandwidth

        # Tensor-parallel all-reduce: two per layer over this group's
        # activation slice.  Intra-instance, hence NVLink.
        coll = self.collectives
        act_slice = batch_tokens / sp * m.hidden_size * m.dtype_bytes
        tp_comm = (
            m.num_layers * 2 * coll.tp_allreduce_time(act_slice, tp) if tp > 1 else 0.0
        )

        # Sequence-parallel ring: (sp-1) rounds per layer, each circulating
        # this iteration's KV shard; mostly hidden behind attention.
        sp_comm = 0.0
        if sp > 1:
            shard_bytes = (
                batch_tokens / sp * 2 * m.kv_hidden_size * m.dtype_bytes
            )
            one_round = coll.ring_pass_time(shard_bytes, insts, tp)
            sp_comm = m.num_layers * (sp - 1) * one_round
            sp_comm = max(sp_comm * (1 - self.sp_overlap), sp_comm - attn_compute_time)
            sp_comm += m.num_layers * self.layer_sync_overhead

        # Per-sequence driver work (batching bookkeeping, sampling,
        # detokenisation) — the serving-era Python/runtime cost that makes
        # very large batches pay a real marginal price.  Masters split it,
        # which is part of what multi-master decoding buys (§4.2).
        batch_seqs = len(prefill_chunks) + len(decode_contexts)
        seq_overhead = self.per_seq_overhead * batch_seqs / max(1, num_masters)

        roofline = max(compute_time, memory_time)
        return roofline + tp_comm + sp_comm + seq_overhead + self.iteration_overhead

    # -- decode ------------------------------------------------------------

    def decode_time(
        self,
        context_lens: Sequence[int],
        instances: Sequence[int] | int,
        tensor_parallel: int,
        num_masters: int = 1,
    ) -> float:
        """Iteration time of one decode step on an ESP group.

        ``num_masters`` master instances split the batch's linear layers
        (multi-master distributed decoding, §4.2); all ``sp`` instances
        share the attention over their local KV shards.
        """
        insts = self._resolve_instances(instances)
        if not context_lens:
            return 0.0
        # Same exact-key memo as prefill_time — decode batches re-price
        # the same (contexts, group, masters) key on every planning tick
        # between iterations that change the contexts.
        key = ("d", tuple(context_lens), tuple(insts), tensor_parallel, num_masters)
        cache = self._time_cache
        hit = cache.get(key)
        if hit is not None:
            return hit
        sp = max(1, len(insts))
        tp = tensor_parallel
        masters = max(1, min(num_masters, sp))
        gpu = self.cluster.gpu
        m = self.model
        bs = len(context_lens)

        linear_flops = m.flops_per_token_linear() * bs
        attn_flops = sum(m.attention_flops(1, c + 1) for c in context_lens)

        # Masters split linear work; attention splits across the group.
        linear_compute = linear_flops / (masters * tp * gpu.sustained_flops)
        attn_compute = attn_flops / (sp * tp * gpu.sustained_flops)

        # Each master streams its full weight shard; KV reads split across
        # the group (token-granularity placement keeps shards balanced).
        kv_bytes = sum(c + 1 for c in context_lens) * m.kv_bytes_per_token
        weight_time = (m.weight_bytes / tp) / gpu.sustained_bandwidth
        kv_time = (kv_bytes / (sp * tp)) / gpu.sustained_bandwidth

        compute_time = linear_compute + attn_compute
        memory_time = weight_time + kv_time
        roofline = max(compute_time, memory_time)

        # TP all-reduce on the decode activations (tiny but real).
        coll = self.collectives
        act_bytes = bs / masters * m.hidden_size * m.dtype_bytes
        tp_comm = (
            m.num_layers * 2 * coll.tp_allreduce_time(act_bytes, tp) if tp > 1 else 0.0
        )

        # Query exchange between masters and the rest of the group,
        # overlapped with the local attention of mastered requests.
        sp_comm = 0.0
        if sp > 1:
            query_bytes = bs * m.hidden_size * m.dtype_bytes * (sp - 1) / sp
            result_bytes = query_bytes  # partial attention outputs + stats
            per_layer = coll.query_exchange_time(query_bytes, result_bytes, insts, tp)
            sp_comm = m.num_layers * per_layer
            sp_comm = max(sp_comm * (1 - self.decode_overlap), sp_comm - attn_compute)
            sp_comm += m.num_layers * self.layer_sync_overhead

        seq_overhead = self.per_seq_overhead * bs / masters
        value = roofline + tp_comm + sp_comm + seq_overhead + self.iteration_overhead
        if len(cache) >= self._CACHE_MAX:
            cache.clear()
        cache[key] = value
        return value

    # -- auxiliary costs ---------------------------------------------------

    def migration_time(
        self,
        num_tokens: int,
        src_instance: int,
        dst_instance: int,
        tensor_parallel: int,
    ) -> float:
        """Seconds to reactively migrate ``num_tokens`` of KV cache."""
        kv_bytes = num_tokens * self.model.kv_bytes_per_token
        return self.collectives.migration_time(
            kv_bytes, src_instance, dst_instance, tensor_parallel
        )

    def decode_step_lower_bound(self, tensor_parallel: int) -> float:
        """Fastest possible decode step (weights read + overhead).

        Useful as the SLO reference scale: the paper sets the SLO to 25x
        the inference latency, which for decode is bounded below by the
        weight-streaming time.
        """
        gpu = self.cluster.gpu
        weight_time = (self.model.weight_bytes / tensor_parallel) / gpu.sustained_bandwidth
        return weight_time + self.iteration_overhead

    def decode_flops_per_step(self, context_len: int) -> float:
        """Convenience passthrough for analyses and tests."""
        return decode_flops(self.model, context_len)
