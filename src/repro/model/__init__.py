"""Transformer model substrate: shapes, FLOP counts, and memory footprints.

The paper serves LWM-1M-Text, which reuses the Llama-2-7B architecture with
a 1M-token context window (§7.1).  These modules encode the architecture so
that every cost and capacity the scheduler reasons about is derived from the
real model shape rather than hard-coded constants.
"""

from repro.model.flops import decode_flops, prefill_flops
from repro.model.memory import decode_read_bytes, kv_cache_bytes
from repro.model.spec import (
    LLAMA2_13B,
    LLAMA2_70B,
    LWM_7B_1M,
    MIXTRAL_8X7B,
    AttentionKind,
    ModelSpec,
)

__all__ = [
    "AttentionKind",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "LWM_7B_1M",
    "MIXTRAL_8X7B",
    "ModelSpec",
    "decode_flops",
    "decode_read_bytes",
    "kv_cache_bytes",
    "prefill_flops",
]
