"""FLOP accounting for prefill and decode iterations.

The split between *linear* work (projections/FFN, proportional to tokens
processed) and *attention* work (proportional to query x context pairs) is
what makes prefill compute-bound and decode memory-bound — the asymmetry
the whole paper exploits.
"""

from __future__ import annotations

from repro.model.spec import ModelSpec


def prefill_flops(model: ModelSpec, input_len: int) -> float:
    """Total FLOPs to prefill one request of ``input_len`` tokens.

    Causal attention halves the naive query x key product: token *i*
    attends to *i* keys on average ``input_len / 2``.
    """
    if input_len <= 0:
        raise ValueError("input_len must be positive")
    linear = model.flops_per_token_linear() * input_len
    attention = model.attention_flops(input_len, input_len / 2)
    return linear + attention


def decode_flops(model: ModelSpec, context_len: int) -> float:
    """FLOPs to decode one token given ``context_len`` tokens of KV cache."""
    if context_len < 0:
        raise ValueError("context_len must be non-negative")
    linear = model.flops_per_token_linear()
    attention = model.attention_flops(1, context_len)
    return linear + attention


def batch_prefill_flops(model: ModelSpec, input_lens: list[int]) -> float:
    """Total FLOPs of a prefill batch (requests are independent)."""
    return sum(prefill_flops(model, n) for n in input_lens)


def batch_decode_flops(model: ModelSpec, context_lens: list[int]) -> float:
    """Total FLOPs of one decode iteration over a batch."""
    return sum(decode_flops(model, n) for n in context_lens)
