"""Model architecture specifications.

``ModelSpec`` captures exactly the shape parameters that drive serving
cost: hidden size, layer count, attention head layout (MHA/GQA/MQA — the
paper states ESP is compatible with all three, §6), FFN width, and context
window.  Derived properties give parameter counts, weight bytes, and KV
bytes per token; the 488 GB KV cache for a 1M-token request quoted in the
paper's introduction falls out of these numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AttentionKind(enum.Enum):
    MHA = "mha"
    GQA = "gqa"
    MQA = "mqa"


@dataclass(frozen=True)
class ModelSpec:
    """Static architecture description of a decoder-only transformer.

    Mixture-of-experts models (§8 notes LoongServe is compatible with
    MoE) set ``num_experts`` > 1: all experts' weights are stored, but
    only ``experts_per_token`` of them compute per token — weights grow,
    linear FLOPs don't.
    """

    name: str
    hidden_size: int
    num_layers: int
    num_heads: int
    num_kv_heads: int
    ffn_hidden_size: int
    vocab_size: int
    context_window: int
    dtype_bytes: int = 2
    num_experts: int = 1
    experts_per_token: int = 1

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by num_heads {self.num_heads}"
            )
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"num_heads {self.num_heads} not divisible by num_kv_heads {self.num_kv_heads}"
            )
        if self.dtype_bytes not in (1, 2, 4):
            raise ValueError(f"unsupported dtype width {self.dtype_bytes}")
        if self.num_experts < 1 or self.experts_per_token < 1:
            raise ValueError("expert counts must be >= 1")
        if self.experts_per_token > self.num_experts:
            raise ValueError(
                f"experts_per_token {self.experts_per_token} exceeds "
                f"num_experts {self.num_experts}"
            )

    @property
    def is_moe(self) -> bool:
        return self.num_experts > 1

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def attention_kind(self) -> AttentionKind:
        if self.num_kv_heads == self.num_heads:
            return AttentionKind.MHA
        if self.num_kv_heads == 1:
            return AttentionKind.MQA
        return AttentionKind.GQA

    @property
    def kv_hidden_size(self) -> int:
        """Width of the K (or V) projection output."""
        return self.num_kv_heads * self.head_dim

    @property
    def kv_bytes_per_token(self) -> int:
        """Bytes of KV cache one token occupies across all layers.

        K and V each store ``kv_hidden_size`` values per layer.  For the
        LWM/Llama-2-7B shape this is 2 * 32 * 4096 * 2 B = 512 KiB/token,
        which reproduces the paper's "488 GB for 1M tokens" (1e6 tokens *
        512 KiB = 488.3 GiB).
        """
        return 2 * self.num_layers * self.kv_hidden_size * self.dtype_bytes

    @property
    def param_count(self) -> int:
        """Total parameters (attention + all experts' FFNs + embeddings)."""
        h = self.hidden_size
        attn = h * h + 2 * h * self.kv_hidden_size + h * h  # Wq, Wk+Wv, Wo
        ffn = 3 * h * self.ffn_hidden_size * self.num_experts  # SwiGLU per expert
        router = h * self.num_experts if self.is_moe else 0
        per_layer = attn + ffn + router + 2 * h  # + two RMSNorm weights
        embeddings = self.vocab_size * h
        head = self.vocab_size * h
        return self.num_layers * per_layer + embeddings + head + h

    @property
    def active_param_count(self) -> int:
        """Parameters touched per token (= param_count for dense models)."""
        h = self.hidden_size
        inactive_ffn = 3 * h * self.ffn_hidden_size * (
            self.num_experts - self.experts_per_token
        )
        return self.param_count - self.num_layers * inactive_ffn

    @property
    def weight_bytes(self) -> int:
        return self.param_count * self.dtype_bytes

    def flops_per_token_linear(self) -> float:
        """FLOPs per token in the length-independent (linear) layers.

        Projections, the *active* experts' FFNs, and the LM head: 2 FLOPs
        per parameter touched.  This is the β-coefficient workload in the
        paper's analytical model (Eq. 7).
        """
        h = self.hidden_size
        attn_proj = 2 * (h * h + 2 * h * self.kv_hidden_size + h * h)
        ffn = 2 * 3 * h * self.ffn_hidden_size * self.experts_per_token
        router = 2 * h * self.num_experts if self.is_moe else 0
        head = 2 * self.vocab_size * h / self.num_layers  # amortised per layer
        return self.num_layers * (attn_proj + ffn + router + head)

    def attention_flops(self, query_tokens: int, context_tokens: float) -> float:
        """FLOPs of the attention score+value computation.

        ``query_tokens`` queries attending to ``context_tokens`` keys:
        2 (QK^T) + 2 (PV) FLOPs per query-key pair per head dimension.
        This is the quadratic γ-coefficient workload of Eq. 7.
        """
        if query_tokens < 0 or context_tokens < 0:
            raise ValueError("token counts must be non-negative")
        per_layer = 4 * query_tokens * context_tokens * self.hidden_size
        return self.num_layers * per_layer


# LWM-1M-Text: the paper's evaluation model (§7.1).  Same architecture as
# Llama-2-7B: 32 layers, hidden 4096, 32 MHA heads, SwiGLU FFN 11008.
LWM_7B_1M = ModelSpec(
    name="LWM-1M-Text-7B",
    hidden_size=4096,
    num_layers=32,
    num_heads=32,
    num_kv_heads=32,
    ffn_hidden_size=11008,
    vocab_size=32000,
    context_window=1_000_000,
)

LLAMA2_13B = ModelSpec(
    name="Llama-2-13B",
    hidden_size=5120,
    num_layers=40,
    num_heads=40,
    num_kv_heads=40,
    ffn_hidden_size=13824,
    vocab_size=32000,
    context_window=4096,
)

LLAMA2_70B = ModelSpec(
    name="Llama-2-70B",
    hidden_size=8192,
    num_layers=80,
    num_heads=64,
    num_kv_heads=8,
    ffn_hidden_size=28672,
    vocab_size=32000,
    context_window=4096,
)

# Mixture-of-experts reference (the paper cites Mixtral's MoE as the §8
# compatibility target): 8 experts, 2 active per token, GQA attention.
MIXTRAL_8X7B = ModelSpec(
    name="Mixtral-8x7B",
    hidden_size=4096,
    num_layers=32,
    num_heads=32,
    num_kv_heads=8,
    ffn_hidden_size=14336,
    vocab_size=32000,
    context_window=32768,
    num_experts=8,
    experts_per_token=2,
)
