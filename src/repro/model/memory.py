"""Byte accounting: KV cache sizes and decode-iteration memory traffic.

Decode iterations are memory-bandwidth-bound at small batch sizes because
every iteration must stream the full weight matrix plus the KV cache of
every request in the batch.  These byte counts feed the roofline model.
"""

from __future__ import annotations

from repro.model.spec import ModelSpec


def kv_cache_bytes(model: ModelSpec, num_tokens: int) -> int:
    """Bytes of KV cache held by ``num_tokens`` tokens."""
    if num_tokens < 0:
        raise ValueError("num_tokens must be non-negative")
    return num_tokens * model.kv_bytes_per_token


def weight_read_bytes(model: ModelSpec) -> int:
    """Bytes of weights streamed once per iteration."""
    return model.weight_bytes


def decode_read_bytes(model: ModelSpec, context_lens: list[int]) -> float:
    """HBM bytes read by one decode iteration over a batch.

    Weights are read once (shared across the batch); each request
    additionally reads its own KV cache.
    """
    kv = sum(kv_cache_bytes(model, n) for n in context_lens)
    return weight_read_bytes(model) + kv


def prefill_read_bytes(model: ModelSpec, input_lens: list[int]) -> float:
    """HBM bytes read by one prefill iteration (weights + activations).

    Prefill is compute-bound for realistic lengths; weights dominate the
    traffic for short batches, activations for long ones.  Activation
    traffic is approximated as one read+write of the hidden states per
    layer.
    """
    total_tokens = sum(input_lens)
    activations = 2 * total_tokens * model.hidden_size * model.dtype_bytes * model.num_layers
    return weight_read_bytes(model) + activations


def max_tokens_in_memory(model: ModelSpec, budget_bytes: float) -> int:
    """Largest number of KV tokens that fit in ``budget_bytes``."""
    if budget_bytes < 0:
        raise ValueError("budget must be non-negative")
    return int(budget_bytes // model.kv_bytes_per_token)
