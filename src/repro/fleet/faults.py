"""Replica failure injection and KV-loss failover.

The control plane so far treats replicas as reliable: the autoscaler
parks them *gracefully* (drain first, rescue hot KV, then go offline).
A production fleet does not get that courtesy — a replica dies with its
queued requests, its running batches, and every resident prefix-KV
extent.  This module injects exactly that event onto the shared
simulation clock and defines the failover contract the
:class:`~repro.fleet.control.FleetController` enacts:

* **Crash** — at a scripted (or stochastically drawn) instant the
  replica's server is killed atomically: queues and decode batches are
  wiped, the KV pool is lost, and every callback the dead server had
  scheduled is invalidated (``LoongServeServer.crash`` bumps an epoch
  the event guards check).
* **Failover** — orphaned requests (queued *and* in-flight) are reset
  for a full re-prefill (:func:`reset_for_failover` — the lost KV must
  be recomputed, and the charge is recorded) and re-dispatched through
  the policy's placement router over the surviving replicas.  Requests
  whose migrated KV was still in flight toward the dead replica are
  rescued the same way.  With no survivor accepting work, requests wait
  in the controller's limbo queue until a recovery lands.
* **Recovery** — after ``downtime_s`` (detection + replacement) the
  replica begins warming up (weight loading priced by
  :class:`~repro.costmodel.latency.ReplicaLifecycleModel`) and only then
  rejoins the placement pool, empty-handed: its cache hits must be
  re-earned, which is what the failover experiments measure.

Schedules are deterministic by construction: scripted plans replay
bit-identically, and :meth:`FaultPlan.poisson` draws from a seeded RNG
so chaos tests shrink and replay.  An **empty plan is the off switch**
— ``make_fleet`` maps it to "no injector", keeping fault-free fleets
bit-identical to the pre-fault control plane.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.types import Request, RequestState

# Detection + replacement delay before a crashed replica begins warming
# up.  Tens of seconds is the realistic order (health-check timeout plus
# pod reschedule), which on the simulated traces spans several bursts.
DEFAULT_DOWNTIME_S = 10.0


@dataclass(frozen=True)
class ReplicaFault:
    """One scheduled replica crash.

    ``time`` is the absolute simulation instant the replica dies;
    ``downtime_s`` the delay until its replacement begins warming up.
    A fault targeting a replica that is already offline (parked,
    warming, or previously crashed) is absorbed — there is nothing left
    to kill — and logged as ``crash-skipped``.
    """

    time: float
    replica_id: int
    downtime_s: float = DEFAULT_DOWNTIME_S

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise ValueError(
                f"fault time must be finite and non-negative, got {self.time}"
            )
        if self.replica_id < 0:
            raise ValueError(f"replica_id must be non-negative, got {self.replica_id}")
        if not math.isfinite(self.downtime_s) or self.downtime_s <= 0:
            raise ValueError(
                f"downtime_s must be finite and positive (a dead replica must "
                f"eventually be replaced), got {self.downtime_s}"
            )


class FaultPlan:
    """An immutable, time-ordered crash schedule.

    Construct from explicit :class:`ReplicaFault` entries for scripted
    scenarios, or draw a stochastic schedule with :meth:`poisson`.  The
    plan is just data — the controller schedules one simulator event per
    entry, so identical plans replay identically.
    """

    def __init__(self, faults: Sequence[ReplicaFault] = ()) -> None:
        self.faults: tuple[ReplicaFault, ...] = tuple(
            sorted(faults, key=lambda f: (f.time, f.replica_id))
        )

    @classmethod
    def scripted(
        cls, *crashes: tuple[float, int], downtime_s: float = DEFAULT_DOWNTIME_S
    ) -> "FaultPlan":
        """Build a plan from ``(time, replica_id)`` pairs."""
        return cls(
            [ReplicaFault(time=t, replica_id=r, downtime_s=downtime_s)
             for t, r in crashes]
        )

    @classmethod
    def poisson(
        cls,
        num_replicas: int,
        horizon_s: float,
        mtbf_s: float,
        seed: int = 0,
        downtime_s: float = DEFAULT_DOWNTIME_S,
    ) -> "FaultPlan":
        """Draw each replica's crashes as a Poisson process.

        ``mtbf_s`` is the per-replica mean time between failures; crash
        instants past ``horizon_s`` are dropped.  Deterministic in
        ``seed`` (the chaos harness replays shrunk schedules exactly).
        Crashes drawn while the replica would still be down are kept —
        injection skips them at fire time, modelling failures that hit
        already-dead hardware.
        """
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if not math.isfinite(horizon_s) or horizon_s < 0:
            raise ValueError("horizon_s must be finite and non-negative")
        if not math.isfinite(mtbf_s) or mtbf_s <= 0:
            raise ValueError("mtbf_s must be finite and positive")
        rng = random.Random(seed)
        faults: list[ReplicaFault] = []
        for replica_id in range(num_replicas):
            t = rng.expovariate(1.0 / mtbf_s)
            while t < horizon_s:
                faults.append(
                    ReplicaFault(time=t, replica_id=replica_id, downtime_s=downtime_s)
                )
                t += rng.expovariate(1.0 / mtbf_s)
        return cls(faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __iter__(self) -> Iterator[ReplicaFault]:
        return iter(self.faults)

    @property
    def max_replica_id(self) -> int:
        return max((f.replica_id for f in self.faults), default=-1)


@dataclass
class FaultInjector:
    """The failure actuator of a :class:`ClusterPolicy`.

    Holds the immutable :class:`FaultPlan` plus the per-run injection
    ledger (which faults actually fired vs. hit an already-dead
    replica).  The ledger is the only mutable state and :meth:`reset`
    clears it, so repeated ``run()``\\ s of one fleet are independent —
    the same contract the routers and autoscaler honour.
    """

    plan: FaultPlan
    injected: list[ReplicaFault] = field(default_factory=list)
    skipped: list[ReplicaFault] = field(default_factory=list)

    name = "fault-injector"

    def reset(self) -> None:
        """Clear the per-run injection ledger (fresh fleet run)."""
        self.injected = []
        self.skipped = []

    def note_injected(self, fault: ReplicaFault) -> None:
        self.injected.append(fault)

    def note_skipped(self, fault: ReplicaFault) -> None:
        self.skipped.append(fault)


def reset_for_failover(request: Request) -> int:
    """Reset a crashed replica's request for re-dispatch elsewhere.

    The dead replica took the request's KV with it, so everything it had
    computed — the prefilled prompt and any generated tokens — must be
    recomputed from scratch on the new home (a matched prefix there may
    still shortcut the prefill; that is the failover experiments' whole
    point).  Returns the recomputed-token charge: 0 for a still-queued
    request, ``input_len + generated`` once the prefill had started.

    Timestamps follow preemption semantics: ``arrival_time`` and
    ``first_token_time`` are preserved (the user has been waiting since
    arrival; streamed tokens were delivered), ``prefill_end`` is
    overwritten when the retry completes.
    """
    started = (
        request.state not in (RequestState.PENDING, RequestState.PREEMPTED)
        or request.generated > 0
    )
    lost = request.input_len + request.generated if started else 0
    request.state = RequestState.PENDING
    request.generated = 0
    request.cached_prefix_len = 0
    if started:
        request.preemptions += 1
    return lost
