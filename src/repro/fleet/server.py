"""N replica serving systems behind one router on a shared clock.

``FleetServer`` is the fleet-scale counterpart of a single system's
``run``: every replica (any system built by
``repro.experiments.systems.make_system`` — LoongServe, vLLM,
DistServe, a replicated engine group, …) is reset onto one shared
:class:`~repro.sim.engine.Simulator`, arrivals fire on that clock, and
the placement side of a :class:`~repro.fleet.control.ClusterPolicy`
places each request using the replicas' *live* state (queue depths, KV
pool occupancy) exactly as a fleet front-end would.

Placement is no longer the whole story: when the policy carries
actuators (autoscaler / work stealer / KV migrator), a
:class:`~repro.fleet.control.FleetController` runs periodic control
ticks on the same clock and moves capacity, queued work, and cached
session KV *after* arrival — the closed control loop.  With no
actuators armed, no ticks are scheduled and fleet behaviour is
bit-identical to pure route-once placement.

``ReplicaHandle`` adapts the heterogeneous server shapes to the uniform
probe-and-mutation surface the control plane consumes, and rebuilds a
per-replica :class:`~repro.types.ServeResult` afterwards;
``FleetResult`` is the merged fleet view plus the per-replica breakdown
the load-imbalance metrics read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.fleet.control import DEFAULT_CONTROL_INTERVAL, ClusterPolicy, FleetController
from repro.fleet.disagg import CLONE_ID_OFFSET
from repro.fleet.router import Router
from repro.metrics.fleet import ElasticStats, merge_serve_results
from repro.sim.engine import Simulator
from repro.types import Request, RequestState, ServeResult


class ReplicaHandle:
    """Uniform fleet-side view over one replica serving system.

    Routers read the *probe* surface (queue depth, KV occupancy, prefix
    matches); the control plane additionally drives the *mutation*
    surface: ``drain``/``park``/``unpark`` for autoscaling,
    ``withdraw``/``accept_stolen`` for work stealing, and
    ``export_prefix``/``import_prefix`` for cross-replica session-KV
    migration.
    """

    def __init__(self, replica_id: int, server) -> None:
        self.replica_id = replica_id
        self.server = server
        self.routed: list[Request] = []
        # Live subset of ``routed``: finished requests are lazily pruned
        # the next time a probe scans, so ``outstanding_*`` cost tracks
        # the in-flight population instead of the whole routing history
        # (which made every control tick quadratic in trace length).
        self._active: list[Request] = []
        # Cumulative token work ever submitted here (input + declared
        # output).  Unlike summing ``routed``, the counter is O(1) to
        # read and stable across crashes (orphans are pruned from the
        # list but their arrival still happened) — the predictive
        # autoscaler's arrival signal.  Withdrawals net out so a stolen
        # request counts once fleet-wide.
        self.routed_tokens = 0
        self.stolen_in = 0
        self.stolen_out = 0
        # Elastic lifecycle: an offline (parked) replica receives no
        # placements; a draining one finishes resident work first.
        # ``crashed`` marks an offline replica that *failed* (its KV is
        # gone and it cannot be unparked — recovery replaces it);
        # ``warming`` marks one loading weights on its way back online.
        self.online = True
        self.draining = False
        self.crashed = False
        self.warming = False
        # Warm standby (repro.fleet.disagg / make_fleet(standby=N)): the
        # replica starts parked with weights resident, so an autoscaler
        # promotion skips the weight-load warm-up entirely.
        self.standby = False
        self._kv_sources: list[tuple[int, object]] | None = None

    @property
    def name(self) -> str:
        return getattr(self.server, "name", type(self.server).__name__)

    @property
    def available(self) -> bool:
        """Eligible for new placements (online and not draining)."""
        return self.online and not self.draining

    @property
    def placeable(self) -> bool:
        """Can serve work if something is submitted to it.

        Parked (but healthy) replicas still count — their server state
        is intact, which is the pre-fault fallback when every replica is
        draining.  Crashed and warming replicas do not: submitting to
        them would serve requests on hardware the simulation just
        declared dead or still loading weights.
        """
        return not self.crashed and not self.warming

    # -- lifecycle -----------------------------------------------------------

    def prepare(self, sim) -> None:
        """Reset the replica and attach it to the shared clock (a
        :class:`Simulator`, or one replica's ``ShardClock`` view of it
        when the fleet runs sharded calendars)."""
        reset = getattr(self.server, "_reset", None)
        if callable(reset):
            reset()
        self.server.use_simulator(sim)
        self.routed = []
        self._active = []
        self.routed_tokens = 0
        self.stolen_in = 0
        self.stolen_out = 0
        self.online = not self.standby  # standby replicas start parked
        self.draining = False
        self.crashed = False
        self.warming = False
        self._kv_sources = None

    def submit(self, request: Request) -> None:
        self.routed.append(request)
        self._active.append(request)
        self.routed_tokens += request.input_len + request.output_len
        self.server.submit(request)

    def submit_shadow(self, request: Request) -> None:
        """Submit a request that must not appear in the fleet result.

        The disaggregated dispatcher's prefill-stage clones run here for
        real — they occupy the queue, the pool, and the probe surface
        (``_active``/``routed_tokens``), so routers and the autoscaler
        see the load — but stay out of ``routed``, which is what
        :meth:`result` reports: each arrival is counted exactly once
        fleet-wide, by the decode replica that serves its real decode.
        """
        self._active.append(request)
        self.routed_tokens += request.input_len + request.output_len
        self.server.submit(request)

    def drain(self) -> None:
        """Stop placements here; resident work runs to completion."""
        self.draining = True

    def park(self) -> bool:
        """Take the drained replica offline; False while work remains."""
        if self.outstanding_requests() > 0:
            return False
        self.online = False
        self.draining = False
        return True

    def unpark(self) -> None:
        """Bring a parked (or draining) replica back into rotation."""
        self.online = True
        self.draining = False

    # -- failure injection -----------------------------------------------------

    def crash(self) -> tuple[list[Request], int]:
        """Kill this replica; returns (orphaned requests, lost KV tokens).

        Delegates the atomic state wipe to the server (which must expose
        ``crash()`` — the LoongServe shapes do), prunes the orphans from
        the routed ledger so the fleet result cannot double-count them
        after failover, and takes the replica offline until recovery.
        """
        server_crash = getattr(self.server, "crash", None)
        if not callable(server_crash):
            raise TypeError(
                f"replica {self.name!r} does not support failure injection "
                f"(its server has no crash())"
            )
        orphans, lost_tokens = server_crash()
        orphan_ids = {r.request_id for r in orphans}
        self.routed = [r for r in self.routed if r.request_id not in orphan_ids]
        self._active = []  # every unfinished resident is an orphan now
        self.online = False
        self.draining = False
        self.crashed = True
        self.warming = False
        self.refresh_probes()  # the crash rebuilt the pools underneath
        return orphans, lost_tokens

    def begin_warmup(self) -> None:
        """Start loading weights (crash recovery or autoscaler unpark).

        The replica stays out of the placement pool until
        :meth:`complete_warmup`; the autoscaler sees ``warming`` and
        neither double-unparks it nor scales in while capacity is in
        flight.
        """
        self.warming = True
        self.online = False
        self.draining = False

    def complete_warmup(self) -> None:
        """Warm-up finished: rejoin the placement pool (empty-handed)."""
        self.warming = False
        self.crashed = False
        self.online = True
        self.draining = False

    # -- live probes (read by routers and the control plane) -------------------

    def outstanding_requests(self) -> int:
        """Routed requests not yet finished (aborts count as finished)."""
        active = [r for r in self._active if not r.finished]
        self._active = active
        return len(active)

    def outstanding_tokens(self) -> int:
        """Token-weighted outstanding work (queued + resident lengths)."""
        active = [r for r in self._active if not r.finished]
        self._active = active
        return sum(r.current_len for r in active)

    def _resolve_kv_sources(self) -> list[tuple[int, object]]:
        """Shape dispatch: (key, pool) pairs exposing ``free``/``capacity``."""
        pool = getattr(self.server, "pool", None)
        if pool is not None:
            if hasattr(pool, "pools"):  # UnifiedKVPool
                return sorted(pool.pools.items())
            return [(0, pool)]  # single-engine InstancePool
        engines = getattr(self.server, "engines", None)
        if engines:  # ReplicatedServer
            return [(i, engine.pool) for i, engine in enumerate(engines)]
        prefill = getattr(self.server, "prefill_engine", None)
        decode = getattr(self.server, "decode_engine", None)
        if prefill is not None and decode is not None:  # DistServe
            return [(0, prefill.pool), (1, decode.pool)]
        return []

    def kv_sources(self) -> list[tuple[int, object]]:
        """Resolved per-replica KV pool handles.

        The shape dispatch (and the dict it used to rebuild) runs once,
        not on every router probe of every arrival; the control loop
        calls :meth:`refresh_probes` each tick as the invalidation point
        (replica shapes are static in practice, so this is a safety
        refresh, not a correctness requirement — ``free`` reads stay
        live either way).
        """
        if self._kv_sources is None:
            self._kv_sources = self._resolve_kv_sources()
        return self._kv_sources

    def refresh_probes(self) -> None:
        """Control-tick invalidation of the cached probe structure."""
        self._kv_sources = None

    def kv_free_map(self) -> dict[int, int]:
        """Free KV slots per instance/engine, across server shapes."""
        return {key: pool.free for key, pool in self.kv_sources()}

    def kv_free(self) -> int:
        return sum(pool.free for _, pool in self.kv_sources())

    def kv_capacity(self) -> int:
        return sum(pool.capacity for _, pool in self.kv_sources())

    def kv_used_fraction(self) -> float:
        """KV pressure: fraction of this replica's slots in use."""
        capacity = self.kv_capacity()
        if capacity <= 0:
            return 0.0
        return 1.0 - self.kv_free() / capacity

    def prefix_match_len(self, request: Request) -> int:
        """Longest prompt prefix resident in this replica's prefix-KV
        cache (0 for replicas without one, or token-less requests)."""
        cache = getattr(self.server, "prefix_cache", None)
        if cache is None or request.token_ids is None:
            return 0
        return cache.peek_match(request.token_ids)

    @property
    def has_prefix_cache(self) -> bool:
        return getattr(self.server, "prefix_cache", None) is not None

    # -- work stealing ---------------------------------------------------------

    def _queue_slots(self) -> list[tuple[object, str]]:
        """Queues on this replica that hold withdrawable requests."""
        slots: list[tuple[object, str]] = []
        if hasattr(self.server, "pending"):  # LoongServeServer
            slots.append((self.server, "pending"))
        if hasattr(self.server, "waiting"):  # EngineServer shapes
            slots.append((self.server, "waiting"))
        prefill = getattr(self.server, "prefill_engine", None)
        if prefill is not None and hasattr(prefill, "waiting"):  # DistServe
            slots.append((prefill, "waiting"))
        for engine in getattr(self.server, "engines", None) or []:
            if hasattr(engine, "waiting"):  # ReplicatedServer
                slots.append((engine, "waiting"))
        return slots

    @staticmethod
    def _stealable(request: Request) -> bool:
        """Still-queued work with no resident state anywhere: safe to
        re-submit on any replica.  Shadow prefill clones are pinned —
        their KV must finish where the disaggregated handoff will export
        it, so relocating one would strand the original's transfer."""
        return (
            request.state == RequestState.PENDING
            and request.generated == 0
            and request.preemptions == 0
            and request.request_id < CLONE_ID_OFFSET
        )

    def queued_requests(self) -> list[Request]:
        """Requests queued here that a steal could relocate."""
        queued: list[Request] = []
        for owner, attr in self._queue_slots():
            queued.extend(r for r in getattr(owner, attr) if self._stealable(r))
        return queued

    def withdraw(self, request: Request) -> bool:
        """Remove a still-queued request from this replica entirely.

        Undoes everything ``submit`` caused for a request that never
        started executing: the queue entry, the server's bookkeeping
        membership, any prefix-cache pins from speculative matching, and
        the routed ledger.  Returns False when the request already left
        the queue (it started prefilling between plan and execution).
        """
        if not self._stealable(request):
            return False
        for owner, attr in self._queue_slots():
            queue = getattr(owner, attr)
            if request in queue:
                queue.remove(request)
                tracked = getattr(owner, "_all_requests", None)
                if tracked is not None and request in tracked:
                    tracked.remove(request)
                # If it was withdrawn before its first tick even vetted
                # it, the capacity check must not fire here — the new
                # owner vets it on its own queue.
                unvetted = getattr(self.server, "_unvetted", None)
                if unvetted is not None and request in unvetted:
                    unvetted.remove(request)
                cache = getattr(self.server, "prefix_cache", None)
                if cache is not None:
                    cache.release(request.request_id)
                    request.cached_prefix_len = 0
                if request in self.routed:
                    self.routed.remove(request)
                    self.routed_tokens -= request.input_len + request.output_len
                if request in self._active:
                    self._active.remove(request)
                self.stolen_out += 1
                return True
        return False

    def accept_stolen(self, request: Request) -> None:
        """Enqueue a request withdrawn from an overloaded peer."""
        self.stolen_in += 1
        self.submit(request)

    # -- cross-replica KV migration --------------------------------------------

    def export_prefix(self, request: Request) -> tuple[int, ...]:
        """Read this replica's resident prefix of ``request`` for handoff."""
        cache = getattr(self.server, "prefix_cache", None)
        if cache is None or request.token_ids is None:
            return ()
        return cache.export_prefix(request.token_ids)

    def import_prefix(self, token_ids: tuple[int, ...], now: float) -> int:
        """Install a migrated prefix extent; returns tokens placed."""
        cache = getattr(self.server, "prefix_cache", None)
        if cache is None:
            return 0
        return cache.import_prefix(token_ids, now)

    def note_prefix_export(self, num_tokens: int) -> None:
        """Charge a successful handoff against this side's export ledger."""
        cache = getattr(self.server, "prefix_cache", None)
        if cache is not None:
            cache.note_export(num_tokens)

    def resident_prefix_sequences(self) -> list[tuple[float, tuple[int, ...]]]:
        cache = getattr(self.server, "prefix_cache", None)
        if cache is None:
            return []
        return cache.resident_sequences()

    def clear_prefix_cache(self) -> int:
        cache = getattr(self.server, "prefix_cache", None)
        if cache is None:
            return 0
        return cache.clear()

    # -- result assembly -----------------------------------------------------

    def result(self, makespan: float) -> ServeResult:
        """Per-replica ``ServeResult`` over the requests routed here."""
        # Shadow prefill clones (disaggregated dispatch) never appear in
        # the fleet result: their original is delivered elsewhere, so an
        # aborted clone here would double-count the request.
        aborted = [
            r for r in self._collect("aborted")
            if r.request_id < CLONE_ID_OFFSET
        ]
        aborted_ids = {r.request_id for r in aborted}
        stats = self._collect("iteration_stats")
        cache = getattr(self.server, "prefix_cache", None)
        ledger = getattr(self.server, "qos_ledger", None)
        return ServeResult(
            system=self.name,
            requests=[r for r in self.routed if r.request_id not in aborted_ids],
            scaling_events=self._collect("scaling_events"),
            iteration_stats=sorted(stats, key=lambda s: s.start_time),
            makespan=makespan,
            aborted=aborted,
            cache_stats=cache.stats_dict() if cache is not None else None,
            qos_stats=ledger.as_dict() if ledger is not None else None,
        )

    def _collect(self, attr: str) -> list:
        collected: list = []
        for part in self._components():
            collected.extend(getattr(part, attr, None) or [])
        return collected

    def _components(self) -> list:
        parts = [self.server]
        parts.extend(getattr(self.server, "engines", None) or [])
        for sub in ("prefill_engine", "decode_engine"):
            engine = getattr(self.server, sub, None)
            if engine is not None:
                parts.append(engine)
        return parts


@dataclass
class FleetResult(ServeResult):
    """Fleet-merged ``ServeResult`` plus the per-replica breakdown.

    ``elastic`` carries the control plane's recorder when the run used
    one (None on static route-once fleets).
    """

    per_replica: list[ServeResult] = field(default_factory=list)
    elastic: ElasticStats | None = None


class FleetServer:
    """Serve one workload trace across replicas under a cluster policy."""

    def __init__(
        self,
        replicas: Sequence,
        router: Router | None = None,
        name: str | None = None,
        policy: ClusterPolicy | None = None,
        control_interval: float = DEFAULT_CONTROL_INTERVAL,
        sharded: bool = True,
        disagg=None,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        if (router is None) == (policy is None):
            raise ValueError("pass exactly one of router= or policy=")
        self.replicas = [
            ReplicaHandle(i, server) for i, server in enumerate(replicas)
        ]
        # Disaggregated two-stage dispatch (repro.fleet.disagg): when
        # armed, arrivals prefill on one pool and hand their KV to a
        # decode pool over the fabric instead of taking the policy's
        # route-once path.
        self.disagg = disagg
        if disagg is not None and len(self.replicas) < 2:
            raise ValueError("disaggregated dispatch needs at least 2 replicas")
        self.policy = policy if policy is not None else ClusterPolicy(router)
        self.router = self.policy.router  # back-compat alias
        self.control_interval = control_interval
        # Sharded calendars: each replica schedules on its own event
        # queue (bit-identical to the shared heap — same tie-break
        # order); the control plane keeps the simulator's own queue.
        self.sharded = sharded
        base = getattr(replicas[0], "name", type(replicas[0]).__name__)
        self.name = name or f"{base} x{len(replicas)} [{self.policy.name}]"
        self._remaining_arrivals = 0
        self._controller: FleetController | None = None
        self._obs = None
        # The most recent run's simulator (events_processed, final
        # clock) — benchmark instrumentation; None before the first run.
        self.last_sim = None

    def observe(self, obs) -> None:
        """Attach an :class:`~repro.obs.observe.Observability` bundle.

        Every replica's spans/audits land in the shared tracer (tagged
        with its replica id), the control plane audits its decisions,
        and telemetry samples ride the control ticks (or a standalone
        timer on static fleets).
        """
        self._obs = obs

    def run(self, requests: list[Request]) -> FleetResult:
        """Serve a trace across the fleet; returns the merged result."""
        return self._serve(requests, driver=None)

    def run_driven(self, driver) -> FleetResult:
        """Serve a closed-loop workload driver across the fleet.

        The driver (e.g. :class:`repro.sessions.ClosedLoopDriver`)
        submits requests on its own schedule — each submission takes the
        same placement path trace arrivals do, limbo-hold included.
        """
        return self._serve([], driver=driver)

    def _serve(self, requests: list[Request], driver) -> FleetResult:
        sim = Simulator()
        self.last_sim = sim
        self.policy.reset()
        for handle in self.replicas:
            handle.prepare(sim.create_shard() if self.sharded else sim)
        obs = self._obs
        self.policy.tracer = obs.tracer if obs is not None else None
        if obs is not None:
            for handle in self.replicas:
                server = handle.server
                if hasattr(server, "observe"):
                    server.observe(obs, replica=handle.replica_id)
                else:
                    server.trace = obs.tracer
        self._remaining_arrivals = len(requests) + (
            driver.total_requests if driver is not None else 0
        )
        controller: FleetController | None = None
        elastic: ElasticStats | None = None
        self._controller = None
        if self.policy.has_actuators or self.disagg is not None:
            elastic = ElasticStats()
        if self.policy.has_actuators:
            controller = self._controller = FleetController(
                policy=self.policy,
                replicas=self.replicas,
                sim=sim,
                stats=elastic,
                interval=self.control_interval,
                work_remaining=self._work_remaining,
                obs=obs,
                disagg=self.disagg,
            )
        if self.disagg is not None:
            self.disagg.reset(
                sim=sim,
                replicas=self.replicas,
                elastic=elastic,
                obs=obs,
            )
        for request in requests:
            sim.call_at(
                request.arrival_time,
                self._make_arrival(request, sim),
                label=f"arrival:{request.request_id}",
            )
        if driver is not None:
            driver.install(sim, (lambda req: self._place_arrival(req, sim)))
        if controller is not None:
            controller.start()
        elif obs is not None:
            # No control loop to ride: sample on a standalone timer.
            obs.arm_standalone_sampler(
                sim, (lambda now: obs.sample_fleet(self.replicas, now))
            )
        sim.run_until_idle()
        if obs is not None:
            obs.tracer.finalize(sim.now)

        per_replica = [handle.result(sim.now) for handle in self.replicas]
        merged = merge_serve_results(per_replica, system=self.name)
        return FleetResult(
            system=merged.system,
            requests=merged.requests,
            scaling_events=merged.scaling_events,
            iteration_stats=merged.iteration_stats,
            makespan=merged.makespan,
            aborted=merged.aborted,
            cache_stats=merged.cache_stats,
            qos_stats=merged.qos_stats,
            obs=obs,
            per_replica=per_replica,
            elastic=elastic,
        )

    def _work_remaining(self) -> bool:
        """Anything left for the control loop to manage?"""
        if self._remaining_arrivals > 0:
            return True
        if self.disagg is not None and self.disagg.inflight > 0:
            return True
        return any(h.outstanding_requests() > 0 for h in self.replicas)

    def _place_arrival(self, request: Request, sim: Simulator) -> None:
        """One arrival's placement path (trace and driver submissions)."""
        self._remaining_arrivals -= 1
        if self._controller is not None and self._controller.try_hold_arrival(
            request
        ):
            return  # every replica is dead or warming; limbo holds it
        if self.disagg is not None:
            self.disagg.dispatch(request)
            return
        handle = self.policy.place(request, self.replicas, sim.now)
        handle.submit(request)

    def _make_arrival(self, request: Request, sim: Simulator):
        def _on_arrival() -> None:
            self._place_arrival(request, sim)

        return _on_arrival
