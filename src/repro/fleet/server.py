"""N replica serving systems behind one router on a shared clock.

``FleetServer`` is the fleet-scale counterpart of a single system's
``run``: every replica (any system built by
``repro.experiments.systems.make_system`` — LoongServe, vLLM,
DistServe, a replicated engine group, …) is reset onto one shared
:class:`~repro.sim.engine.Simulator`, arrivals fire on that clock, and
the router places each request using the replicas' *live* state (queue
depths, KV pool occupancy) exactly as a fleet front-end would.

``ReplicaHandle`` adapts the heterogeneous server shapes to the uniform
probe surface routers consume, and rebuilds a per-replica
:class:`~repro.types.ServeResult` afterwards; ``FleetResult`` is the
merged fleet view plus the per-replica breakdown the load-imbalance
metrics read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.fleet.router import Router
from repro.metrics.fleet import merge_serve_results
from repro.sim.engine import Simulator
from repro.types import Request, ServeResult


class ReplicaHandle:
    """Uniform fleet-side view over one replica serving system."""

    def __init__(self, replica_id: int, server) -> None:
        self.replica_id = replica_id
        self.server = server
        self.routed: list[Request] = []

    @property
    def name(self) -> str:
        return getattr(self.server, "name", type(self.server).__name__)

    # -- lifecycle -----------------------------------------------------------

    def prepare(self, sim: Simulator) -> None:
        """Reset the replica and attach it to the shared clock."""
        reset = getattr(self.server, "_reset", None)
        if callable(reset):
            reset()
        self.server.use_simulator(sim)
        self.routed = []

    def submit(self, request: Request) -> None:
        self.routed.append(request)
        self.server.submit(request)

    # -- live probes (read by routers) ---------------------------------------

    def outstanding_requests(self) -> int:
        """Routed requests not yet finished (aborts count as finished)."""
        return sum(1 for r in self.routed if not r.finished)

    def outstanding_tokens(self) -> int:
        """Token-weighted outstanding work (queued + resident lengths)."""
        return sum(r.current_len for r in self.routed if not r.finished)

    def kv_free_map(self) -> dict[int, int]:
        """Free KV slots per instance/engine, across server shapes."""
        pool = getattr(self.server, "pool", None)
        if pool is not None:
            if hasattr(pool, "free_map"):  # UnifiedKVPool
                return dict(pool.free_map())
            return {0: pool.free}  # single-engine InstancePool
        engines = getattr(self.server, "engines", None)
        if engines:  # ReplicatedServer
            return {i: engine.pool.free for i, engine in enumerate(engines)}
        prefill = getattr(self.server, "prefill_engine", None)
        decode = getattr(self.server, "decode_engine", None)
        if prefill is not None and decode is not None:  # DistServe
            return {0: prefill.pool.free, 1: decode.pool.free}
        return {}

    def kv_free(self) -> int:
        return sum(self.kv_free_map().values())

    def prefix_match_len(self, request: Request) -> int:
        """Longest prompt prefix resident in this replica's prefix-KV
        cache (0 for replicas without one, or token-less requests)."""
        cache = getattr(self.server, "prefix_cache", None)
        if cache is None or request.token_ids is None:
            return 0
        return cache.peek_match(request.token_ids)

    # -- result assembly -----------------------------------------------------

    def result(self, makespan: float) -> ServeResult:
        """Per-replica ``ServeResult`` over the requests routed here."""
        aborted = self._collect("aborted")
        aborted_ids = {r.request_id for r in aborted}
        stats = self._collect("iteration_stats")
        cache = getattr(self.server, "prefix_cache", None)
        return ServeResult(
            system=self.name,
            requests=[r for r in self.routed if r.request_id not in aborted_ids],
            scaling_events=self._collect("scaling_events"),
            iteration_stats=sorted(stats, key=lambda s: s.start_time),
            makespan=makespan,
            aborted=aborted,
            cache_stats=cache.stats.as_dict() if cache is not None else None,
        )

    def _collect(self, attr: str) -> list:
        collected: list = []
        for part in self._components():
            collected.extend(getattr(part, attr, None) or [])
        return collected

    def _components(self) -> list:
        parts = [self.server]
        parts.extend(getattr(self.server, "engines", None) or [])
        for sub in ("prefill_engine", "decode_engine"):
            engine = getattr(self.server, sub, None)
            if engine is not None:
                parts.append(engine)
        return parts


@dataclass
class FleetResult(ServeResult):
    """Fleet-merged ``ServeResult`` plus the per-replica breakdown."""

    per_replica: list[ServeResult] = field(default_factory=list)


class FleetServer:
    """Shard one workload trace across replicas via a routing policy."""

    def __init__(
        self,
        replicas: Sequence,
        router: Router,
        name: str | None = None,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = [
            ReplicaHandle(i, server) for i, server in enumerate(replicas)
        ]
        self.router = router
        base = getattr(replicas[0], "name", type(replicas[0]).__name__)
        self.name = name or f"{base} x{len(replicas)} [{router.name}]"

    def run(self, requests: list[Request]) -> FleetResult:
        """Serve a trace across the fleet; returns the merged result."""
        sim = Simulator()
        for handle in self.replicas:
            handle.prepare(sim)
        for request in requests:
            sim.call_at(
                request.arrival_time,
                self._make_arrival(request, sim),
                label=f"arrival:{request.request_id}",
            )
        sim.run_until_idle()

        per_replica = [handle.result(sim.now) for handle in self.replicas]
        merged = merge_serve_results(per_replica, system=self.name)
        return FleetResult(
            system=merged.system,
            requests=merged.requests,
            scaling_events=merged.scaling_events,
            iteration_stats=merged.iteration_stats,
            makespan=merged.makespan,
            aborted=merged.aborted,
            cache_stats=merged.cache_stats,
            per_replica=per_replica,
        )

    def _make_arrival(self, request: Request, sim: Simulator):
        def _on_arrival() -> None:
            handle = self.router.route(request, self.replicas, sim.now)
            handle.submit(request)

        return _on_arrival
