"""The fleet's closed control loop.

LoongServe's thesis is that elasticity at serving time beats any static
partition (§4); PR 1–2's fleet tier was still the static antithesis —
a router placed each request once at arrival and replicas never
exchanged work, KV, or capacity afterwards.  This module closes the
loop: a :class:`FleetController` ticks periodically on the shared
simulation clock and evaluates a :class:`ClusterPolicy` over live
:class:`~repro.fleet.server.ReplicaHandle` state.  The policy bundles

* a **placement** component — one of the ``repro.fleet.router`` policies,
  now scoped to the replicas currently accepting work, and
* up to three **actuators** — replica autoscaling
  (:mod:`repro.fleet.autoscaler`), work stealing
  (:mod:`repro.fleet.stealing`), and cross-replica session-KV migration
  (:mod:`repro.fleet.migration`).

With no actuators armed the controller is never constructed and fleet
behaviour is bit-identical to route-once placement — the same gate
pattern as the prefix cache's ``enable_prefix_cache`` flag.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.fleet.router import Router
from repro.metrics.fleet import ElasticStats
from repro.sim.engine import Simulator
from repro.types import Request

# Control ticks per simulated second strike a balance between actuation
# latency (a steal can lag a burst by at most one interval) and event
# overhead; experiments expose it as --control-interval.
DEFAULT_CONTROL_INTERVAL = 0.5

# Ticks run after same-timestamp arrivals and server ticks, so the
# control plane always observes post-placement state.
_CONTROL_PRIORITY = 9


class ClusterPolicy:
    """Placement plus actuators: the whole cluster-management policy.

    Routers used to *be* the fleet policy; they are now its placement
    component, evaluated per arrival over the replicas currently
    accepting work.  The actuators are evaluated by the
    :class:`FleetController` on every control tick.
    """

    def __init__(
        self,
        router: Router,
        autoscaler=None,
        stealer=None,
        migrator=None,
    ) -> None:
        if router is None:
            raise ValueError("a ClusterPolicy needs a placement router")
        self.router = router
        self.autoscaler = autoscaler
        self.stealer = stealer
        self.migrator = migrator

    @property
    def has_actuators(self) -> bool:
        return any((self.autoscaler, self.stealer, self.migrator))

    def reset(self) -> None:
        """Clear any cross-run actuator state (hysteresis counters)."""
        for part in (self.router, self.autoscaler, self.stealer, self.migrator):
            reset = getattr(part, "reset", None)
            if callable(reset):
                reset()

    @property
    def name(self) -> str:
        parts = [self.router.name]
        if self.autoscaler is not None:
            parts.append("+autoscale")
        if self.stealer is not None:
            parts.append("+steal")
        if self.migrator is not None:
            parts.append("+migrate-kv")
        return "".join(parts)

    def place(self, request: Request, replicas: Sequence, now: float):
        """Route one arrival over the replicas accepting placements.

        Falls back to the full fleet if every replica is parked or
        draining (arrivals must land somewhere); passes the original
        sequence through untouched when everyone is available, so a
        policy with no actuators is indistinguishable from the bare
        router.
        """
        available = [r for r in replicas if r.available]
        if len(available) == len(replicas):
            pool: Sequence = replicas
        elif available:
            pool = available
        else:
            pool = list(replicas)
        return self.router.route(request, pool, now)


class FleetController:
    """Periodic evaluation of a policy's actuators on the shared clock.

    Each tick: refresh the replicas' cached probe structure, let the
    autoscaler adjust capacity (drain → park / unpark with the policy's
    hysteresis), execute the stealer's planned moves (migrating session
    KV alongside a steal when the migrator is armed), park any replica
    that finished draining (rescuing its hot cache extents first), and
    record the capacity timeline.  The loop re-arms only while work
    remains, so the simulation still drains to idle.
    """

    def __init__(
        self,
        policy: ClusterPolicy,
        replicas: Sequence,
        sim: Simulator,
        stats: ElasticStats,
        interval: float = DEFAULT_CONTROL_INTERVAL,
        work_remaining: Callable[[], bool] | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"control interval must be positive, got {interval}")
        self.policy = policy
        self.replicas = list(replicas)
        self.sim = sim
        self.stats = stats
        self.interval = interval
        self._work_remaining = work_remaining or (lambda: False)
        self._inflight_migrations = 0
        # Stolen requests currently riding behind a KV transfer, keyed by
        # destination replica id: the destination must not park (and wipe
        # the just-imported extent) while a delivery is still in flight.
        self._pending_deliveries: dict[int, int] = {}

    # -- loop ------------------------------------------------------------------

    def start(self) -> None:
        """Record the launch capacity and arm the first tick."""
        self.stats.record_capacity(self.sim.now, self._online_count())
        self._arm()

    def _arm(self) -> None:
        self.sim.call_after(
            self.interval, self._tick,
            priority=_CONTROL_PRIORITY, label="fleet-control-tick",
        )

    def _tick(self) -> None:
        self.stats.control_ticks += 1
        for handle in self.replicas:
            handle.refresh_probes()
        if self.policy.autoscaler is not None:
            self._autoscale()
        if self.policy.stealer is not None:
            self._steal()
        self._park_drained()
        self.stats.record_capacity(self.sim.now, self._online_count())
        if self._work_remaining() or self._inflight_migrations > 0:
            self._arm()

    def _online_count(self) -> int:
        return sum(1 for r in self.replicas if r.online)

    # -- actuators -------------------------------------------------------------

    def _autoscale(self) -> None:
        now = self.sim.now
        for action, handle in self.policy.autoscaler.decide(self.replicas, now):
            if action == "unpark":
                # Cancelling an in-progress drain brings no replica back
                # online (it never left), so the ledger logs it apart
                # from a true unpark — the rendered park/unpark counts
                # must reconcile with the capacity timeline.
                label = "undrain" if handle.online else "unpark"
                handle.unpark()
                self.stats.record_action(now, label, handle.replica_id)
            elif action == "drain":
                handle.drain()
                self.stats.record_action(now, "drain", handle.replica_id)

    def _park_drained(self) -> None:
        """Finish the scale-down of replicas whose work has drained."""
        now = self.sim.now
        for handle in self.replicas:
            if not (handle.online and handle.draining):
                continue
            if handle.outstanding_requests() > 0:
                continue
            if self._pending_deliveries.get(handle.replica_id, 0) > 0:
                continue  # a stolen request's KV is still in flight here
            if self.policy.migrator is not None:
                handoffs = self.policy.migrator.rescue_resident(
                    handle,
                    [r for r in self.replicas if r is not handle and r.available],
                    now,
                )
                for handoff in handoffs:
                    self._charge_migration(handoff)
            handle.clear_prefix_cache()
            handle.park()
            self.stats.record_action(now, "park", handle.replica_id)

    def _steal(self) -> None:
        now = self.sim.now
        moves = self.policy.stealer.plan(
            self.replicas, now, can_migrate=self.policy.migrator is not None
        )
        for move in moves:
            if not move.src.withdraw(move.request):
                continue  # started executing between plan and enact
            reprefill = move.reprefill_tokens
            delay = 0.0
            if self.policy.migrator is not None:
                handoff = self.policy.migrator.migrate_request_prefix(
                    move.request, move.src, move.dst, now
                )
                if handoff is not None:
                    delay = self._charge_migration(handoff)
                    reprefill = handoff.reprefill_tokens
            self.stats.stolen_requests += 1
            self.stats.steal_reprefill_tokens += reprefill
            if delay > 0.0:
                # The stolen request rides behind its KV transfer: it is
                # re-submitted only once the prefix extent has landed.
                self._inflight_migrations += 1
                key = move.dst.replica_id
                self._pending_deliveries[key] = (
                    self._pending_deliveries.get(key, 0) + 1
                )
                self.sim.call_after(
                    delay,
                    self._make_delivery(move.dst, move.request),
                    label=f"kv-migrate:{move.request.request_id}",
                )
            else:
                move.dst.accept_stolen(move.request)

    def _make_delivery(self, dst, request: Request):
        def _deliver() -> None:
            self._inflight_migrations -= 1
            self._pending_deliveries[dst.replica_id] -= 1
            dst.accept_stolen(request)

        return _deliver

    def _charge_migration(self, handoff) -> float:
        """Record one executed handoff; returns its modelled seconds."""
        cost = handoff.cost(*self.policy.migrator.pricing)
        self.stats.migrations += 1
        self.stats.migrated_kv_tokens += handoff.num_tokens
        self.stats.migration_seconds += cost
        return cost
