"""The fleet's closed control loop.

LoongServe's thesis is that elasticity at serving time beats any static
partition (§4); PR 1–2's fleet tier was still the static antithesis —
a router placed each request once at arrival and replicas never
exchanged work, KV, or capacity afterwards.  This module closes the
loop: a :class:`FleetController` ticks periodically on the shared
simulation clock and evaluates a :class:`ClusterPolicy` over live
:class:`~repro.fleet.server.ReplicaHandle` state.  The policy bundles

* a **placement** component — one of the ``repro.fleet.router`` policies,
  now scoped to the replicas currently accepting work, and
* up to three **actuators** — replica autoscaling
  (:mod:`repro.fleet.autoscaler`), work stealing
  (:mod:`repro.fleet.stealing`), and cross-replica session-KV migration
  (:mod:`repro.fleet.migration`).

With no actuators armed the controller is never constructed and fleet
behaviour is bit-identical to route-once placement — the same gate
pattern as the prefix cache's ``enable_prefix_cache`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.fleet.faults import ReplicaFault, reset_for_failover
from repro.fleet.router import Router
from repro.metrics.fleet import ElasticStats
from repro.sim.engine import Simulator
from repro.sim.events import Timer
from repro.types import Request

# Control ticks per simulated second strike a balance between actuation
# latency (a steal can lag a burst by at most one interval) and event
# overhead; experiments expose it as --control-interval.
DEFAULT_CONTROL_INTERVAL = 0.5

# Ticks run after same-timestamp arrivals and server ticks, so the
# control plane always observes post-placement state.
_CONTROL_PRIORITY = 9

# Faults (and recovery/warm-up completions) fire after server events at
# the same instant — requests finishing exactly at the crash survive —
# but before the control tick, which then observes post-crash state.
_FAULT_PRIORITY = 8


@dataclass
class _Delivery:
    """A stolen request riding behind its in-flight KV transfer."""

    request: Request
    src: object  # ReplicaHandle
    dst: object
    timer: Timer | None = None


class ClusterPolicy:
    """Placement plus actuators: the whole cluster-management policy.

    Routers used to *be* the fleet policy; they are now its placement
    component, evaluated per arrival over the replicas currently
    accepting work.  The actuators are evaluated by the
    :class:`FleetController` on every control tick.
    """

    def __init__(
        self,
        router: Router,
        autoscaler=None,
        stealer=None,
        migrator=None,
        injector=None,
        lifecycle=None,
    ) -> None:
        if router is None:
            raise ValueError("a ClusterPolicy needs a placement router")
        self.router = router
        self.autoscaler = autoscaler
        self.stealer = stealer
        self.migrator = migrator
        # Failure injection (repro.fleet.faults.FaultInjector) and the
        # warm-up/cool-down pricing replica lifecycle changes pay
        # (repro.costmodel.latency.ReplicaLifecycleModel, used by both
        # crash recovery and autoscaler unpark).
        self.injector = injector
        self.lifecycle = lifecycle
        # Armed by FleetServer.observe(): routing decisions are audited
        # (with per-replica probe scores) when a tracer is attached.
        self.tracer = None

    @property
    def has_actuators(self) -> bool:
        return any((self.autoscaler, self.stealer, self.migrator, self.injector))

    def reset(self) -> None:
        """Clear any cross-run actuator state (hysteresis counters, the
        injector's ledger)."""
        for part in (
            self.router, self.autoscaler, self.stealer, self.migrator,
            self.injector,
        ):
            reset = getattr(part, "reset", None)
            if callable(reset):
                reset()

    @property
    def name(self) -> str:
        parts = [self.router.name]
        if self.autoscaler is not None:
            parts.append("+autoscale")
        if self.stealer is not None:
            parts.append("+steal")
        if self.migrator is not None:
            parts.append("+migrate-kv")
        if self.injector is not None:
            parts.append("+faults")
        return "".join(parts)

    def place(self, request: Request, replicas: Sequence, now: float):
        """Route one arrival over the replicas accepting placements.

        Falls back to the replicas that could still serve (parked but
        healthy) if every replica is draining or offline — arrivals must
        land somewhere — but never onto a crashed or warming one; the
        controller's limbo queue catches the nothing-left case.  Passes
        the original sequence through untouched when everyone is
        available, so a policy with no actuators is indistinguishable
        from the bare router.
        """
        available = [r for r in replicas if r.available]
        if len(available) == len(replicas):
            pool: Sequence = replicas
        elif available:
            pool = available
        else:
            pool = [
                r for r in replicas if getattr(r, "placeable", True)
            ] or list(replicas)
        chosen = self.router.route(request, pool, now)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.audit(
                now, "route", component="router",
                replica=chosen.replica_id, request=request.request_id,
                router=self.router.name,
                scores=self.router.probe_scores(request, pool, now),
            )
        return chosen


class FleetController:
    """Periodic evaluation of a policy's actuators on the shared clock.

    Each tick: refresh the replicas' cached probe structure, let the
    autoscaler adjust capacity (drain → park / unpark with the policy's
    hysteresis), execute the stealer's planned moves (migrating session
    KV alongside a steal when the migrator is armed), park any replica
    that finished draining (rescuing its hot cache extents first), and
    record the capacity timeline.  The loop re-arms only while work
    remains, so the simulation still drains to idle.
    """

    def __init__(
        self,
        policy: ClusterPolicy,
        replicas: Sequence,
        sim: Simulator,
        stats: ElasticStats,
        interval: float = DEFAULT_CONTROL_INTERVAL,
        work_remaining: Callable[[], bool] | None = None,
        obs=None,
        disagg=None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"control interval must be positive, got {interval}")
        self.policy = policy
        self.replicas = list(replicas)
        self.sim = sim
        self.stats = stats
        self.interval = interval
        self._work_remaining = work_remaining or (lambda: False)
        # Disaggregated dispatch (repro.fleet.disagg), when armed: steals
        # must not cross the pool boundary, orphaned shadow clones take
        # the fallback path instead of failover, and limbo flushes ride
        # the two-stage dispatch rather than route-once placement.
        self.disagg = disagg
        # Observability: control-plane decisions are audited into
        # ``obs.tracer`` and telemetry samples ride the control ticks.
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        # Stolen requests currently riding behind a KV transfer: the
        # destination must not park (and wipe the just-imported extent)
        # while a delivery is still in flight, and a destination crash
        # must rescue the rider instead of delivering it to a corpse.
        self._deliveries: list[_Delivery] = []
        # Requests with nowhere to go (every replica crashed or warming)
        # wait here until a recovery or warm-up restores capacity.
        self._limbo: list[Request] = []
        self._fault_timers: list[Timer] = []
        self._lifecycle_timers: list[Timer] = []

    # -- loop ------------------------------------------------------------------

    def start(self) -> None:
        """Record the launch capacity, schedule the fault plan's crash
        events, and arm the first tick."""
        self.stats.record_capacity(self.sim.now, self._online_count())
        if self.policy.injector is not None:
            for fault in self.policy.injector.plan:
                timer = self.sim.call_at(
                    max(fault.time, self.sim.now),
                    (lambda f=fault: self._inject(f)),
                    priority=_FAULT_PRIORITY,
                    label=f"fault:{fault.replica_id}",
                )
                self._fault_timers.append(timer)
        self._arm()

    def _arm(self) -> None:
        self.sim.call_after(
            self.interval, self._tick,
            priority=_CONTROL_PRIORITY, label="fleet-control-tick",
        )

    def _tick(self) -> None:
        self.stats.control_ticks += 1
        for handle in self.replicas:
            handle.refresh_probes()
        self._flush_limbo()
        if self.policy.autoscaler is not None:
            self._autoscale()
        if self.policy.stealer is not None:
            self._steal()
        self._park_drained()
        self.stats.record_capacity(self.sim.now, self._online_count())
        if self.obs is not None:
            self.obs.sample_fleet(self.replicas, self.sim.now)
        if self._work_remaining() or self._deliveries or self._limbo:
            self._arm()
        else:
            self._cancel_outstanding_timers()

    def _cancel_outstanding_timers(self) -> None:
        """The fleet has drained: faults still pending would only crash
        idle replicas while stretching the makespan, and recoveries /
        warm-ups have nothing left to serve — cancel both so the
        simulation can go idle."""
        for timer in self._fault_timers + self._lifecycle_timers:
            if timer.active:
                timer.cancel()
        self._fault_timers = []
        self._lifecycle_timers = []

    def _online_count(self) -> int:
        return sum(1 for r in self.replicas if r.online)

    # -- actuators -------------------------------------------------------------

    def _audit(self, kind: str, *, replica: int = -1, **payload) -> None:
        """Record one control-plane decision (no-op without a tracer)."""
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.audit(
                self.sim.now, kind, component="control", replica=replica,
                **payload,
            )

    def _autoscale(self) -> None:
        now = self.sim.now
        tracing = self._tracer is not None and self._tracer.enabled
        for action, handle in self.policy.autoscaler.decide(self.replicas, now):
            if tracing:
                self._audit(
                    "autoscale", replica=handle.replica_id, action=action,
                    signals=dict(
                        getattr(self.policy.autoscaler, "last_signals", None)
                        or {}
                    ),
                )
            if action == "unpark":
                if handle.online:
                    # Cancelling an in-progress drain brings no replica
                    # back online (it never left), so the ledger logs it
                    # apart from a true unpark — the rendered counts must
                    # reconcile with the capacity timeline.  No warm-up
                    # either: the replica stayed hot.
                    handle.unpark()
                    self.stats.record_action(now, "undrain", handle.replica_id)
                else:
                    self._begin_warmup(handle, "unpark")
            elif action == "drain":
                handle.drain()
                self.stats.record_action(now, "drain", handle.replica_id)

    def _park_drained(self) -> None:
        """Finish the scale-down of replicas whose work has drained."""
        now = self.sim.now
        for handle in self.replicas:
            if not (handle.online and handle.draining):
                continue
            if handle.outstanding_requests() > 0:
                continue
            if any(d.dst is handle for d in self._deliveries):
                continue  # a stolen request's KV is still in flight here
            rescued = 0
            if self.policy.migrator is not None:
                handoffs = self.policy.migrator.rescue_resident(
                    handle,
                    [r for r in self.replicas if r is not handle and r.available],
                    now,
                )
                rescued = len(handoffs)
                for handoff in handoffs:
                    self._charge_migration(handoff)
            handle.clear_prefix_cache()
            handle.park()
            self._audit("park", replica=handle.replica_id, rescued=rescued)
            self.stats.record_action(now, "park", handle.replica_id)
            if self.policy.lifecycle is not None:
                # Cool-down is a capacity charge, not a latency one: the
                # replica-seconds bill grows, nothing waits on it.
                self.stats.cooldown_seconds += self.policy.lifecycle.cooldown_s

    def _steal(self) -> None:
        now = self.sim.now
        moves = self.policy.stealer.plan(
            self.replicas, now, can_migrate=self.policy.migrator is not None
        )
        for move in moves:
            if self.disagg is not None and not self.disagg.same_pool(
                move.src.replica_id, move.dst.replica_id
            ):
                continue  # stealing never crosses the prefill/decode split
            if not move.src.withdraw(move.request):
                continue  # started executing between plan and enact
            reprefill = move.reprefill_tokens
            delay = 0.0
            if self.policy.migrator is not None:
                handoff = self.policy.migrator.migrate_request_prefix(
                    move.request, move.src, move.dst, now
                )
                if handoff is not None:
                    delay = self._charge_migration(handoff)
                    reprefill = handoff.reprefill_tokens
            self.stats.stolen_requests += 1
            self.stats.steal_reprefill_tokens += reprefill
            tracer = self._tracer
            if tracer is not None and tracer.enabled:
                tracer.audit(
                    now, "steal", component="control",
                    replica=move.dst.replica_id, **move.audit_payload(),
                    reprefill=reprefill, delay=round(delay, 6),
                )
                if delay > 0.0:
                    # The request rides behind its KV transfer: a
                    # "migrating" span until the delivery lands.
                    tracer.transition(
                        move.request.request_id, "migrating", now,
                        replica=move.dst.replica_id,
                        src=move.src.replica_id,
                    )
            if delay > 0.0:
                # The stolen request rides behind its KV transfer: it is
                # re-submitted only once the prefix extent has landed.
                record = _Delivery(request=move.request, src=move.src,
                                   dst=move.dst, timer=None)
                record.timer = self.sim.call_after(
                    delay,
                    (lambda r=record: self._deliver(r)),
                    label=f"kv-migrate:{move.request.request_id}",
                )
                self._deliveries.append(record)
            else:
                move.dst.accept_stolen(move.request)

    def _deliver(self, record: _Delivery) -> None:
        self._deliveries.remove(record)
        record.dst.accept_stolen(record.request)

    # -- failure injection -----------------------------------------------------

    def _inject(self, fault: ReplicaFault) -> None:
        """One scheduled crash: kill, fail over, schedule the recovery."""
        now = self.sim.now
        injector = self.policy.injector
        handle = (
            self.replicas[fault.replica_id]
            if fault.replica_id < len(self.replicas)
            else None
        )
        if handle is None or not handle.online:
            # Parked, warming, already crashed, or out of range: nothing
            # left to kill (the fleet absorbed this fault).
            injector.note_skipped(fault)
            self._audit(
                "crash_skipped", replica=fault.replica_id,
                downtime_s=fault.downtime_s,
            )
            self.stats.record_action(now, "crash-skipped", fault.replica_id)
            return
        orphans, lost_tokens = handle.crash()
        self._audit(
            "crash", replica=handle.replica_id, downtime_s=fault.downtime_s,
            orphans=len(orphans), lost_kv_tokens=lost_tokens,
        )
        injector.note_injected(fault)
        self.stats.crashes += 1
        self.stats.lost_kv_tokens += lost_tokens
        self.stats.record_action(now, "crash", handle.replica_id)
        self.stats.note_outage_start(now, handle.replica_id)
        self.stats.record_capacity(now, self._online_count())
        orphans.extend(self._reclaim_deliveries(handle))
        self._failover(orphans, now)
        timer = self.sim.call_after(
            fault.downtime_s,
            (lambda h=handle: self._begin_warmup(h, "recover")),
            priority=_FAULT_PRIORITY,
            label=f"recover:{handle.replica_id}",
        )
        self._lifecycle_timers.append(timer)

    def _reclaim_deliveries(self, dead) -> list[Request]:
        """Rescue stolen requests whose KV was in flight toward a dead
        destination.  The imported extent died with the replica, but the
        source kept its copy (exports are copies), so failover through
        an affinity router can land the rider back on warm KV.  A dead
        *source* needs nothing: its export already completed."""
        rescued: list[Request] = []
        for record in [d for d in self._deliveries if d.dst is dead]:
            record.timer.cancel()
            self._deliveries.remove(record)
            self.stats.rescued_inflight += 1
            rescued.append(record.request)
        return rescued

    def _can_place(self) -> bool:
        """Whether ``policy.place`` has any real candidate: an available
        replica, or the placeable (parked-but-healthy) fallback pool."""
        return any(getattr(r, "placeable", True) for r in self.replicas)

    def _failover(self, orphans: list[Request], now: float) -> None:
        """Re-dispatch a dead replica's orphans through the placement
        router, charging the full re-prefill their lost KV forces.
        Orphans take the same placement path arrivals do (including the
        parked-but-healthy fallback); limbo is only for the
        nothing-left case."""
        tracer = self._tracer
        tracing = tracer is not None and tracer.enabled
        if self.disagg is not None:
            from repro.fleet.disagg import CLONE_ID_OFFSET

            clones = [r for r in orphans if r.request_id >= CLONE_ID_OFFSET]
            orphans = [r for r in orphans if r.request_id < CLONE_ID_OFFSET]
            for clone in clones:
                # The prefill-stage clone died with its replica: fire the
                # handoff hook in its aborted state so the original falls
                # back to a direct decode-pool submission (audited there
                # as disagg_fallback).
                self.disagg.clone_failover(clone, now)
        for request in orphans:
            self.stats.failovers += 1
            reprefill = reset_for_failover(request)
            self.stats.failover_reprefill_tokens += reprefill
            if tracing:
                # The failover span bridges the crash and the re-dispatch
                # landing; replica -1 = the fleet control plane.
                tracer.transition(
                    request.request_id, "failover", now, replica=-1
                )
            if self._can_place():
                if self.disagg is not None:
                    target = self.disagg.failover_target(request, now)
                else:
                    target = self.policy.place(request, self.replicas, now)
                if tracing:
                    self._audit(
                        "failover", replica=target.replica_id,
                        request=request.request_id, reprefill=reprefill,
                    )
                target.submit(request)
            else:
                if tracing:
                    self._audit(
                        "failover", request=request.request_id,
                        reprefill=reprefill, limbo=True,
                    )
                self._limbo.append(request)

    def try_hold_arrival(self, request: Request) -> bool:
        """Park an arrival in limbo when nothing could serve it.

        True only when every replica is crashed or warming — the one
        situation where the pre-fault fallback (submit to a parked-but-
        healthy replica) has no candidate.  The next recovery, warm-up,
        or control tick re-places held requests.
        """
        if self._can_place():
            return False
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            # Limbo wait is observable: the arrival queues on the control
            # plane (replica -1) until a recovery restores capacity —
            # without this span the request's story would have a hole
            # between arrival and its eventual placement.
            tracer.transition(
                request.request_id, "queued", self.sim.now,
                replica=-1, limbo=True,
            )
        self._limbo.append(request)
        return True

    def _flush_limbo(self) -> None:
        """Re-place held requests once somebody accepts work again."""
        if not self._limbo or not self._can_place():
            return
        held, self._limbo = self._limbo, []
        now = self.sim.now
        for request in held:
            if self.disagg is not None and request.prefill_start is None:
                # A never-started arrival re-enters the two-stage path;
                # failover orphans (whose clone stage already ran) go
                # straight back to the decode pool.
                self.disagg.dispatch(request)
            elif self.disagg is not None:
                self.disagg.failover_target(request, now).submit(request)
            else:
                self.policy.place(request, self.replicas, now).submit(request)

    # -- replica lifecycle -----------------------------------------------------

    def _begin_warmup(self, handle, action: str) -> None:
        """Bring a parked or recovering replica back, paying warm-up.

        Without a lifecycle model the transition is instant — exactly
        the pre-warm-up behaviour, which keeps bare policies
        bit-identical.
        """
        now = self.sim.now
        self.stats.record_action(now, action, handle.replica_id)
        lifecycle = self.policy.lifecycle
        warmup = lifecycle.warmup_s if lifecycle is not None else 0.0
        standby = getattr(handle, "standby", False)
        if standby and action == "unpark":
            # Warm standby: the parked replica kept its weights resident,
            # so promotion is instant.  Crash recovery still pays — the
            # process died, resident or not.
            warmup = 0.0
            self._audit("standby_promote", replica=handle.replica_id)
        self._audit(
            "warmup", replica=handle.replica_id, action=action,
            warmup_s=warmup, standby=standby,
        )
        if warmup <= 0.0:
            self._complete_warmup(handle)
            return
        handle.begin_warmup()
        self.stats.warmup_seconds += warmup
        timer = self.sim.call_after(
            warmup,
            (lambda h=handle: self._complete_warmup(h)),
            priority=_FAULT_PRIORITY,
            label=f"warmup:{handle.replica_id}",
        )
        self._lifecycle_timers.append(timer)

    def _complete_warmup(self, handle) -> None:
        handle.complete_warmup()
        now = self.sim.now
        self._audit("online", replica=handle.replica_id)
        self.stats.record_action(now, "online", handle.replica_id)
        self.stats.note_outage_end(now, handle.replica_id)  # no-op for unparks
        self.stats.record_capacity(now, self._online_count())
        self._flush_limbo()

    def _charge_migration(self, handoff) -> float:
        """Record one executed handoff; returns its modelled seconds."""
        cost = handoff.cost(*self.policy.migrator.pricing)
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.audit(
                self.sim.now, "migrate_kv", component="control",
                replica=handoff.dst_replica, request=handoff.request_id,
                src=handoff.src_replica, tokens=handoff.num_tokens,
                cost_s=round(cost, 6),
            )
        self.stats.migrations += 1
        self.stats.migrated_kv_tokens += handoff.num_tokens
        self.stats.migration_seconds += cost
        return cost
