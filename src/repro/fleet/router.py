"""Request-routing policies for a replica fleet.

A router sees every arriving request at its arrival instant and picks
the replica that serves it; replicas never exchange requests afterwards
(no work stealing), so placement quality decides fleet behaviour.  Four
policies cover the design space explored by cluster-serving work:

* **round-robin** — stateless cycling; the baseline every load balancer
  implements first.
* **least-outstanding** — classic least-outstanding-requests balancing
  on live replica state.
* **least-kv** — memory-aware placement: route to the replica whose KV
  pool has the most free token slots (read from each replica's
  ``UnifiedKVPool.free_map()`` or engine pools), breaking ties by
  outstanding requests.  Long-context serving is KV-bound, so free KV is
  a better congestion signal than request counts.
* **length-aware** — shard long-context requests away from
  short-request replicas, the long/short interference split of the
  paper's Figure 11 scenario: one long prefill stalls every short
  request batched behind it, so isolating the populations protects the
  short requests' latency.

Routers duck-type against :class:`repro.fleet.server.ReplicaHandle`
(``outstanding_requests`` / ``outstanding_tokens`` / ``kv_free``), so
they are unit-testable with stub replicas.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.types import Request
from repro.workloads.datasets import LONG_INPUT_THRESHOLD

__all__ = [
    "LONG_INPUT_THRESHOLD",
    "ROUTERS",
    "LeastKVRouter",
    "LeastOutstandingRouter",
    "LengthAwareRouter",
    "RoundRobinRouter",
    "Router",
    "make_router",
]


class Router(abc.ABC):
    """Chooses the replica that serves one arriving request."""

    name = "router"

    @abc.abstractmethod
    def route(self, request: Request, replicas: Sequence, now: float):
        """Return the chosen replica handle (never None; fleet size >= 1)."""


class RoundRobinRouter(Router):
    """Cycle through replicas in arrival order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, request: Request, replicas: Sequence, now: float):
        chosen = replicas[self._next % len(replicas)]
        self._next += 1
        return chosen


class LeastOutstandingRouter(Router):
    """Route to the replica with the fewest unfinished requests."""

    name = "least-outstanding"

    def route(self, request: Request, replicas: Sequence, now: float):
        return min(
            replicas,
            key=lambda r: (r.outstanding_requests(), r.replica_id),
        )


class LeastKVRouter(Router):
    """Route to the replica with the most free KV slots.

    Reads each replica's live pool occupancy; ties (e.g. an idle fleet)
    fall back to outstanding requests, then replica id, so the policy
    stays deterministic.
    """

    name = "least-kv"

    def route(self, request: Request, replicas: Sequence, now: float):
        return min(
            replicas,
            key=lambda r: (-r.kv_free(), r.outstanding_requests(), r.replica_id),
        )


class LengthAwareRouter(Router):
    """Partition the fleet into long-context and short-request pools.

    The first ``ceil(long_fraction * N)`` replicas serve requests whose
    input length is at least ``long_threshold`` tokens; the remainder
    serve the short population.  Within a pool, placement is
    least-outstanding-tokens, the strongest simple balancer.  With a
    single replica the split degenerates to plain least-work routing.
    """

    name = "length-aware"

    def __init__(
        self,
        long_threshold: int = LONG_INPUT_THRESHOLD,
        long_fraction: float = 0.5,
    ) -> None:
        if not 0.0 < long_fraction < 1.0:
            raise ValueError(f"long_fraction must be in (0, 1), got {long_fraction}")
        self.long_threshold = long_threshold
        self.long_fraction = long_fraction

    def route(self, request: Request, replicas: Sequence, now: float):
        pool = list(replicas)
        if len(pool) > 1:
            boundary = max(1, min(len(pool) - 1, round(len(pool) * self.long_fraction)))
            if request.input_len >= self.long_threshold:
                pool = pool[:boundary]
            else:
                pool = pool[boundary:]
        return min(
            pool,
            key=lambda r: (r.outstanding_tokens(), r.replica_id),
        )


ROUTERS = {
    "round-robin": RoundRobinRouter,
    "least-outstanding": LeastOutstandingRouter,
    "least-kv": LeastKVRouter,
    "length-aware": LengthAwareRouter,
}


def make_router(name: str, **kwargs) -> Router:
    """Build a routing policy by name (see :data:`ROUTERS`)."""
    try:
        factory = ROUTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; choose from {sorted(ROUTERS)}"
        ) from None
    return factory(**kwargs)
