"""Request-routing policies for a replica fleet.

A router sees every arriving request at its arrival instant and picks
the replica that serves it.  Routers are the *placement* component of a
:class:`~repro.fleet.control.ClusterPolicy`: on a static fleet they are
the whole policy (requests never move after placement), while the
control-loop actuators — work stealing, autoscaling, KV migration —
correct placement afterwards when armed.  Five policies cover the
design space explored by cluster-serving work:

* **round-robin** — stateless cycling; the baseline every load balancer
  implements first.
* **least-outstanding** — classic least-outstanding-requests balancing
  on live replica state.
* **least-kv** — memory-aware placement: route to the replica whose KV
  pool has the most free token slots (read from each replica's
  ``UnifiedKVPool.free_map()`` or engine pools), breaking ties by
  outstanding requests.  Long-context serving is KV-bound, so free KV is
  a better congestion signal than request counts.
* **length-aware** — shard long-context requests away from
  short-request replicas, the long/short interference split of the
  paper's Figure 11 scenario: one long prefill stalls every short
  request batched behind it, so isolating the populations protects the
  short requests' latency.
* **affinity** — cache-affinity placement for multi-turn sessions: send
  each request to the replica whose prefix-KV cache holds the longest
  matching prefix of its prompt (probed live via
  ``ReplicaHandle.prefix_match_len``), so follow-up turns land where
  their conversation's KV already lives.  Requests with no match
  anywhere (session openers, single-turn traffic) fall back to
  least-kv placement.
* **slo** — deadline-aware placement for QoS serving (``repro.qos``):
  predict each candidate replica's queueing delay from its live token
  backlog (netting out any resident prefix of this request) and the
  deployment's modelled prefill service rate, and place the request on
  the replica leaving it the most slack against its class deadline.

Routers duck-type against :class:`repro.fleet.server.ReplicaHandle`
(``outstanding_requests`` / ``outstanding_tokens`` / ``kv_free`` /
``prefix_match_len``), so they are unit-testable with stub replicas.

All tie-breaks end on the replica id, so every policy is deterministic:
equal-state replicas always resolve to the lowest id.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.types import Request
from repro.workloads.datasets import LONG_INPUT_THRESHOLD

__all__ = [
    "LONG_INPUT_THRESHOLD",
    "ROUTERS",
    "CacheAffinityRouter",
    "LeastKVRouter",
    "LeastOutstandingRouter",
    "LengthAwareRouter",
    "RoundRobinRouter",
    "Router",
    "SLORouter",
    "make_router",
]


class Router(abc.ABC):
    """Chooses the replica that serves one arriving request."""

    name = "router"

    @abc.abstractmethod
    def route(self, request: Request, replicas: Sequence, now: float):
        """Return the chosen replica handle (never None; fleet size >= 1)."""

    def probe_scores(
        self, request: Request, replicas: Sequence, now: float
    ) -> list[dict]:
        """Per-replica probe snapshot justifying a routing choice.

        The control-plane audit log attaches this to each ``route``
        record; subclasses extend the base signals with whatever their
        policy actually ranked on (prefix match length, predicted
        slack).  Only called when a tracer is armed — never on the
        routing hot path itself.
        """
        return [
            {
                "replica": r.replica_id,
                "outstanding": r.outstanding_requests(),
                "kv_free": r.kv_free(),
            }
            for r in replicas
        ]


class RoundRobinRouter(Router):
    """Cycle through replicas in arrival order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        """Restart the cycle (fresh fleet run) so reruns are clean."""
        self._next = 0

    def route(self, request: Request, replicas: Sequence, now: float):
        chosen = replicas[self._next % len(replicas)]
        self._next += 1
        return chosen


class LeastOutstandingRouter(Router):
    """Route to the replica with the fewest unfinished requests."""

    name = "least-outstanding"

    def route(self, request: Request, replicas: Sequence, now: float):
        return min(
            replicas,
            key=lambda r: (r.outstanding_requests(), r.replica_id),
        )


class LeastKVRouter(Router):
    """Route to the replica with the most free KV slots.

    Reads each replica's live pool occupancy; ties (e.g. an idle fleet)
    fall back to outstanding requests, then replica id, so the policy
    stays deterministic.
    """

    name = "least-kv"

    def route(self, request: Request, replicas: Sequence, now: float):
        return min(
            replicas,
            key=lambda r: (-r.kv_free(), r.outstanding_requests(), r.replica_id),
        )


class LengthAwareRouter(Router):
    """Partition the fleet into long-context and short-request pools.

    The first ``ceil(long_fraction * N)`` replicas serve requests whose
    input length is at least ``long_threshold`` tokens; the remainder
    serve the short population.  Within a pool, placement is
    least-outstanding-tokens, the strongest simple balancer.  With a
    single replica the split degenerates to plain least-work routing.
    """

    name = "length-aware"

    def __init__(
        self,
        long_threshold: int = LONG_INPUT_THRESHOLD,
        long_fraction: float = 0.5,
    ) -> None:
        if not 0.0 < long_fraction < 1.0:
            raise ValueError(f"long_fraction must be in (0, 1), got {long_fraction}")
        self.long_threshold = long_threshold
        self.long_fraction = long_fraction

    def route(self, request: Request, replicas: Sequence, now: float):
        pool = list(replicas)
        if len(pool) > 1:
            boundary = max(1, min(len(pool) - 1, round(len(pool) * self.long_fraction)))
            if request.input_len >= self.long_threshold:
                pool = pool[:boundary]
            else:
                pool = pool[boundary:]
        return min(
            pool,
            key=lambda r: (r.outstanding_tokens(), r.replica_id),
        )


class CacheAffinityRouter(Router):
    """Route follow-up turns to the replica holding their KV prefix.

    The router probes every replica's prefix cache for the longest
    resident prefix of the request's prompt and places the request
    there; the memory saved (and prefill skipped) scales with the match
    length, so the longest match wins outright.  With no match anywhere
    — session openers, or plain single-turn traffic — the choice falls
    back to least-kv order (most free slots, then fewest outstanding
    requests, then lowest replica id), which both balances load and
    spreads new sessions across the fleet.
    """

    name = "affinity"

    def route(self, request: Request, replicas: Sequence, now: float):
        return min(
            replicas,
            key=lambda r: (
                -self._match_len(r, request),
                -r.kv_free(),
                r.outstanding_requests(),
                r.replica_id,
            ),
        )

    @staticmethod
    def _match_len(replica, request: Request) -> int:
        probe = getattr(replica, "prefix_match_len", None)
        return probe(request) if callable(probe) else 0

    def probe_scores(
        self, request: Request, replicas: Sequence, now: float
    ) -> list[dict]:
        scores = super().probe_scores(request, replicas, now)
        for score, replica in zip(scores, replicas):
            score["match"] = self._match_len(replica, request)
        return scores


class SLORouter(Router):
    """Place each request on the replica with the best predicted slack.

    For every candidate replica the router estimates this request's
    time-to-first-token there: the replica's outstanding token backlog
    plus the request's own *uncached* prompt (a resident prefix match is
    work the replica skips), divided by the deployment's prefill service
    rate.  Slack is the request's class deadline minus arrival-to-now
    wait, predicted queueing, and its no-load ideal latency; the maximum
    wins.  Ties fall back to free KV, then outstanding requests, then
    the replica id, so placement stays deterministic.

    Built with an :class:`~repro.metrics.slo.IdealLatencyModel` and a
    token rate (``repro.experiments.systems.make_fleet`` wires both from
    the replicas' cost model); without them the router degrades to the
    pure work-minimising order — the slack *ranking* over replicas is
    unchanged, only the absolute seconds are unavailable.
    """

    name = "slo"

    def __init__(
        self,
        ideal=None,
        token_rate: float | None = None,
        default_scale: float | None = None,
    ) -> None:
        from repro.metrics.slo import DEFAULT_SLO_SCALE, CachedIdealLatency

        self.ideal = ideal
        self.token_rate = token_rate
        self.default_scale = (
            DEFAULT_SLO_SCALE if default_scale is None else default_scale
        )
        self._cached_ideal = (
            CachedIdealLatency(ideal) if ideal is not None else None
        )

    def route(self, request: Request, replicas: Sequence, now: float):
        deadline = self._deadline(request)
        return min(
            replicas,
            key=lambda r: (
                -self._slack(request, r, now, deadline),
                -r.kv_free(),
                r.outstanding_requests(),
                r.replica_id,
            ),
        )

    def predicted_slack(self, request: Request, replica, now: float) -> float:
        """Seconds to spare if placed on ``replica`` (public probe)."""
        return self._slack(request, replica, now, self._deadline(request))

    def probe_scores(
        self, request: Request, replicas: Sequence, now: float
    ) -> list[dict]:
        scores = super().probe_scores(request, replicas, now)
        deadline = self._deadline(request)
        for score, replica in zip(scores, replicas):
            score["slack"] = round(
                self._slack(request, replica, now, deadline), 4
            )
        return scores

    def _slack(
        self, request: Request, replica, now: float, deadline: float
    ) -> float:
        backlog = replica.outstanding_tokens()
        match = getattr(replica, "prefix_match_len", None)
        resident = match(request) if callable(match) else 0
        work = backlog + max(0, request.input_len - resident)
        rate = self.token_rate if self.token_rate else 1.0
        return deadline - now - work / rate - self._ideal_latency(request)

    def _deadline(self, request: Request) -> float:
        from repro.qos.classes import resolve_qos_class

        scale = (
            resolve_qos_class(request.qos).deadline_scale
            if request.qos is not None
            else self.default_scale
        )
        return request.arrival_time + scale * self._ideal_latency(request)

    def _ideal_latency(self, request: Request) -> float:
        if self._cached_ideal is None:
            return 0.0
        return self._cached_ideal(request)


ROUTERS = {
    "round-robin": RoundRobinRouter,
    "least-outstanding": LeastOutstandingRouter,
    "least-kv": LeastKVRouter,
    "length-aware": LengthAwareRouter,
    "affinity": CacheAffinityRouter,
    "slo": SLORouter,
}


def make_router(name: str, **kwargs) -> Router:
    """Build a routing policy by name (see :data:`ROUTERS`)."""
    try:
        factory = ROUTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; choose from {sorted(ROUTERS)}"
        ) from None
    return factory(**kwargs)
