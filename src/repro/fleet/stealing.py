"""Work stealing between fleet replicas.

Route-once placement cannot undo a bad bet: a burst of long-context
requests behind one replica queues there even while a neighbour sits
idle.  The stealer is the control plane's corrective actuator — each
control tick it plans moves of *still-queued* requests (never started,
no resident KV) from the deepest queue to the shallowest, until the
depth gap closes or the per-tick budget runs out.

Steals honour prefix affinity: a queued request whose prompt has a long
resident prefix on its current replica would forfeit that cache hit by
moving, so such moves are skipped unless the KV migrator travels with
the control plane (``can_migrate``) — in which case the prefix extent
is shipped alongside the request and the steal keeps its hit.  Either
way the *re-prefill cost* (source-match tokens the destination cannot
serve from cache) is charged to the steal in the fleet metrics, so
experiments see what rebalancing actually cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.types import Request


@dataclass(frozen=True)
class StealConfig:
    """Knobs of :class:`WorkStealer`.

    ``min_queue_gap`` — minimum depth difference (requests) between the
    deepest and shallowest queue before any move is planned; keeps the
    stealer quiet on balanced fleets.
    ``max_moves_per_tick`` — per-tick budget, bounding control work.
    ``affinity_guard_tokens`` — a request whose source-side prefix match
    exceeds the destination's by more than this stays put unless the
    migrator can ship the extent along.
    """

    min_queue_gap: int = 2
    max_moves_per_tick: int = 4
    affinity_guard_tokens: int = 256

    def __post_init__(self) -> None:
        if self.min_queue_gap < 1:
            raise ValueError("min_queue_gap must be >= 1")
        if self.max_moves_per_tick < 1:
            raise ValueError("max_moves_per_tick must be >= 1")
        if self.affinity_guard_tokens < 0:
            raise ValueError("affinity_guard_tokens must be >= 0")


@dataclass(frozen=True)
class StealMove:
    """One planned relocation of a queued request."""

    request: Request
    src: object  # ReplicaHandle (duck-typed)
    dst: object
    src_match: int
    dst_match: int

    @property
    def reprefill_tokens(self) -> int:
        """Prefix tokens the destination must re-prefill (pre-migration)."""
        return max(0, self.src_match - self.dst_match)

    def audit_payload(self) -> dict:
        """Structured fields for the control-plane audit log."""
        return {
            "request": self.request.request_id,
            "src": self.src.replica_id,
            "dst": self.dst.replica_id,
            "src_match": self.src_match,
            "dst_match": self.dst_match,
        }


class WorkStealer:
    """Plan queue rebalancing moves from overloaded to idle replicas."""

    name = "queue-gap"

    def __init__(self, config: StealConfig | None = None) -> None:
        self.config = config or StealConfig()

    def plan(
        self, replicas: Sequence, now: float, can_migrate: bool = False
    ) -> list[StealMove]:
        """Moves for one control tick; deterministic given replica state.

        Victims come from the *tail* of the deepest queue (latest
        arrivals — the requests that would wait longest anyway, and the
        smallest FCFS disruption on the source).
        """
        config = self.config
        available = [r for r in replicas if r.available]
        if len(available) < 2:
            return []
        queues = {r.replica_id: r.queued_requests() for r in available}
        moves: list[StealMove] = []
        while len(moves) < config.max_moves_per_tick:
            src = max(
                available, key=lambda r: (len(queues[r.replica_id]), -r.replica_id)
            )
            dst = min(
                available, key=lambda r: (len(queues[r.replica_id]), r.replica_id)
            )
            gap = len(queues[src.replica_id]) - len(queues[dst.replica_id])
            if src is dst or gap < config.min_queue_gap:
                break
            move = self._pick_victim(queues[src.replica_id], src, dst, can_migrate)
            if move is None:
                break  # every queued request is pinned by affinity
            queues[src.replica_id].remove(move.request)
            queues[dst.replica_id].append(move.request)
            moves.append(move)
        return moves

    def _pick_victim(
        self, queue: list[Request], src, dst, can_migrate: bool
    ) -> StealMove | None:
        for request in reversed(queue):
            src_match = src.prefix_match_len(request)
            dst_match = dst.prefix_match_len(request)
            orphaned = src_match - dst_match
            if orphaned > self.config.affinity_guard_tokens and not can_migrate:
                continue  # stealing would orphan a hot session prefix
            return StealMove(
                request=request,
                src=src,
                dst=dst,
                src_match=src_match,
                dst_match=dst_match,
            )
        return None
