"""Cross-replica session-KV migration for the fleet control plane.

Affinity routing keeps a conversation on the replica holding its KV —
until a rebalance (steal) or a scale-in (drain/park) moves the session
away from its cache.  The migrator closes that gap: it ships resident
prefix extents between replicas' :class:`PrefixKVCache`\\ s so rebalanced
sessions keep their cache hits.

Two flows exist:

* **steal-coupled** (:meth:`KVMigrator.migrate_request_prefix`) — when
  the stealer relocates a queued request whose prompt has a long
  resident prefix on the source, the matched extent is exported,
  imported on the destination, and the request is re-submitted only
  after the transfer's modelled wall-clock cost has elapsed.
* **drain rescue** (:meth:`KVMigrator.rescue_resident`) — before a
  drained replica parks, its resident sequences (most recent first, up
  to a token budget) are re-homed onto the surviving replica with the
  most free KV, so parking a replica does not cold-start every session
  it hosted.

Transfers are priced with :class:`PrefixHandoff` over the cluster's
inter-node fabric (``costmodel.comm.cross_replica_migration_time``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.comm import CollectiveModel
from repro.kvcache.migration import PrefixHandoff
from repro.model.spec import ModelSpec


@dataclass(frozen=True)
class MigrationConfig:
    """Knobs of :class:`KVMigrator`.

    ``min_tokens`` — extents smaller than this are not worth a transfer
    (the destination just re-prefills them).
    ``drain_budget_tokens`` — cap on rescue traffic when parking a
    replica; the coldest sequences beyond it are simply dropped.
    """

    min_tokens: int = 64
    drain_budget_tokens: int = 200_000

    def __post_init__(self) -> None:
        if self.min_tokens < 1:
            raise ValueError("min_tokens must be >= 1")
        if self.drain_budget_tokens < 0:
            raise ValueError("drain_budget_tokens must be >= 0")


class KVMigrator:
    """Move cached prefix extents between replicas' prefix-KV caches."""

    name = "prefix-kv"

    def __init__(
        self,
        collectives: CollectiveModel,
        model: ModelSpec,
        tensor_parallel: int,
        config: MigrationConfig | None = None,
    ) -> None:
        self.collectives = collectives
        self.model = model
        self.tensor_parallel = tensor_parallel
        self.config = config or MigrationConfig()

    @property
    def pricing(self) -> tuple[CollectiveModel, ModelSpec, int]:
        """Arguments :meth:`PrefixHandoff.cost` prices a transfer with."""
        return (self.collectives, self.model, self.tensor_parallel)

    # -- steal-coupled migration ----------------------------------------------

    def migrate_request_prefix(
        self, request, src, dst, now: float
    ) -> PrefixHandoff | None:
        """Ship the prefix a stolen request would orphan on ``src``.

        Returns the executed handoff (destination cache updated), or
        None when the move is not worth a transfer — no caches, too few
        orphaned tokens, or no destination pool space.
        """
        if not (src.has_prefix_cache and dst.has_prefix_cache):
            return None
        src_match = src.prefix_match_len(request)
        dst_match = dst.prefix_match_len(request)
        if src_match - dst_match < self.config.min_tokens:
            return None
        tokens = src.export_prefix(request)
        imported = dst.import_prefix(tokens, now)
        if imported == 0:
            return None
        src.note_prefix_export(imported)
        remaining = max(0, src_match - dst.prefix_match_len(request))
        return PrefixHandoff(
            request_id=request.request_id,
            src_replica=src.replica_id,
            dst_replica=dst.replica_id,
            num_tokens=imported,
            reprefill_tokens=remaining,
        )

    # -- drain rescue ----------------------------------------------------------

    def rescue_resident(
        self, src, peers, now: float
    ) -> list[PrefixHandoff]:
        """Re-home a parking replica's hot extents onto surviving peers.

        Sequences transfer most-recently-used first until the drain
        budget is spent; each goes to the peer with the most free KV at
        that moment (ties to the lowest replica id).  Returns the
        executed handoffs; the caller clears the source cache afterwards.
        """
        if not src.has_prefix_cache:
            return []
        targets = [p for p in peers if p.has_prefix_cache]
        if not targets:
            return []
        budget = self.config.drain_budget_tokens
        handoffs: list[PrefixHandoff] = []
        for _, tokens in src.resident_prefix_sequences():
            if budget <= 0:
                break
            if len(tokens) < self.config.min_tokens:
                continue
            dst = min(targets, key=lambda p: (-p.kv_free(), p.replica_id))
            imported = dst.import_prefix(tuple(tokens[: budget]), now)
            if imported == 0:
                continue
            src.note_prefix_export(imported)
            budget -= imported
            handoffs.append(
                PrefixHandoff(
                    request_id=-1,  # extent rescue, not tied to one request
                    src_replica=src.replica_id,
                    dst_replica=dst.replica_id,
                    num_tokens=imported,
                )
            )
        return handoffs
