"""Replica autoscaling on queue depth and KV pressure.

The autoscaler is the capacity actuator of the fleet control plane: it
watches the fleet's queued work and KV occupancy each control tick and
parks replicas the load does not need (scale-in) or returns parked ones
to rotation when pressure builds (scale-out).  Scale-in is graceful —
a victim first *drains* (no new placements, resident work finishes, its
hot session KV is rescued by the migrator if one is armed) and only
then parks.

Both directions are guarded by hysteresis: a signal must persist for
``hysteresis_ticks`` consecutive control ticks before any action fires,
so a single bursty tick cannot flap capacity.  The asymmetric default
thresholds (scale out at 3 queued per replica, in below 0.5) widen the
dead band the same way production autoscalers do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class AutoscalerConfig:
    """Hysteresis thresholds of :class:`QueueDepthAutoscaler`.

    ``high_queue_depth``/``low_queue_depth`` are mean queued requests
    per accepting replica; ``high_kv_fraction``/``low_kv_fraction`` are
    mean used fractions of the replicas' KV pools.  Scale-out triggers
    when *either* high watermark holds, scale-in only when *both* low
    watermarks hold — memory pressure without queueing still needs
    capacity (long-context serving is KV-bound).
    """

    high_queue_depth: float = 3.0
    low_queue_depth: float = 0.5
    high_kv_fraction: float = 0.85
    low_kv_fraction: float = 0.55
    hysteresis_ticks: int = 2
    min_online: int = 1

    def __post_init__(self) -> None:
        if self.low_queue_depth > self.high_queue_depth:
            raise ValueError("low_queue_depth must not exceed high_queue_depth")
        if self.low_kv_fraction > self.high_kv_fraction:
            raise ValueError("low_kv_fraction must not exceed high_kv_fraction")
        if self.hysteresis_ticks < 1:
            raise ValueError("hysteresis_ticks must be >= 1")
        if self.min_online < 1:
            raise ValueError("min_online must be >= 1")


class QueueDepthAutoscaler:
    """Park/unpark replicas on queue-depth + KV-pressure hysteresis."""

    name = "queue-depth"

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self._hot_ticks = 0
        self._cold_ticks = 0

    def reset(self) -> None:
        """Clear hysteresis state (fresh fleet run)."""
        self._hot_ticks = 0
        self._cold_ticks = 0

    def decide(self, replicas: Sequence, now: float) -> list[tuple[str, object]]:
        """One control tick's capacity actions: (``"unpark" | "drain"``,
        replica handle) pairs, at most one action per tick (capacity
        moves one replica at a time, the standard anti-flap rule).

        Warm-up awareness: a replica loading weights (``warming``) is
        capacity already in flight, so while one exists scale-in is
        suppressed and the cold counter resets — otherwise a warm-up
        longer than the control interval would be flap-parked the moment
        it comes online (the cold streak having accumulated the whole
        time it warmed).
        """
        config = self.config
        online = [r for r in replicas if r.online]
        accepting = [r for r in online if not r.draining]
        warming = any(getattr(r, "warming", False) for r in replicas)
        if not accepting:  # everything draining/parked: force capacity back
            target = self._unpark_target(replicas)
            return [("unpark", target)] if target is not None else []

        queued = sum(len(r.queued_requests()) for r in online)
        depth = queued / len(accepting)
        kv = sum(r.kv_used_fraction() for r in accepting) / len(accepting)

        overloaded = depth >= config.high_queue_depth or kv >= config.high_kv_fraction
        underloaded = depth <= config.low_queue_depth and kv <= config.low_kv_fraction
        self._hot_ticks = self._hot_ticks + 1 if overloaded else 0
        self._cold_ticks = self._cold_ticks + 1 if underloaded and not warming else 0

        if self._hot_ticks >= config.hysteresis_ticks:
            target = self._unpark_target(replicas)
            if target is not None:
                self._hot_ticks = 0
                return [("unpark", target)]
        elif (
            self._cold_ticks >= config.hysteresis_ticks
            and len(accepting) > config.min_online
        ):
            victim = min(
                accepting,
                key=lambda r: (r.outstanding_tokens(), -r.replica_id),
            )
            self._cold_ticks = 0
            return [("drain", victim)]
        return []

    @staticmethod
    def _unpark_target(replicas: Sequence):
        """Cheapest capacity first: cancel a drain (the replica is still
        warm and running), else wake the lowest-id parked replica.

        Warming replicas are already on their way (double-unparking one
        would double-book capacity) and crashed ones cannot be woken (a
        recovery replaces them on its own schedule) — both are skipped.
        """
        for handle in replicas:
            if handle.online and handle.draining:
                return handle
        for handle in replicas:
            if (
                not handle.online
                and not getattr(handle, "warming", False)
                and not getattr(handle, "crashed", False)
            ):
                return handle
        return None
