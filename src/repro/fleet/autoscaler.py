"""Replica autoscaling: reactive hysteresis and predictive forecasting.

The autoscaler is the capacity actuator of the fleet control plane: it
watches the fleet each control tick and parks replicas the load does
not need (scale-in) or returns parked ones to rotation when pressure
builds (scale-out).  Scale-in is graceful — a victim first *drains* (no
new placements, resident work finishes, its hot session KV is rescued
by the migrator if one is armed) and only then parks.

Two policies share the actuation surface:

* :class:`QueueDepthAutoscaler` — **reactive**: queue-depth and
  KV-pressure watermarks with hysteresis (a signal must persist for
  ``hysteresis_ticks`` consecutive ticks, so a single bursty tick
  cannot flap capacity).  It only moves after queues have already
  built.
* :class:`PredictiveAutoscaler` — **forecast-driven** (the SLO-aware
  scale-out the PR 3 roadmap opened): estimate the arrival rate in
  tokens/s (EWMA over the routed ledger), divide by the cost-model
  service rate of one replica, and provision for the *forecast*
  utilisation target — capacity moves when the trend says attainment
  will degrade, before the queue exists.  Warm-up latency is exactly
  why acting early matters: a replica unparked reactively arrives one
  warm-up too late for the burst that summoned it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class AutoscalerConfig:
    """Hysteresis thresholds of :class:`QueueDepthAutoscaler`.

    ``high_queue_depth``/``low_queue_depth`` are mean queued requests
    per accepting replica; ``high_kv_fraction``/``low_kv_fraction`` are
    mean used fractions of the replicas' KV pools.  Scale-out triggers
    when *either* high watermark holds, scale-in only when *both* low
    watermarks hold — memory pressure without queueing still needs
    capacity (long-context serving is KV-bound).
    """

    high_queue_depth: float = 3.0
    low_queue_depth: float = 0.5
    high_kv_fraction: float = 0.85
    low_kv_fraction: float = 0.55
    hysteresis_ticks: int = 2
    min_online: int = 1

    def __post_init__(self) -> None:
        if self.low_queue_depth > self.high_queue_depth:
            raise ValueError("low_queue_depth must not exceed high_queue_depth")
        if self.low_kv_fraction > self.high_kv_fraction:
            raise ValueError("low_kv_fraction must not exceed high_kv_fraction")
        if self.hysteresis_ticks < 1:
            raise ValueError("hysteresis_ticks must be >= 1")
        if self.min_online < 1:
            raise ValueError("min_online must be >= 1")


class QueueDepthAutoscaler:
    """Park/unpark replicas on queue-depth + KV-pressure hysteresis."""

    name = "queue-depth"

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self._hot_ticks = 0
        self._cold_ticks = 0
        # Pressure signals behind the most recent decision, for the
        # control-plane audit log.
        self.last_signals: dict[str, float] = {}

    def reset(self) -> None:
        """Clear hysteresis state (fresh fleet run)."""
        self._hot_ticks = 0
        self._cold_ticks = 0
        self.last_signals = {}

    def decide(self, replicas: Sequence, now: float) -> list[tuple[str, object]]:
        """One control tick's capacity actions: (``"unpark" | "drain"``,
        replica handle) pairs, at most one action per tick (capacity
        moves one replica at a time, the standard anti-flap rule).

        Warm-up awareness: a replica loading weights (``warming``) is
        capacity already in flight, so while one exists scale-in is
        suppressed and the cold counter resets — otherwise a warm-up
        longer than the control interval would be flap-parked the moment
        it comes online (the cold streak having accumulated the whole
        time it warmed).
        """
        config = self.config
        online = [r for r in replicas if r.online]
        accepting = [r for r in online if not r.draining]
        warming = any(getattr(r, "warming", False) for r in replicas)
        if not accepting:  # everything draining/parked: force capacity back
            target = self._unpark_target(replicas)
            return [("unpark", target)] if target is not None else []

        queued = sum(len(r.queued_requests()) for r in online)
        depth = queued / len(accepting)
        kv = sum(r.kv_used_fraction() for r in accepting) / len(accepting)

        overloaded = depth >= config.high_queue_depth or kv >= config.high_kv_fraction
        underloaded = depth <= config.low_queue_depth and kv <= config.low_kv_fraction
        self._hot_ticks = self._hot_ticks + 1 if overloaded else 0
        self._cold_ticks = self._cold_ticks + 1 if underloaded and not warming else 0
        self.last_signals = {
            "depth": round(depth, 4),
            "kv": round(kv, 4),
            "hot_ticks": self._hot_ticks,
            "cold_ticks": self._cold_ticks,
        }

        if self._hot_ticks >= config.hysteresis_ticks:
            target = self._unpark_target(replicas)
            if target is not None:
                self._hot_ticks = 0
                return [("unpark", target)]
        elif (
            self._cold_ticks >= config.hysteresis_ticks
            and len(accepting) > config.min_online
        ):
            victim = min(
                accepting,
                key=lambda r: (r.outstanding_tokens(), -r.replica_id),
            )
            self._cold_ticks = 0
            return [("drain", victim)]
        return []

    @staticmethod
    def _unpark_target(replicas: Sequence):
        return unpark_target(replicas)


def unpark_target(replicas: Sequence):
    """Cheapest capacity first: cancel a drain (the replica is still
    warm and running), else wake the lowest-id parked replica.

    Warming replicas are already on their way (double-unparking one
    would double-book capacity) and crashed ones cannot be woken (a
    recovery replaces them on its own schedule) — both are skipped.
    Shared by both autoscaling policies.
    """
    for handle in replicas:
        if handle.online and handle.draining:
            return handle
    for handle in replicas:
        if (
            not handle.online
            and not getattr(handle, "warming", False)
            and not getattr(handle, "crashed", False)
        ):
            return handle
    return None


@dataclass(frozen=True)
class PredictiveConfig:
    """Knobs of :class:`PredictiveAutoscaler`.

    ``target_utilization`` — the forecast load factor capacity is
    provisioned for (replicas needed = forecast token rate / replica
    service rate / target); keeping it below 1 leaves queueing headroom,
    which is what converts "keeping up" into "meeting deadlines".
    ``low_utilization`` — forecast utilisation of the *current* fleet
    below which scale-in becomes eligible.
    ``ewma_alpha`` — weight of the newest inter-tick rate observation.
    ``scale_in_ticks`` — consecutive low-forecast ticks before a drain
    (scale-out needs none: acting early is the policy's whole point).
    """

    target_utilization: float = 0.70
    low_utilization: float = 0.40
    ewma_alpha: float = 0.5
    scale_in_ticks: int = 3
    min_online: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        if not 0.0 <= self.low_utilization < self.target_utilization:
            raise ValueError(
                "low_utilization must be in [0, target_utilization)"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.scale_in_ticks < 1:
            raise ValueError("scale_in_ticks must be >= 1")
        if self.min_online < 1:
            raise ValueError("min_online must be >= 1")


class PredictiveAutoscaler:
    """Provision capacity for the forecast arrival rate, not the queue.

    Each tick the scaler reads the fleet's cumulative arrived token work
    (input + declared output of every routed request), differentiates it
    into an instantaneous rate, smooths with an EWMA, and converts the
    forecast into a replica count via the cost-model service rate
    (``token_rate``, prefill tokens/s one replica sustains — see
    :func:`repro.qos.admission.prefill_token_rate`).  Scale-out fires
    the moment the desired count exceeds the accepting count; scale-in
    waits for ``scale_in_ticks`` of agreement, because parking early is
    cheap to regret but expensive to undo (warm-up).
    """

    name = "predictive"

    def __init__(
        self, token_rate: float, config: PredictiveConfig | None = None
    ) -> None:
        if token_rate <= 0:
            raise ValueError(f"token_rate must be positive, got {token_rate}")
        self.token_rate = token_rate
        self.config = config or PredictiveConfig()
        self.reset()

    def reset(self) -> None:
        """Clear the rate estimate (fresh fleet run)."""
        self._last_time: float | None = None
        self._last_tokens = 0
        self._rate_ewma: float | None = None
        self._low_ticks = 0
        # Forecast signals behind the most recent decision, for the
        # control-plane audit log.
        self.last_signals: dict[str, float] = {}

    @staticmethod
    def _arrived_tokens(replicas: Sequence) -> int:
        """Cumulative token work routed fleet-wide (the arrival signal).

        Prefers the handles' O(1) ``routed_tokens`` counter (stable
        across crashes, where the routed *list* shrinks); stub replicas
        without one fall back to summing the list.
        """
        total = 0
        for handle in replicas:
            counter = getattr(handle, "routed_tokens", None)
            if counter is not None:
                total += counter
            else:
                total += sum(
                    r.input_len + r.output_len for r in handle.routed
                )
        return total

    def forecast_rate(self) -> float:
        """Current smoothed arrival estimate (tokens/s)."""
        return self._rate_ewma or 0.0

    def decide(self, replicas: Sequence, now: float) -> list[tuple[str, object]]:
        config = self.config
        online = [r for r in replicas if r.online]
        accepting = [r for r in online if not r.draining]
        if not accepting:  # everything draining/parked: force capacity back
            target = unpark_target(replicas)
            return [("unpark", target)] if target is not None else []

        tokens = self._arrived_tokens(replicas)
        if self._last_time is None or now <= self._last_time:
            self._last_time = now
            self._last_tokens = tokens
            return []  # first observation: no rate yet
        instantaneous = (tokens - self._last_tokens) / (now - self._last_time)
        self._last_time = now
        self._last_tokens = tokens
        if self._rate_ewma is None:
            self._rate_ewma = instantaneous
        else:
            self._rate_ewma = (
                config.ewma_alpha * instantaneous
                + (1.0 - config.ewma_alpha) * self._rate_ewma
            )

        demand = self._rate_ewma / self.token_rate  # replicas at 100% load
        desired = max(
            config.min_online,
            min(len(replicas), math.ceil(demand / config.target_utilization)),
        )
        # Warming replicas are capacity already in flight: they count
        # toward the provision (no double-unpark) and suppress scale-in
        # (no flap-park the moment they come online).
        warming = sum(1 for r in replicas if getattr(r, "warming", False))
        utilization = demand / len(accepting)
        self.last_signals = {
            "rate": round(self._rate_ewma, 2),
            "demand": round(demand, 4),
            "desired": desired,
            "accepting": len(accepting),
            "utilization": round(utilization, 4),
        }
        if desired > len(accepting) + warming:
            self._low_ticks = 0
            target = unpark_target(replicas)
            if target is not None:
                return [("unpark", target)]
            return []
        underloaded = (
            desired < len(accepting)
            and utilization <= config.low_utilization
            and warming == 0
        )
        self._low_ticks = self._low_ticks + 1 if underloaded else 0
        if (
            self._low_ticks >= config.scale_in_ticks
            and len(accepting) > config.min_online
        ):
            victim = min(
                accepting,
                key=lambda r: (r.outstanding_tokens(), -r.replica_id),
            )
            self._low_ticks = 0
            return [("drain", victim)]
        return []
