"""Disaggregated prefill/decode dispatch for the fleet.

Monolithic replicas interleave prefill and decode on the same hardware,
so a long prompt's prefill stalls every co-resident decode iteration.
The disaggregated layout (DistServe/Splitwise at fleet scale) splits the
replicas into two pools instead: arrivals **prefill** on one pool, then
their KV is handed to a **decode** pool over the priced inter-replica
fabric, and only the decode pool runs token generation.  Decode latency
is thereby isolated from prompt bursts at the cost of one KV transfer
per request.

``DisaggDispatcher`` implements the two-stage path on top of the
existing replica machinery, with no new server shape:

1. The arrival is routed over the prefill pool and a **prefill clone**
   (same prompt, ``output_len=1``) runs there for real — queueing,
   batching, and KV allocation included — via
   :meth:`ReplicaHandle.submit_shadow`, so the clone loads the probe
   surface without appearing in the fleet result.
2. When the clone finishes, its KV has just been donated to the prefill
   replica's prefix cache (``adopt_finished`` runs before the terminal
   hook).  The dispatcher exports that prefix, imports it into the
   routed decode replica's cache, and prices the transfer with
   :class:`~repro.kvcache.migration.PrefixHandoff` over the fabric.
3. After the modelled transfer delay, the *original* request is
   submitted to the decode replica.  Its prefill matches the imported
   prefix (capped at ``input_len - 1``), so the decode side recomputes
   exactly one prompt token — the KV-append that produces the first
   output token — and then decodes normally.

If the clone aborts (e.g. the prompt cannot fit the prefill replica's
pool) the dispatcher falls back to submitting the original directly to
the decode pool, which prefills from scratch — degraded, never lost.

Faults and work stealing compose with the two-stage path (they were
gated off in the first cut):

* a prefill-pool crash orphans the shadow clone; the dispatcher fires
  its handoff hook in the aborted state, so the original takes the
  direct-decode fallback (full re-prefill on the decode side);
* a decode-pool crash while the original rides the fabric wipes the
  just-imported prefix; delivery re-routes over the surviving decode
  pool and prefills from scratch;
* the work stealer never relocates clones (their KV must finish where
  the export will read it) and never moves requests across the pool
  boundary — the controller filters cross-pool moves.

Token-less requests are given synthetic prompt token ids at dispatch so
the prefix-cache handoff has a key; the ids are unique per request and
never collide with workload vocabularies.
"""

from __future__ import annotations

from typing import Sequence

from repro.fleet.router import Router, make_router
from repro.kvcache.migration import PrefixHandoff
from repro.obs.tracer import SHADOW_REQUEST_OFFSET
from repro.types import Request

# Clone ids live far above any workload request id so per-replica
# bookkeeping (pools, locks, spans) never collides with the original.
# Aliases the obs-layer shadow offset so every request-facing view
# (histograms, blame, explain) agrees on what is internal machinery.
CLONE_ID_OFFSET = SHADOW_REQUEST_OFFSET
# Synthetic prompt tokens for token-less requests: unique per (request,
# position), disjoint from real session vocabularies (which are small).
_SYNTH_TOKEN_BASE = 1 << 60


def _synthetic_tokens(request: Request) -> tuple[int, ...]:
    base = _SYNTH_TOKEN_BASE + (request.request_id << 22)
    return tuple(base + i for i in range(request.input_len))


class DisaggDispatcher:
    """Two-stage (prefill pool → fabric → decode pool) arrival dispatch.

    ``num_prefill`` leading replicas form the prefill pool, the rest the
    decode pool (standby decode replicas stay parked until an autoscaler
    promotes them).  ``pricing`` is the ``(collectives, model,
    tensor_parallel)`` triple :meth:`PrefixHandoff.cost` prices the
    KV transfer with — the same shape ``KVMigrator.pricing`` exposes.
    """

    def __init__(
        self,
        num_prefill: int,
        pricing: tuple,
        prefill_router: Router | str = "least-outstanding",
        decode_router: Router | str = "least-kv",
    ) -> None:
        if num_prefill < 1:
            raise ValueError("disaggregation needs at least 1 prefill replica")
        self.num_prefill = num_prefill
        self.pricing = pricing
        self.prefill_router = (
            prefill_router
            if isinstance(prefill_router, Router)
            else make_router(prefill_router)
        )
        self.decode_router = (
            decode_router
            if isinstance(decode_router, Router)
            else make_router(decode_router)
        )
        self.sim = None
        self.prefill_pool: Sequence = ()
        self.decode_pool: Sequence = ()
        self.elastic = None
        self._tracer = None
        # Requests between arrival and decode-side submission: the gap
        # where neither pool's outstanding count covers them (the clone
        # finished, the original is still riding the fabric), read by
        # ``FleetServer._work_remaining`` so control loops keep ticking.
        self.inflight = 0

    @property
    def name(self) -> str:
        return (
            f"disagg[{self.num_prefill}p:{self.prefill_router.name}"
            f"/{self.decode_router.name}]"
        )

    def reset(self, sim, replicas: Sequence, elastic, obs=None) -> None:
        """Arm the dispatcher for one fleet run (called by ``_serve``)."""
        if self.num_prefill >= len(replicas):
            raise ValueError(
                f"num_prefill={self.num_prefill} leaves no decode replicas "
                f"(fleet has {len(replicas)})"
            )
        self.sim = sim
        self.prefill_pool = replicas[: self.num_prefill]
        self.decode_pool = replicas[self.num_prefill :]
        self.elastic = elastic
        self._tracer = obs.tracer if obs is not None else None
        self.inflight = 0
        for handle in self.prefill_pool:
            if not getattr(handle.server, "prefix_cache", None):
                raise ValueError(
                    "disaggregated dispatch requires prefix_cache on every "
                    f"replica (replica {handle.replica_id} has none)"
                )

    # -- the two-stage path ----------------------------------------------------

    def dispatch(self, request: Request) -> None:
        """Stage 1: run the arrival's prefill as a clone on the prefill
        pool; the handoff chains off the clone's completion hook."""
        now = self.sim.now
        self.inflight += 1
        if request.token_ids is None:
            request.token_ids = _synthetic_tokens(request)
        src = self._pick(self.prefill_router, request, self.prefill_pool, now)
        if not getattr(src, "placeable", True):
            # The whole prefill pool is down (crashed/warming): a shadow
            # clone would sit in a dead queue.  Skip the two-stage path
            # and let the decode side prefill from scratch.
            dst = self.failover_target(request, now)
            self._audit(
                now, "disagg_fallback",
                replica=dst.replica_id, request=request.request_id,
            )
            self._deliver(request, dst)
            return
        clone = Request(
            request_id=request.request_id + CLONE_ID_OFFSET,
            input_len=request.input_len,
            output_len=1,
            arrival_time=now,
            token_ids=request.token_ids,
        )
        clone.on_finish = lambda finish_time: self._handoff(
            request, clone, src, finish_time
        )
        src.submit_shadow(clone)
        self._audit(
            now, "disagg_prefill",
            replica=src.replica_id, request=request.request_id,
            tokens=request.input_len,
        )
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            # The original request's first span: it has no server-side
            # story until the decode submission, so the dispatcher owns
            # the arrival → handoff window (the clone's spans live under
            # its offset id and never merge with the original's).
            tracer.transition(
                request.request_id, "disagg_handoff", now,
                replica=src.replica_id, stage="prefill",
            )

    def _handoff(self, request: Request, clone: Request, src, now: float) -> None:
        """Stage 2: ship the prefilled KV to a decode replica, then
        submit the original there after the fabric delay."""
        dst = self._pick(self.decode_router, request, self.decode_pool, now)
        if clone.generated == 0:
            # The clone aborted (prompt did not fit the prefill replica):
            # nothing to ship, the decode replica prefills from scratch.
            self._audit(
                now, "disagg_fallback",
                replica=dst.replica_id, request=request.request_id,
            )
            self._deliver(request, dst)
            return
        tokens = src.export_prefix(request)
        imported = dst.import_prefix(tokens, now) if tokens else 0
        delay = 0.0
        if imported > 0:
            src.note_prefix_export(imported)
            handoff = PrefixHandoff(
                request_id=request.request_id,
                src_replica=src.replica_id,
                dst_replica=dst.replica_id,
                num_tokens=imported,
                reprefill_tokens=max(0, request.input_len - 1 - imported),
            )
            delay = handoff.cost(*self.pricing)
            elastic = self.elastic
            if elastic is not None:
                elastic.disagg_handoffs += 1
                elastic.disagg_handoff_tokens += imported
                elastic.disagg_handoff_seconds += delay
                elastic.disagg_reprefill_tokens += handoff.reprefill_tokens
        self._audit(
            now, "disagg_handoff",
            replica=dst.replica_id, request=request.request_id,
            src=src.replica_id, tokens=imported, seconds=round(delay, 6),
        )
        tracer = self._tracer
        if tracer is not None and tracer.enabled and delay > 0.0:
            tracer.transition(
                request.request_id, "disagg_handoff", now,
                replica=dst.replica_id, stage="transfer",
                src=src.replica_id, tokens=imported,
            )
        if delay > 0.0:
            self.sim.call_after(
                delay,
                (lambda: self._deliver(request, dst)),
                label=f"disagg-handoff:{request.request_id}",
            )
        else:
            self._deliver(request, dst)

    def _deliver(self, request: Request, dst) -> None:
        if not getattr(dst, "placeable", True):
            # The decode replica crashed (or is still warming) while the
            # original rode the fabric; the imported prefix died in the
            # wipe.  Re-route over whatever decode capacity survives —
            # the replacement prefills from scratch.
            dst = self.failover_target(request, self.sim.now)
        dst.submit(request)
        self.inflight -= 1

    # -- fault composition -----------------------------------------------------

    def clone_failover(self, clone: Request, now: float) -> None:
        """A prefill-pool crash orphaned the shadow clone mid-prefill.

        The prefilled KV died with the replica, so fire the pending
        handoff hook in the clone's aborted state (``generated == 0``):
        the original takes the direct-decode fallback and prefills from
        scratch on the decode pool — degraded, never lost.
        """
        hook, clone.on_finish = clone.on_finish, None
        if hook is not None:
            hook(now)

    def failover_target(self, request: Request, now: float):
        """Placement for a decode-side request orphaned by a crash.

        Stays inside the decode pool while any of it can still serve
        (the prefill pool never runs decodes); pool purity yields to
        liveness only when the whole decode pool is down.
        """
        if any(getattr(r, "placeable", True) for r in self.decode_pool):
            return self._pick(self.decode_router, request, self.decode_pool, now)
        fleet = list(self.prefill_pool) + list(self.decode_pool)
        candidates = [
            r for r in fleet if getattr(r, "placeable", True)
        ] or list(self.decode_pool)
        return self.decode_router.route(request, candidates, now)

    def same_pool(self, replica_a: int, replica_b: int) -> bool:
        """Whether two replica ids sit on the same side of the
        prefill/decode split (replicas ``[0, num_prefill)`` prefill)."""
        return (replica_a < self.num_prefill) == (replica_b < self.num_prefill)

    # -- helpers ---------------------------------------------------------------

    def _pick(self, router: Router, request: Request, pool: Sequence, now: float):
        """Route over one pool with the same liveness fallback chain
        :meth:`ClusterPolicy.place` uses for the whole fleet."""
        available = [r for r in pool if r.available]
        if len(available) == len(pool):
            candidates: Sequence = pool
        elif available:
            candidates = available
        else:
            candidates = [
                r for r in pool if getattr(r, "placeable", True)
            ] or list(pool)
        return router.route(request, candidates, now)

    def _audit(self, now: float, kind: str, **payload) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.audit(now, kind, component="disagg", **payload)
