"""Fleet-scale serving: many replicas behind a request router.

The single-deployment systems under ``repro.baselines`` / ``repro.core``
serve one cluster; a production fleet runs N of them behind a router
that shards the arriving trace.  ``FleetServer`` hosts any mix of
replica systems on one shared virtual clock, and ``Router`` policies
decide placement per arriving request.
"""

from repro.fleet.router import (
    LONG_INPUT_THRESHOLD,
    ROUTERS,
    CacheAffinityRouter,
    LeastKVRouter,
    LeastOutstandingRouter,
    LengthAwareRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.fleet.server import FleetResult, FleetServer, ReplicaHandle

__all__ = [
    "LONG_INPUT_THRESHOLD",
    "ROUTERS",
    "CacheAffinityRouter",
    "FleetResult",
    "FleetServer",
    "LeastKVRouter",
    "LeastOutstandingRouter",
    "LengthAwareRouter",
    "ReplicaHandle",
    "RoundRobinRouter",
    "Router",
    "make_router",
]
