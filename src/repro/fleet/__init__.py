"""Fleet-scale serving: many replicas behind a closed-loop control plane.

The single-deployment systems under ``repro.baselines`` / ``repro.core``
serve one cluster; a production fleet runs N of them behind a front-end.
``FleetServer`` hosts any mix of replica systems on one shared virtual
clock.  Placement per arriving request is one of the ``Router``
policies; a :class:`ClusterPolicy` optionally adds the control-loop
actuators — replica autoscaling (:class:`QueueDepthAutoscaler`), work
stealing (:class:`WorkStealer`), and cross-replica session-KV migration
(:class:`KVMigrator`) — which the :class:`FleetController` evaluates on
periodic control ticks.  :class:`FaultInjector` adds failure injection:
scripted or stochastic replica crashes with KV loss, failover through
the placement router, and warm-up-priced recovery.
"""

from repro.fleet.autoscaler import (
    AutoscalerConfig,
    PredictiveAutoscaler,
    PredictiveConfig,
    QueueDepthAutoscaler,
    unpark_target,
)
from repro.fleet.control import (
    DEFAULT_CONTROL_INTERVAL,
    ClusterPolicy,
    FleetController,
)
from repro.fleet.disagg import CLONE_ID_OFFSET, DisaggDispatcher
from repro.fleet.faults import (
    DEFAULT_DOWNTIME_S,
    FaultInjector,
    FaultPlan,
    ReplicaFault,
    reset_for_failover,
)
from repro.fleet.migration import KVMigrator, MigrationConfig
from repro.fleet.router import (
    LONG_INPUT_THRESHOLD,
    ROUTERS,
    CacheAffinityRouter,
    LeastKVRouter,
    LeastOutstandingRouter,
    LengthAwareRouter,
    RoundRobinRouter,
    Router,
    SLORouter,
    make_router,
)
from repro.fleet.server import FleetResult, FleetServer, ReplicaHandle
from repro.fleet.stealing import StealConfig, StealMove, WorkStealer

__all__ = [
    "DEFAULT_CONTROL_INTERVAL",
    "DEFAULT_DOWNTIME_S",
    "LONG_INPUT_THRESHOLD",
    "ROUTERS",
    "AutoscalerConfig",
    "CLONE_ID_OFFSET",
    "CacheAffinityRouter",
    "ClusterPolicy",
    "DisaggDispatcher",
    "FaultInjector",
    "FaultPlan",
    "FleetController",
    "FleetResult",
    "FleetServer",
    "KVMigrator",
    "ReplicaFault",
    "LeastKVRouter",
    "LeastOutstandingRouter",
    "LengthAwareRouter",
    "MigrationConfig",
    "PredictiveAutoscaler",
    "PredictiveConfig",
    "QueueDepthAutoscaler",
    "ReplicaHandle",
    "RoundRobinRouter",
    "Router",
    "SLORouter",
    "StealConfig",
    "StealMove",
    "WorkStealer",
    "make_router",
    "reset_for_failover",
    "unpark_target",
]
