"""Instance-occupancy timelines rendered as text.

``occupancy_timeline`` turns a run's iteration stats into a per-DoP
Gantt strip — the visual counterpart of Figure 6's request lifecycle:
you can see prefills grab wide groups, shrink to narrow decode groups,
and decode batches widen again on scale-up.

Legend: ``P`` = prefill iteration running, ``d`` = decode iteration,
``.`` = idle.  One row per concurrency slot, one column per time bucket;
a column shows as many ``P``/``d`` marks as instances were busy in that
bucket (weighted by each iteration's DoP).
"""

from __future__ import annotations

from repro.types import BatchStats, Phase, ServeResult


def _bucket_loads(
    stats: list[BatchStats], horizon: float, columns: int
) -> tuple[list[float], list[float]]:
    """Average instances busy per bucket, split by phase."""
    width = horizon / columns
    prefill = [0.0] * columns
    decode = [0.0] * columns
    for stat in stats:
        start = stat.start_time
        end = stat.start_time + stat.duration
        first = min(columns - 1, int(start / width))
        last = min(columns - 1, int(end / width)) if end > start else first
        for column in range(first, last + 1):
            lo = max(start, column * width)
            hi = min(end, (column + 1) * width)
            overlap = max(0.0, hi - lo) / width
            if stat.phase == Phase.PREFILL:
                prefill[column] += stat.dop * overlap
            else:
                decode[column] += stat.dop * overlap
    return prefill, decode


def occupancy_timeline(
    result: ServeResult,
    num_instances: int,
    columns: int = 72,
) -> str:
    """Render the run as a stacked text Gantt (one row per instance slot)."""
    if not result.iteration_stats:
        return "(no iterations recorded)"
    horizon = result.makespan or max(
        s.start_time + s.duration for s in result.iteration_stats
    )
    if horizon <= 0:
        return "(empty timeline)"
    prefill, decode = _bucket_loads(result.iteration_stats, horizon, columns)

    rows = []
    for level in range(num_instances, 0, -1):
        cells = []
        for column in range(columns):
            p, d = prefill[column], decode[column]
            if p >= level - 0.5:
                cells.append("P")
            elif p + d >= level - 0.5:
                cells.append("d")
            else:
                cells.append(".")
        rows.append(f"inst {level:>2d} |" + "".join(cells) + "|")
    axis = f"        0s{' ' * (columns - 12)}{horizon:7.1f}s"
    legend = "        P = prefill   d = decode   . = idle"
    return "\n".join(rows + [axis, legend])


def utilization_summary(result: ServeResult, num_instances: int) -> dict[str, float]:
    """Fraction of instance-time spent in each phase over the makespan."""
    horizon = result.makespan
    if horizon <= 0:
        return {"prefill": 0.0, "decode": 0.0, "idle": 1.0}
    total = horizon * num_instances
    prefill_time = sum(
        s.duration * s.dop
        for s in result.iteration_stats
        if s.phase == Phase.PREFILL
    )
    decode_time = sum(
        s.duration * s.dop
        for s in result.iteration_stats
        if s.phase == Phase.DECODE
    )
    prefill_frac = min(1.0, prefill_time / total)
    decode_frac = min(1.0 - prefill_frac, decode_time / total)
    return {
        "prefill": prefill_frac,
        "decode": decode_frac,
        "idle": max(0.0, 1.0 - prefill_frac - decode_frac),
    }
