"""Text-mode visualisation of serving runs."""

from repro.viz.timeline import occupancy_timeline, utilization_summary

__all__ = ["occupancy_timeline", "utilization_summary"]
