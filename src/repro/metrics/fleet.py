"""Fleet-aggregated metrics: merged results and load-imbalance stats.

A fleet run produces one ``ServeResult`` per replica; the paper's
latency/SLO metrics apply to the *union* of requests, so
``merge_serve_results`` folds the per-replica results into one (global
makespan = the latest replica finish).  ``fleet_load_report`` keeps the
per-replica view: how evenly the router spread requests, tokens, and
busy time — the quantities that explain *why* one routing policy beats
another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.types import ServeResult


def merge_serve_results(
    per_replica: Sequence[ServeResult],
    system: str = "fleet",
) -> ServeResult:
    """Fold per-replica results into one fleet-wide ``ServeResult``.

    Requests, aborts, scaling events, and iteration stats concatenate;
    the fleet makespan is the maximum replica makespan (replicas on a
    shared clock all report it; independently-run replicas report their
    own, and the fleet is done only when the last one is).
    """
    if not per_replica:
        raise ValueError("need at least one replica result")
    stats = [s for result in per_replica for s in result.iteration_stats]
    return ServeResult(
        system=system,
        requests=[r for result in per_replica for r in result.requests],
        scaling_events=[e for result in per_replica for e in result.scaling_events],
        iteration_stats=sorted(stats, key=lambda s: s.start_time),
        makespan=max(result.makespan for result in per_replica),
        aborted=[r for result in per_replica for r in result.aborted],
        cache_stats=merge_cache_stats(per_replica),
    )


def merge_cache_stats(per_replica: Sequence[ServeResult]) -> dict[str, float] | None:
    """Sum per-replica prefix-cache counters (None when no replica has a
    cache — the counters are plain sums, so fleet totals stay exact)."""
    with_stats = [r.cache_stats for r in per_replica if r.cache_stats is not None]
    if not with_stats:
        return None
    merged: dict[str, float] = {}
    for stats in with_stats:
        for key, value in stats.items():
            merged[key] = merged.get(key, 0) + value
    return merged


@dataclass(frozen=True)
class ReplicaLoad:
    """Work one replica received and performed during a fleet run."""

    replica_id: int
    system: str
    routed: int
    finished: int
    aborted: int
    input_tokens: int
    output_tokens: int
    busy_seconds: float
    # Prefix-cache counters (0 on replicas serving without a cache).
    prefix_hit_tokens: int = 0
    prefix_miss_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefill tokens served from this replica's cache."""
        total = self.prefix_hit_tokens + self.prefix_miss_tokens
        return self.prefix_hit_tokens / total if total else 0.0


@dataclass(frozen=True)
class FleetLoadReport:
    """Per-replica load breakdown plus fleet imbalance statistics."""

    replicas: tuple[ReplicaLoad, ...]

    @property
    def token_imbalance(self) -> float:
        """Max/mean routed tokens across replicas (1.0 = perfect balance)."""
        totals = [r.total_tokens for r in self.replicas]
        mean = float(np.mean(totals)) if totals else 0.0
        return max(totals) / mean if mean > 0 else 1.0

    @property
    def request_cv(self) -> float:
        """Coefficient of variation of routed request counts."""
        counts = [r.routed for r in self.replicas]
        mean = float(np.mean(counts)) if counts else 0.0
        return float(np.std(counts)) / mean if mean > 0 else 0.0

    @property
    def saved_prefill_tokens(self) -> int:
        """Fleet-wide prefill tokens skipped via prefix-cache hits."""
        return sum(r.prefix_hit_tokens for r in self.replicas)

    @property
    def has_prefix_caches(self) -> bool:
        return any(
            r.prefix_hit_tokens or r.prefix_miss_tokens for r in self.replicas
        )

    def render(self) -> str:
        """Text table for the CLI."""
        with_cache = self.has_prefix_caches
        header = (
            "replica  system                      reqs  finished  aborted"
            "      tokens   busy s"
        )
        if with_cache:
            header += "  hit-rate"
        lines = [header]
        for load in self.replicas:
            row = (
                f"{load.replica_id:>7}  {load.system[:26]:<26}"
                f"{load.routed:>6}{load.finished:>10}{load.aborted:>9}"
                f"{load.total_tokens:>12,}{load.busy_seconds:>9.1f}"
            )
            if with_cache:
                row += f"{load.prefix_hit_rate:>10.1%}"
            lines.append(row)
        lines.append(
            f"token imbalance (max/mean): {self.token_imbalance:.2f}   "
            f"request-count CV: {self.request_cv:.2f}"
        )
        if with_cache:
            lines.append(
                f"prefix cache: {self.saved_prefill_tokens:,} prefill tokens saved"
            )
        return "\n".join(lines)


def fleet_load_report(per_replica: Sequence[ServeResult]) -> FleetLoadReport:
    """Summarise how a fleet run's work spread across replicas."""
    loads = []
    for replica_id, result in enumerate(per_replica):
        routed = list(result.requests) + list(result.aborted)
        cache = result.cache_stats or {}
        loads.append(
            ReplicaLoad(
                replica_id=replica_id,
                system=result.system,
                routed=len(routed),
                finished=len(result.finished_requests),
                aborted=len(result.aborted),
                input_tokens=sum(r.input_len for r in routed),
                output_tokens=sum(r.generated for r in routed),
                busy_seconds=sum(s.duration for s in result.iteration_stats),
                prefix_hit_tokens=int(cache.get("hit_tokens", 0)),
                prefix_miss_tokens=int(cache.get("miss_tokens", 0)),
            )
        )
    return FleetLoadReport(replicas=tuple(loads))
