"""Fleet-aggregated metrics: merged results, load imbalance, elasticity.

A fleet run produces one ``ServeResult`` per replica; the paper's
latency/SLO metrics apply to the *union* of requests, so
``merge_serve_results`` folds the per-replica results into one (global
makespan = the latest replica finish).  ``fleet_load_report`` keeps the
per-replica view: how evenly the router spread requests, tokens, and
busy time — the quantities that explain *why* one routing policy beats
another.  ``ElasticStats`` is the control plane's flight recorder: the
fleet-capacity timeline (replicas online over time), the work-stealing
ledger (moves plus the re-prefill tokens steals charged), and the
cross-replica KV-migration traffic — the quantities that explain what
elasticity bought (or cost) on top of placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.metrics.qos import merge_qos_stats
from repro.types import ServeResult


def merge_serve_results(
    per_replica: Sequence[ServeResult],
    system: str = "fleet",
) -> ServeResult:
    """Fold per-replica results into one fleet-wide ``ServeResult``.

    Requests, aborts, scaling events, and iteration stats concatenate;
    the fleet makespan is the maximum replica makespan (replicas on a
    shared clock all report it; independently-run replicas report their
    own, and the fleet is done only when the last one is).  Prefix-cache
    and QoS-ledger counters are plain sums, so fleet totals stay exact.
    """
    if not per_replica:
        raise ValueError("need at least one replica result")
    stats = [s for result in per_replica for s in result.iteration_stats]
    return ServeResult(
        system=system,
        requests=[r for result in per_replica for r in result.requests],
        scaling_events=[e for result in per_replica for e in result.scaling_events],
        iteration_stats=sorted(stats, key=lambda s: s.start_time),
        makespan=max(result.makespan for result in per_replica),
        aborted=[r for result in per_replica for r in result.aborted],
        cache_stats=merge_cache_stats(per_replica),
        qos_stats=merge_qos_stats(per_replica),
    )


def merge_cache_stats(per_replica: Sequence[ServeResult]) -> dict[str, float] | None:
    """Sum per-replica prefix-cache counters (None when no replica has a
    cache — the counters are plain sums, so fleet totals stay exact)."""
    with_stats = [r.cache_stats for r in per_replica if r.cache_stats is not None]
    if not with_stats:
        return None
    merged: dict[str, float] = {}
    for stats in with_stats:
        for key, value in stats.items():
            merged[key] = merged.get(key, 0) + value
    return merged


@dataclass
class ElasticStats:
    """Mutable flight recorder the fleet control plane writes during a run.

    ``capacity_timeline`` holds ``(time, replicas_online)`` transitions
    (always seeded with the launch state at t=0); ``scaling_log`` the
    individual park/unpark/drain actions.  Steal and migration counters
    are fleet-wide totals.  ``control_ticks`` counts evaluated control
    intervals, so experiments can report actuator activity per tick.
    """

    capacity_timeline: list[tuple[float, int]] = field(default_factory=list)
    scaling_log: list[tuple[float, str, int]] = field(default_factory=list)
    control_ticks: int = 0
    stolen_requests: int = 0
    steal_reprefill_tokens: int = 0
    migrated_kv_tokens: int = 0
    migrations: int = 0
    migration_seconds: float = 0.0
    # Failure injection (``repro.fleet.faults``): crashes that fired,
    # KV tokens the fleet lost with them, the failover ledger (orphans
    # re-dispatched and the already-computed tokens they must redo), and
    # stolen requests rescued from a mid-flight delivery to a dead
    # replica.  The capacity timeline doubles as the availability
    # timeline — crashes and recoveries are recorded into it.
    crashes: int = 0
    lost_kv_tokens: int = 0
    failovers: int = 0
    failover_reprefill_tokens: int = 0
    rescued_inflight: int = 0
    # Fault outages: ``[start, end, replica_id]`` windows a replica was
    # down *because it crashed* (end is None while still down — clipped
    # to the makespan when reading).  Kept apart from the capacity
    # timeline so availability() measures capacity lost to faults, not
    # capacity the autoscaler parked on purpose.
    fault_outages: list[list] = field(default_factory=list)
    # Replica lifecycle charges (``costmodel.latency.ReplicaLifecycleModel``):
    # warm-up is also *latency* (the replica joins late); cool-down is
    # capacity only.  Both are replica-seconds added to the bill.
    warmup_seconds: float = 0.0
    cooldown_seconds: float = 0.0
    # Disaggregated serving (``repro.fleet.disagg``): prefill-pool ->
    # decode-pool KV handoffs over the priced fabric, and the prefix
    # tokens the decode side had to re-prefill when an import fell
    # short (dropped by the destination's pool pressure).
    disagg_handoffs: int = 0
    disagg_handoff_tokens: int = 0
    disagg_handoff_seconds: float = 0.0
    disagg_reprefill_tokens: int = 0

    def record_capacity(self, now: float, online: int) -> None:
        """Append a capacity transition (deduplicated against the last)."""
        if self.capacity_timeline and self.capacity_timeline[-1][1] == online:
            return
        self.capacity_timeline.append((now, online))

    def record_action(self, now: float, action: str, replica_id: int) -> None:
        self.scaling_log.append((now, action, replica_id))

    def note_outage_start(self, now: float, replica_id: int) -> None:
        """A replica crashed: open its fault-downtime window."""
        self.fault_outages.append([now, None, replica_id])

    def note_outage_end(self, now: float, replica_id: int) -> None:
        """A replica came back online; closes its open fault window, if
        any (no-op for autoscaler unparks — parking is not an outage)."""
        for outage in reversed(self.fault_outages):
            if outage[2] == replica_id and outage[1] is None:
                outage[1] = now
                return

    def fault_downtime_seconds(self, makespan: float) -> float:
        """Replica-seconds lost to crashes (open windows clip at the
        makespan — a replica still down when the run ends was down to
        the end)."""
        total = 0.0
        for start, end, _ in self.fault_outages:
            stop = makespan if end is None else min(end, makespan)
            total += max(0.0, stop - start)
        return total

    @property
    def scale_downs(self) -> int:
        return sum(1 for _, action, _ in self.scaling_log if action == "park")

    @property
    def scale_ups(self) -> int:
        return sum(1 for _, action, _ in self.scaling_log if action == "unpark")

    def replica_seconds(self, makespan: float) -> float:
        """Integral of replicas-online over the run (capacity actually paid
        for) — the autoscaler's headline saving vs. ``N * makespan``."""
        if not self.capacity_timeline:
            return 0.0
        total = 0.0
        for (t0, online), (t1, _) in zip(
            self.capacity_timeline, self.capacity_timeline[1:]
        ):
            total += online * (max(t1, t0) - t0)
        last_t, last_online = self.capacity_timeline[-1]
        total += last_online * max(0.0, makespan - last_t)
        return total

    def paid_replica_seconds(self, makespan: float) -> float:
        """Capacity actually billed: online time plus the warm-up and
        cool-down work replicas did while *not* serving."""
        return (
            self.replica_seconds(makespan)
            + self.warmup_seconds
            + self.cooldown_seconds
        )

    def availability(self, makespan: float) -> float:
        """Fraction of peak replica-seconds *not* lost to faults.

        1.0 means no crash ever cost capacity; each fault outage (crash
        until back online, recovery warm-up included) pulls it down.
        Capacity the autoscaler parked on purpose does not count —
        deliberate scale-in is not unavailability.  Peak is the highest
        online count the timeline saw (the fleet's intended size).
        """
        if not self.capacity_timeline or makespan <= 0:
            return 1.0
        peak = max(online for _, online in self.capacity_timeline)
        if peak == 0:
            return 1.0
        lost = self.fault_downtime_seconds(makespan)
        return max(0.0, 1.0 - lost / (peak * makespan))

    def render(self, makespan: float) -> str:
        """The elastic timeline block of ``FleetLoadReport.render``."""
        steps = " -> ".join(
            f"{online}@{t:.1f}s" for t, online in self.capacity_timeline
        )
        lines = [f"replicas online: {steps or 'n/a'}"]
        if self.capacity_timeline:
            peak = max(online for _, online in self.capacity_timeline)
            used = self.replica_seconds(makespan)
            lines.append(
                f"capacity: {used:,.1f} replica-s used of "
                f"{peak * makespan:,.1f} static ({self.scale_ups} unparks, "
                f"{self.scale_downs} parks, {self.control_ticks} ticks)"
            )
        lines.append(
            f"work stealing: {self.stolen_requests} requests moved, "
            f"{self.steal_reprefill_tokens:,} re-prefill tokens charged"
        )
        lines.append(
            f"kv migration: {self.migrated_kv_tokens:,} tokens in "
            f"{self.migrations} transfers ({self.migration_seconds * 1000:.1f} ms modelled)"
        )
        if self.disagg_handoffs:
            lines.append(
                f"disagg handoffs: {self.disagg_handoff_tokens:,} tokens in "
                f"{self.disagg_handoffs} prefill->decode transfers "
                f"({self.disagg_handoff_seconds * 1000:.1f} ms modelled, "
                f"{self.disagg_reprefill_tokens:,} re-prefill tokens)"
            )
        if self.warmup_seconds or self.cooldown_seconds:
            lines.append(
                f"lifecycle: {self.warmup_seconds:.2f}s warm-up + "
                f"{self.cooldown_seconds:.2f}s cool-down charged"
            )
        if self.crashes:
            lines.append(
                f"faults: {self.crashes} crashes, {self.lost_kv_tokens:,} KV "
                f"tokens lost, {self.failovers} failovers "
                f"({self.failover_reprefill_tokens:,} re-prefill tokens, "
                f"{self.rescued_inflight} in-flight rescues); "
                f"availability {self.availability(makespan):.1%}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ReplicaLoad:
    """Work one replica received and performed during a fleet run."""

    replica_id: int
    system: str
    routed: int
    finished: int
    aborted: int
    input_tokens: int
    output_tokens: int
    busy_seconds: float
    # Prefix-cache counters (0 on replicas serving without a cache).
    prefix_hit_tokens: int = 0
    prefix_miss_tokens: int = 0
    # KV tier counters (0 on replicas without host/SSD offload armed).
    tier_offloaded_tokens: int = 0
    tier_swapped_in_tokens: int = 0
    tier_swap_in_seconds: float = 0.0

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefill tokens served from this replica's cache."""
        total = self.prefix_hit_tokens + self.prefix_miss_tokens
        return self.prefix_hit_tokens / total if total else 0.0


@dataclass(frozen=True)
class FleetLoadReport:
    """Per-replica load breakdown plus fleet imbalance statistics.

    ``elastic`` carries the control plane's recorder when the run used
    one (``None`` on static fleets); ``makespan`` anchors its
    replica-seconds integral.  ``qos_stats`` is the fleet-summed
    per-class admission ledger when any replica served under a QoS
    policy (``None`` otherwise).
    """

    replicas: tuple[ReplicaLoad, ...]
    elastic: ElasticStats | None = None
    makespan: float = 0.0
    qos_stats: dict[str, dict[str, float]] | None = None

    @property
    def token_imbalance(self) -> float:
        """Max/mean routed tokens across replicas (1.0 = perfect balance)."""
        totals = [r.total_tokens for r in self.replicas]
        mean = float(np.mean(totals)) if totals else 0.0
        return max(totals) / mean if mean > 0 else 1.0

    @property
    def request_cv(self) -> float:
        """Coefficient of variation of routed request counts."""
        counts = [r.routed for r in self.replicas]
        mean = float(np.mean(counts)) if counts else 0.0
        return float(np.std(counts)) / mean if mean > 0 else 0.0

    @property
    def saved_prefill_tokens(self) -> int:
        """Fleet-wide prefill tokens skipped via prefix-cache hits."""
        return sum(r.prefix_hit_tokens for r in self.replicas)

    @property
    def has_prefix_caches(self) -> bool:
        return any(
            r.prefix_hit_tokens or r.prefix_miss_tokens for r in self.replicas
        )

    @property
    def has_kv_tiers(self) -> bool:
        return any(
            r.tier_offloaded_tokens or r.tier_swapped_in_tokens
            for r in self.replicas
        )

    def render(self) -> str:
        """Text table for the CLI."""
        with_cache = self.has_prefix_caches
        header = (
            "replica  system                      reqs  finished  aborted"
            "      tokens   busy s"
        )
        if with_cache:
            header += "  hit-rate"
        lines = [header]
        for load in self.replicas:
            row = (
                f"{load.replica_id:>7}  {load.system[:26]:<26}"
                f"{load.routed:>6}{load.finished:>10}{load.aborted:>9}"
                f"{load.total_tokens:>12,}{load.busy_seconds:>9.1f}"
            )
            if with_cache:
                row += f"{load.prefix_hit_rate:>10.1%}"
            lines.append(row)
        lines.append(
            f"token imbalance (max/mean): {self.token_imbalance:.2f}   "
            f"request-count CV: {self.request_cv:.2f}"
        )
        if with_cache:
            lines.append(
                f"prefix cache: {self.saved_prefill_tokens:,} prefill tokens saved"
            )
        if self.has_kv_tiers:
            offloaded = sum(r.tier_offloaded_tokens for r in self.replicas)
            swapped = sum(r.tier_swapped_in_tokens for r in self.replicas)
            seconds = sum(r.tier_swap_in_seconds for r in self.replicas)
            lines.append(
                f"kv tiers: {offloaded:,} tokens offloaded, {swapped:,} "
                f"swapped back in ({seconds * 1000:.1f} ms charged)"
            )
        if self.qos_stats:
            for name in sorted(self.qos_stats):
                counters = self.qos_stats[name]
                lines.append(
                    f"qos {name:<12} "
                    f"submitted {int(counters.get('submitted', 0)):>5}  "
                    f"admitted {int(counters.get('admitted', 0)):>5}  "
                    f"rejected {int(counters.get('rejected', 0)):>4}  "
                    f"downgraded {int(counters.get('downgraded', 0)):>4}  "
                    f"preempted {int(counters.get('preempted', 0)):>4}"
                )
        if self.elastic is not None:
            lines.append(self.elastic.render(self.makespan))
        return "\n".join(lines)


def fleet_load_report(
    per_replica: Sequence[ServeResult],
    elastic: ElasticStats | None = None,
    makespan: float | None = None,
) -> FleetLoadReport:
    """Summarise how a fleet run's work spread across replicas."""
    loads = []
    for replica_id, result in enumerate(per_replica):
        routed = list(result.requests) + list(result.aborted)
        cache = result.cache_stats or {}
        loads.append(
            ReplicaLoad(
                replica_id=replica_id,
                system=result.system,
                routed=len(routed),
                finished=len(result.finished_requests),
                aborted=len(result.aborted),
                input_tokens=sum(r.input_len for r in routed),
                output_tokens=sum(r.generated for r in routed),
                busy_seconds=sum(s.duration for s in result.iteration_stats),
                prefix_hit_tokens=int(cache.get("hit_tokens", 0)),
                prefix_miss_tokens=int(cache.get("miss_tokens", 0)),
                tier_offloaded_tokens=int(cache.get("tier_offloaded_tokens", 0)),
                tier_swapped_in_tokens=int(cache.get("tier_swapped_in_tokens", 0)),
                tier_swap_in_seconds=float(cache.get("tier_swap_in_seconds", 0.0)),
            )
        )
    if makespan is None:
        makespan = max((r.makespan for r in per_replica), default=0.0)
    return FleetLoadReport(
        replicas=tuple(loads),
        elastic=elastic,
        makespan=makespan,
        qos_stats=merge_qos_stats(per_replica),
    )
