"""SLO attainment and goodput (§7.1, §7.4).

The paper sets the latency SLO to 25x the inference latency — i.e. each
request's deadline scales with its own no-load latency.  The ideal
latency is computed from the cost model: prefill at the best available
DoP plus one decode step per output token at the launch-time strategy.
P90 goodput (Figures 12/13a) is the highest request rate at which at
least 90% of requests meet their SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.costmodel.latency import RooflineCostModel
from repro.types import Request, ServeResult

DEFAULT_SLO_SCALE = 25.0


@dataclass(frozen=True)
class IdealLatencyModel:
    """No-load latency of a request on an otherwise empty cluster."""

    cost_model: RooflineCostModel
    tensor_parallel: int
    max_instances: int

    def ideal_latency(self, request: Request) -> float:
        instances = list(range(self.max_instances))
        prefill = self.cost_model.prefill_time(
            [request.input_len], instances, self.tensor_parallel
        )
        decode_steps = max(0, request.output_len - 1)
        decode = 0.0
        if decode_steps:
            per_step = self.cost_model.decode_time(
                [request.input_len + request.output_len // 2],
                instances[:1],
                self.tensor_parallel,
            )
            decode = decode_steps * per_step
        return prefill + decode

    def deadline(self, request: Request, scale: float = DEFAULT_SLO_SCALE) -> float:
        return scale * self.ideal_latency(request)


class CachedIdealLatency:
    """Memoised ``IdealLatencyModel.ideal_latency`` by request shape.

    Deadline scheduling, admission, and SLO routing all reprice the
    same (input_len, output_len) shapes constantly; one shared wrapper
    keeps the cost-model calls amortised (used by
    ``repro.qos.QoSPolicy`` and ``repro.fleet.router.SLORouter``).
    """

    def __init__(self, ideal: IdealLatencyModel) -> None:
        self.ideal = ideal
        self._cache: dict[tuple[int, int], float] = {}

    def __call__(self, request: Request) -> float:
        key = (request.input_len, request.output_len)
        cached = self._cache.get(key)
        if cached is None:
            cached = self.ideal.ideal_latency(request)
            self._cache[key] = cached
        return cached


@dataclass(frozen=True)
class SLOReport:
    """Attainment outcome of one run."""

    attained: int
    finished: int
    total: int

    @property
    def attainment(self) -> float:
        """Fraction of all submitted requests that met their deadline.

        Aborted/unfinished requests count as missed — a system that
        cannot serve a request certainly misses its SLO.
        """
        return self.attained / self.total if self.total else 0.0


def slo_report(
    result: ServeResult,
    ideal: IdealLatencyModel,
    scale: float = DEFAULT_SLO_SCALE,
) -> SLOReport:
    finished = result.finished_requests
    attained = 0
    for request in finished:
        if request.end_to_end_latency <= ideal.deadline(request, scale):
            attained += 1
    total = len(result.requests) + len(result.aborted)
    return SLOReport(attained=attained, finished=len(finished), total=total)


def max_rate_under_slo(
    rates: Sequence[float],
    attainments: Sequence[float],
    target: float = 0.90,
    interpolate: bool = True,
) -> float:
    """P90 goodput: the highest rate at which attainment >= target.

    Sweeps quantize the true knee to the swept grid; with
    ``interpolate`` (the default) the crossing is linearly interpolated
    between the last passing rate and the first failing rate above it,
    recovering the sub-grid goodput the sweep actually measured.
    ``interpolate=False`` restores the historical grid-snapped answer
    (the highest swept rate whose attainment met the target).

    Returns 0.0 when no swept rate meets the target (including the
    empty sweep).
    """
    if len(rates) != len(attainments):
        raise ValueError("rates and attainments must align")
    points = sorted(zip(rates, attainments))
    passing = [r for r, a in points if a >= target]
    if not passing:
        return 0.0
    best = max(passing)
    if not interpolate:
        return best
    best_attainment = max(a for r, a in points if r == best)
    above = [(r, a) for r, a in points if r > best]
    if not above:
        return best  # the sweep never failed past the knee
    fail_rate, fail_attainment = above[0]
    drop = best_attainment - fail_attainment
    if drop <= 0:
        return best  # degenerate (flat or re-rising) — do not extrapolate
    fraction = (best_attainment - target) / drop
    return best + fraction * (fail_rate - best)
