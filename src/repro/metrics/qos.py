"""Per-class QoS metrics: admission ledgers, attainment, goodput.

Two layers, mirroring the cache-stats pattern:

* :class:`QoSLedger` is the mutable flight recorder a QoS-armed server
  writes during a run (admissions, rejections, downgrades, deadline
  preemptions, per class).  It serialises to the plain nested-dict
  ``ServeResult.qos_stats`` so fleet merging stays a counter sum.
* :func:`per_class_report` is the post-hoc evaluation: group a run's
  requests by their *workload* class tag and score each class against
  its own deadline scale (class scale x the request's no-load ideal
  latency).  Evaluation is always model-based — it never reads the
  runtime ``deadline`` field — so QoS-armed and baseline runs of the
  same trace are scored identically and the comparison is fair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.metrics.slo import IdealLatencyModel
from repro.qos.classes import QOS_CLASSES, QoSClass, resolve_qos_class
from repro.types import Request, ServeResult

__all__ = [
    "ClassOutcome",
    "QoSLedger",
    "merge_qos_stats",
    "per_class_report",
]

LEDGER_EVENTS = ("submitted", "admitted", "rejected", "downgraded", "preempted")


@dataclass
class QoSLedger:
    """Mutable per-class event counters a QoS-armed server writes.

    Keyed by the request's *workload* class name (downgrades are charged
    to the class the client asked for).  Untagged requests are recorded
    under ``"untagged"`` so the ledger always reconciles with the trace.
    """

    counters: dict[str, dict[str, int]] = field(default_factory=dict)

    UNTAGGED = "untagged"

    def note(self, qos_name: str | None, event: str) -> None:
        if event not in LEDGER_EVENTS:
            raise ValueError(f"unknown ledger event {event!r}")
        name = qos_name if qos_name is not None else self.UNTAGGED
        per_class = self.counters.setdefault(name, {})
        per_class[event] = per_class.get(event, 0) + 1

    def count(self, qos_name: str | None, event: str) -> int:
        name = qos_name if qos_name is not None else self.UNTAGGED
        return self.counters.get(name, {}).get(event, 0)

    def total(self, event: str) -> int:
        return sum(c.get(event, 0) for c in self.counters.values())

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Plain nested counters for ``ServeResult.qos_stats``."""
        return {
            name: {event: float(n) for event, n in per_class.items()}
            for name, per_class in self.counters.items()
        }


def merge_qos_stats(
    per_replica: Sequence[ServeResult],
) -> dict[str, dict[str, float]] | None:
    """Sum per-replica QoS ledgers (None when no replica kept one)."""
    with_stats = [r.qos_stats for r in per_replica if r.qos_stats is not None]
    if not with_stats:
        return None
    merged: dict[str, dict[str, float]] = {}
    for stats in with_stats:
        for name, counters in stats.items():
            into = merged.setdefault(name, {})
            for event, value in counters.items():
                into[event] = into.get(event, 0.0) + value
    return merged


@dataclass(frozen=True)
class ClassOutcome:
    """One class's scorecard over a run."""

    qos_class: str
    deadline_scale: float
    submitted: int
    finished: int
    attained: int
    attained_tokens: int
    rejected: int = 0
    downgraded: int = 0
    preempted: int = 0

    @property
    def attainment(self) -> float:
        """Fraction of the class's submitted requests that met its
        deadline (aborted/rejected/unfinished count as missed)."""
        return self.attained / self.submitted if self.submitted else 0.0

    def goodput_tokens_per_s(self, makespan: float) -> float:
        """Tokens of SLO-attaining requests per second of run."""
        return self.attained_tokens / makespan if makespan > 0 else 0.0


def per_class_report(
    result: ServeResult,
    ideal: IdealLatencyModel,
    classes: Mapping[str, QoSClass] | None = None,
) -> dict[str, ClassOutcome]:
    """Score each class of a run against its own deadline scale.

    Requests group by their workload tag (``Request.qos``; ``None``
    groups as the standard-semantics ``untagged`` class).  The ledger
    counters come from ``result.qos_stats`` when the run kept one.
    """
    registry = classes or QOS_CLASSES
    groups: dict[str, list[Request]] = {}
    for request in list(result.requests) + list(result.aborted):
        name = request.qos if request.qos is not None else QoSLedger.UNTAGGED
        groups.setdefault(name, []).append(request)
    stats = result.qos_stats or {}
    outcomes: dict[str, ClassOutcome] = {}
    for name, requests in sorted(groups.items()):
        qos_class = resolve_qos_class(
            None if name == QoSLedger.UNTAGGED else name, registry
        )
        attained = 0
        attained_tokens = 0
        finished = 0
        for request in requests:
            if not request.finished or request.finish_time is None:
                continue
            finished += 1
            deadline = ideal.deadline(request, scale=qos_class.deadline_scale)
            if request.end_to_end_latency <= deadline:
                attained += 1
                attained_tokens += request.input_len + request.output_len
        ledger = stats.get(name, {})
        outcomes[name] = ClassOutcome(
            qos_class=name,
            deadline_scale=qos_class.deadline_scale,
            submitted=len(requests),
            finished=finished,
            attained=attained,
            attained_tokens=attained_tokens,
            rejected=int(ledger.get("rejected", 0)),
            downgraded=int(ledger.get("downgraded", 0)),
            preempted=int(ledger.get("preempted", 0)),
        )
    return outcomes
