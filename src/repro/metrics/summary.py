"""Aggregate run statistics: throughput and scaling-event histograms."""

from __future__ import annotations

import math
from typing import Sequence

from repro.types import ScalingEvent, ServeResult


def throughput_tokens_per_s(result: ServeResult) -> float:
    """Total tokens (input + output) served per second of makespan."""
    if result.makespan <= 0:
        return 0.0
    tokens = sum(
        r.input_len + r.generated for r in result.requests if r.finished
    )
    return tokens / result.makespan


def request_throughput(result: ServeResult) -> float:
    """Finished requests per second of makespan."""
    if result.makespan <= 0:
        return 0.0
    return len(result.finished_requests) / result.makespan


def scale_event_histogram(
    events: Sequence[ScalingEvent],
    kind: str,
    bin_seconds: float = 10.0,
    until: float | None = None,
) -> list[int]:
    """Events per time bin — the Figure 13b frequency plot."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    selected = [e for e in events if e.kind == kind]
    if not selected and until is None:
        return []
    horizon = until if until is not None else max(e.time for e in selected)
    num_bins = max(1, math.ceil(horizon / bin_seconds))
    bins = [0] * num_bins
    for event in selected:
        index = min(int(event.time // bin_seconds), num_bins - 1)
        bins[index] += 1
    return bins
