"""Normalised latency metrics (§7.1 "Metrics").

* normalised per-token latency — mean of end-to-end latency / sequence
  length,
* normalised input latency — mean of prefill-phase time / input length,
* normalised output latency — mean of decode-phase time / output length.

These are the three columns of Figures 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.types import Request, ServeResult


@dataclass(frozen=True)
class LatencySummary:
    """Mean and tail statistics of the three normalised latencies."""

    per_token: float
    input_token: float
    output_token: float
    per_token_p90: float
    finished: int
    total: int
    # Deep-tail percentile the elastic-fleet experiments compare on —
    # burst absorption shows up in the worst requests, not the mean.
    per_token_p99: float = float("inf")

    @property
    def completion_rate(self) -> float:
        return self.finished / self.total if self.total else 0.0


def summarize_latency(result: ServeResult) -> LatencySummary:
    """Aggregate a run's finished requests into the paper's metrics."""
    finished = result.finished_requests
    if not finished:
        return LatencySummary(
            per_token=float("inf"),
            input_token=float("inf"),
            output_token=float("inf"),
            per_token_p90=float("inf"),
            finished=0,
            total=len(result.requests),
        )
    per_token = [r.normalized_latency for r in finished]
    input_token = [r.normalized_input_latency for r in finished]
    output_token = [
        r.normalized_output_latency for r in finished if r.output_len > 1
    ]
    return LatencySummary(
        per_token=float(np.mean(per_token)),
        input_token=float(np.mean(input_token)),
        output_token=float(np.mean(output_token)) if output_token else 0.0,
        per_token_p90=float(np.percentile(per_token, 90)),
        finished=len(finished),
        total=len(result.requests),
        per_token_p99=float(np.percentile(per_token, 99)),
    )


def mean_normalized_latency(requests: Sequence[Request]) -> float:
    done = [r for r in requests if r.finished and r.finish_time is not None]
    if not done:
        return float("inf")
    return float(np.mean([r.normalized_latency for r in done]))
