"""Serving metrics: normalised latencies, SLO attainment, goodput,
fleet aggregation."""

from repro.metrics.fleet import (
    FleetLoadReport,
    ReplicaLoad,
    fleet_load_report,
    merge_serve_results,
)
from repro.metrics.latency import LatencySummary, summarize_latency
from repro.metrics.slo import IdealLatencyModel, SLOReport, max_rate_under_slo, slo_report
from repro.metrics.summary import scale_event_histogram, throughput_tokens_per_s

__all__ = [
    "FleetLoadReport",
    "IdealLatencyModel",
    "LatencySummary",
    "ReplicaLoad",
    "SLOReport",
    "fleet_load_report",
    "max_rate_under_slo",
    "merge_serve_results",
    "scale_event_histogram",
    "slo_report",
    "summarize_latency",
    "throughput_tokens_per_s",
]
