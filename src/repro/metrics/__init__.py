"""Serving metrics: normalised latencies, SLO attainment, goodput."""

from repro.metrics.latency import LatencySummary, summarize_latency
from repro.metrics.slo import IdealLatencyModel, SLOReport, max_rate_under_slo, slo_report
from repro.metrics.summary import scale_event_histogram, throughput_tokens_per_s

__all__ = [
    "IdealLatencyModel",
    "LatencySummary",
    "SLOReport",
    "max_rate_under_slo",
    "scale_event_histogram",
    "slo_report",
    "summarize_latency",
    "throughput_tokens_per_s",
]
