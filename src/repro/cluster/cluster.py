"""Cluster composition: nodes of GPUs plus the interconnect topology."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.gpu import A800_80GB, GPUSpec
from repro.cluster.topology import Topology


@dataclass(frozen=True)
class Node:
    """One physical server: a contiguous range of global GPU indices."""

    node_id: int
    gpu_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.gpu_ids:
            raise ValueError("a node must contain at least one GPU")


@dataclass(frozen=True)
class Cluster:
    """A homogeneous GPU cluster.

    The paper evaluates on one node (8 GPUs) and two nodes (16 GPUs); this
    model supports arbitrary node counts with uniform GPUs, which covers
    every experiment.
    """

    gpu: GPUSpec
    topology: Topology
    nodes: tuple[Node, ...] = field(default=())

    def __post_init__(self) -> None:
        total = sum(len(n.gpu_ids) for n in self.nodes)
        if total != self.topology.num_gpus:
            raise ValueError(
                f"nodes hold {total} GPUs but topology declares {self.topology.num_gpus}"
            )

    @classmethod
    def homogeneous(
        cls,
        num_gpus: int = 8,
        gpu: GPUSpec = A800_80GB,
        gpus_per_node: int = 8,
    ) -> Cluster:
        """Build a cluster of identical GPUs packed ``gpus_per_node`` per node."""
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        gpus_per_node = min(gpus_per_node, num_gpus)
        topology = Topology(num_gpus=num_gpus, gpus_per_node=gpus_per_node)
        nodes = []
        for node_id in range(topology.num_nodes):
            lo = node_id * gpus_per_node
            hi = min(lo + gpus_per_node, num_gpus)
            nodes.append(Node(node_id=node_id, gpu_ids=tuple(range(lo, hi))))
        return cls(gpu=gpu, topology=topology, nodes=tuple(nodes))

    @property
    def num_gpus(self) -> int:
        return self.topology.num_gpus

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_memory_bytes(self) -> int:
        return self.gpu.memory_bytes * self.num_gpus

    def instance_gpus(self, instance_id: int, tensor_parallel: int) -> list[int]:
        """Global GPU indices backing one elastic instance.

        Instances are carved out of the cluster in contiguous blocks of
        ``tensor_parallel`` GPUs, matching the paper's layout where each
        elastic instance spans a fixed TP group (§4).
        """
        if tensor_parallel <= 0:
            raise ValueError("tensor_parallel must be positive")
        num_instances = self.num_gpus // tensor_parallel
        if not 0 <= instance_id < num_instances:
            raise ValueError(
                f"instance_id {instance_id} out of range for TP={tensor_parallel} "
                f"on {self.num_gpus} GPUs"
            )
        lo = instance_id * tensor_parallel
        return list(range(lo, lo + tensor_parallel))

    def instance_bandwidth(self, src_instance: int, dst_instance: int, tensor_parallel: int) -> float:
        """Aggregate bandwidth between two instances' GPU sets.

        Each of the TP ranks in the source instance streams its KV shard to
        the matching rank of the destination, so transfers proceed in
        parallel across ``tensor_parallel`` links.
        """
        src = self.instance_gpus(src_instance, tensor_parallel)
        dst = self.instance_gpus(dst_instance, tensor_parallel)
        per_rank = min(
            self.topology.bandwidth(s, d) for s, d in zip(src, dst)
        )
        return per_rank * tensor_parallel
