"""Interconnect topology: which links connect which GPUs, and how fast.

Two link classes matter for the paper's experiments:

* **NVLink** inside a node — 400 GB/s between any GPU pair on the A800
  testbed (§7.1).
* **InfiniBand** between nodes — four 200 Gbps NICs per node, i.e. 100 GB/s
  of aggregate unidirectional node-to-node bandwidth.

The topology answers "what bandwidth and latency does a transfer between
GPU i and GPU j see", which is all the communication cost model needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LinkKind(enum.Enum):
    SELF = "self"
    NVLINK = "nvlink"
    INFINIBAND = "infiniband"


@dataclass(frozen=True)
class Interconnect:
    """Bandwidth/latency of one link class."""

    kind: LinkKind
    bandwidth: float  # bytes per second, unidirectional
    latency: float  # seconds per message (launch + wire latency)

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` across this link."""
        if num_bytes < 0:
            raise ValueError("bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency + num_bytes / self.bandwidth


# Defaults for the paper's testbed.
NVLINK_A800 = Interconnect(kind=LinkKind.NVLINK, bandwidth=400e9, latency=5e-6)
INFINIBAND_4X200 = Interconnect(kind=LinkKind.INFINIBAND, bandwidth=100e9, latency=15e-6)
LOCAL = Interconnect(kind=LinkKind.SELF, bandwidth=float("inf"), latency=0.0)


@dataclass(frozen=True)
class Topology:
    """Maps GPU pairs to interconnects.

    GPUs are numbered globally; ``gpus_per_node`` partitions them into
    nodes.  Within a node every pair shares the NVLink spec; across nodes
    every pair shares the InfiniBand spec.
    """

    num_gpus: int
    gpus_per_node: int
    nvlink: Interconnect = NVLINK_A800
    infiniband: Interconnect = INFINIBAND_4X200

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")
        if self.num_gpus % self.gpus_per_node not in (0,) and self.num_gpus > self.gpus_per_node:
            raise ValueError(
                f"num_gpus={self.num_gpus} must be a multiple of "
                f"gpus_per_node={self.gpus_per_node} for multi-node layouts"
            )

    @property
    def num_nodes(self) -> int:
        return max(1, -(-self.num_gpus // self.gpus_per_node))

    def node_of(self, gpu: int) -> int:
        """Node index holding a GPU."""
        self._check_gpu(gpu)
        return gpu // self.gpus_per_node

    def link(self, src: int, dst: int) -> Interconnect:
        """The interconnect a ``src -> dst`` transfer uses."""
        self._check_gpu(src)
        self._check_gpu(dst)
        if src == dst:
            return LOCAL
        if self.node_of(src) == self.node_of(dst):
            return self.nvlink
        return self.infiniband

    def transfer_time(self, src: int, dst: int, num_bytes: float) -> float:
        """Seconds for a point-to-point transfer of ``num_bytes``."""
        return self.link(src, dst).transfer_time(num_bytes)

    def bandwidth(self, src: int, dst: int) -> float:
        """Bytes/s between two GPUs (infinite for self-transfers)."""
        return self.link(src, dst).bandwidth

    def min_bandwidth(self, gpus: list[int]) -> float:
        """Bottleneck pairwise bandwidth inside a set of GPUs.

        Ring collectives (striped attention's KV circulation) run at the
        speed of the slowest hop; a group spanning two nodes is IB-bound.
        """
        if len(gpus) <= 1:
            return float("inf")
        result = float("inf")
        for i, src in enumerate(gpus):
            for dst in gpus[i + 1 :]:
                result = min(result, self.bandwidth(src, dst))
        return result

    def spans_nodes(self, gpus: list[int]) -> bool:
        """True when the GPU set crosses a node boundary."""
        nodes = {self.node_of(g) for g in gpus}
        return len(nodes) > 1

    def _check_gpu(self, gpu: int) -> None:
        if not 0 <= gpu < self.num_gpus:
            raise ValueError(f"gpu index {gpu} out of range [0, {self.num_gpus})")
