"""GPU hardware specifications.

Peak numbers follow vendor datasheets; ``compute_efficiency`` and
``memory_efficiency`` discount them to sustained rates, the standard
practice in roofline-style serving simulators (e.g. the DistServe simulator
the paper's baseline uses).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU.

    ``peak_flops`` is dense fp16/bf16 tensor-core throughput in FLOP/s.
    ``memory_bandwidth`` is HBM bandwidth in bytes/s.
    ``memory_bytes`` is usable device memory in bytes.
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    memory_bytes: int
    compute_efficiency: float = 0.55
    memory_efficiency: float = 0.80

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth <= 0 or self.memory_bytes <= 0:
            raise ValueError(f"GPU spec {self.name} has non-positive capability")
        if not 0 < self.compute_efficiency <= 1 or not 0 < self.memory_efficiency <= 1:
            raise ValueError(f"GPU spec {self.name} efficiency must be in (0, 1]")

    @property
    def sustained_flops(self) -> float:
        """Achievable FLOP/s for large GEMMs."""
        return self.peak_flops * self.compute_efficiency

    @property
    def sustained_bandwidth(self) -> float:
        """Achievable HBM bytes/s for streaming access."""
        return self.memory_bandwidth * self.memory_efficiency

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating point operations."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops / self.sustained_flops

    def memory_time(self, num_bytes: float) -> float:
        """Seconds to stream ``num_bytes`` through HBM."""
        if num_bytes < 0:
            raise ValueError("bytes must be non-negative")
        return num_bytes / self.sustained_bandwidth


# The paper's testbed GPU (§7.1): A800 is the export variant of the A100 with
# NVLink capped at 400 GB/s; compute and HBM match the A100 80GB SXM.
A800_80GB = GPUSpec(
    name="A800-80GB",
    peak_flops=312e12,
    memory_bandwidth=2.039e12,
    memory_bytes=80 * 2**30,
)

A100_80GB = GPUSpec(
    name="A100-80GB",
    peak_flops=312e12,
    memory_bandwidth=2.039e12,
    memory_bytes=80 * 2**30,
)

H100_80GB = GPUSpec(
    name="H100-80GB",
    peak_flops=989e12,
    memory_bandwidth=3.35e12,
    memory_bytes=80 * 2**30,
)
