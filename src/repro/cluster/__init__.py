"""Simulated GPU cluster substrate.

The paper's testbed is one or two nodes of eight NVIDIA A800 80GB GPUs,
NVLink at 400 GB/s between GPUs inside a node, and four 200 Gbps InfiniBand
NICs between nodes (§7.1).  This package models exactly those capacities so
the cost model and scheduler operate on the published hardware envelope.
"""

from repro.cluster.cluster import Cluster, Node
from repro.cluster.gpu import A100_80GB, A800_80GB, H100_80GB, GPUSpec
from repro.cluster.topology import Interconnect, LinkKind, Topology

__all__ = [
    "A100_80GB",
    "A800_80GB",
    "H100_80GB",
    "Cluster",
    "GPUSpec",
    "Interconnect",
    "LinkKind",
    "Node",
    "Topology",
]
