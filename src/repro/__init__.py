"""LoongServe reproduction: elastic sequence parallelism for long-context
LLM serving (SOSP 2024), rebuilt as a simulation + functional-engine stack.

Public API quick tour
---------------------

Serving (performance layer, discrete-event simulation)::

    from repro import default_config, LoongServeServer, make_trace, SHAREGPT

    server = LoongServeServer(default_config())
    result = server.run(make_trace(SHAREGPT, rate=10.0, num_requests=100))

Mechanisms (functional layer, numpy)::

    from repro.engine import (
        TransformerWeights, FunctionalInstance, striped_prefill,
        DistributedDecoder,
    )

Experiments::

    python -m repro.experiments figure10

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.config import SchedulerConfig, SystemConfig, default_config
from repro.core.server import LoongServeServer
from repro.costmodel.latency import RooflineCostModel
from repro.metrics.latency import summarize_latency
from repro.metrics.slo import IdealLatencyModel, slo_report
from repro.types import Phase, Request, RequestState, ServeResult
from repro.workloads.datasets import LEVAL, LVEVAL, MIXED, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace

__version__ = "1.0.0"

__all__ = [
    "IdealLatencyModel",
    "LEVAL",
    "LVEVAL",
    "LoongServeServer",
    "MIXED",
    "Phase",
    "Request",
    "RequestState",
    "RooflineCostModel",
    "SHAREGPT",
    "SchedulerConfig",
    "ServeResult",
    "SystemConfig",
    "clone_requests",
    "default_config",
    "make_trace",
    "slo_report",
    "summarize_latency",
]
