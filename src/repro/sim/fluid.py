"""Fluid-approximation stepper for steady-state decode stretches.

The discrete simulator fires one event per decode iteration per batch —
faithful, but a million-request trace spends almost all of its events
ticking batches whose state evolves perfectly predictably: every
iteration each request gains one token and the iteration time creeps up
along the cost model's near-linear ``d_0 + d_1 · tokens`` shape.

The fluid stepper advances such stretches in closed form, one *window*
at a time covering **every** decode batch at once.  Per-batch stretches
do not work: with two or more concurrent batches, each batch's next
completion event is the other's horizon, and the stretches collapse to
single iterations.  A window instead launches when no iteration is in
flight, advances each batch by as many iterations as fit, and schedules
a single shared event at the window's end.

A non-empty pending queue does **not** disengage fluid mode (it did
until PR 8): the scheduler pass that precedes ``try_window`` just
declined to admit the queue, admission is memory-gated, and free KV
next grows at a completion — where every window already ends.  The one
scheduler action that can hit the queue sooner is QoS deadline
preemption, and its trigger is a deterministic slack crossing the
window is additionally bounded by.

A window is bounded conservatively by

* the next scheduled event (arrival, control tick, fault injection,
  prefill completion, a QoS deadline check — every transient in the
  system is an already-queued event, so the queue head is a sound
  horizon; inside a sharded fleet this is the replica-local horizon,
  which includes the next control tick),
* the first request completion across all batches (completions release
  KV and trigger re-planning, so no window ever glides past one),
* the first QoS slack-threshold crossing of a top-tier pending request
  (the earliest time deadline preemption could act on the backlog), and
* KV exhaustion on any batch's instances (the discrete path would start
  preempting; the fluid path stops one iteration short instead).

Windows shorter than ``min_iterations`` per batch fall back to the
discrete path, so sparse/bursty phases run exactly as before.  Hybrid
mode is an *approximation*: aggregate metrics (goodput, attainment,
makespan) track the discrete reference within tolerance, but per-event
traces differ — golden-signature gates must keep ``sim_mode="discrete"``.
"""

from __future__ import annotations

import math

from repro.core.elastic_instance import InstanceRole
from repro.types import BatchStats, Phase


class FluidStepper:
    """Closed-form decode advancement for one server (``sim_mode="hybrid"``).

    Owned by a ``LoongServeServer``; ``try_window`` is consulted at the
    top of ``_start_decode_iterations`` and returns False whenever the
    discrete path should run instead.
    """

    def __init__(
        self,
        server,
        min_iterations: int = 4,
        max_iterations: int = 1_000_000,
        max_window_s: float = 1.0,
    ):
        self.server = server
        # Below this per-batch average, the closed-form bookkeeping costs
        # more than the events it saves — let the discrete path handle it.
        self.min_iterations = min_iterations
        self.max_iterations = max_iterations
        # Windows freeze each batch's group membership and master set, so
        # scale-up/merge decisions the discrete path would take between
        # iterations are deferred to the window end.  Capping the window
        # bounds that structural drift while still collapsing tens-to-
        # hundreds of iterations per event.
        self.max_window_s = max_window_s
        # Telemetry for benchmarks: windows launched and the discrete
        # iterations they replaced.
        self.windows = 0
        self.iterations_absorbed = 0
        # Per-request fluid-window history, shared by reference with the
        # open decode span's attrs so each new window shows up in the
        # exported span without re-transitioning (tracing-on only).
        self._span_windows: dict[int, list] = {}

    # -- window planning ---------------------------------------------------

    def try_window(self) -> bool:
        """Launch a fluid window if one is worthwhile.

        Returns True when the fluid mode took responsibility for this
        tick's decode work (a window was scheduled, or ready batches are
        deliberately held until in-flight iterations drain so the whole
        server can advance together); False means run the discrete path.
        """
        server = self.server
        now = server.sim.now
        # A non-empty queue is allowed: this tick's scheduler pass just
        # declined to admit anything (try_window runs after it), and
        # admission is memory-gated — free KV next grows at a completion,
        # where every window already ends (the n_finish cap below).  The
        # one way the discrete path could act on the queue *before* a
        # completion is QoS deadline preemption, whose trigger time is a
        # deterministic slack crossing — so the window is bounded there.
        backlog_bound = math.inf
        if server.pending:
            backlog_bound = self._admission_horizon(now)
            if backlog_bound <= now:
                return False  # scheduler would act immediately: stay discrete

        ready = []
        any_running = False
        for batch in list(server.decode_batches):
            if batch.running:
                any_running = True
                continue
            if batch.group is None or not batch.requests:
                continue
            if any(
                server.instances[i].role == InstanceRole.PREFILL
                for i in batch.instance_ids
            ):
                # Paused (instances co-opted by a prefill): neither joins
                # nor blocks a window — exactly as the discrete loop.
                continue
            ready.append(batch)
        if not ready:
            return False
        if any_running:
            # Hold: once the in-flight iterations drain, their completion
            # tick re-enters with every batch idle and the whole server
            # advances in one window.  The held batches lose at most one
            # iteration of wall-clock per transient.
            return True

        # Memory pre-flight exactly as the discrete loop would run it
        # (may merge sibling batches or preempt — both mutate the list).
        planned = []
        for batch in ready:
            if batch not in server.decode_batches or not batch.requests:
                continue
            masters = server._ensure_decode_memory(batch)
            if masters is None:
                continue
            planned.append((batch, masters))
        if not planned:
            return False

        tp = server.config.tensor_parallel
        entries = []
        for batch, masters in planned:
            if batch not in server.decode_batches or not batch.requests:
                continue  # absorbed by a later batch's sibling merge
            bs = batch.batch_size
            # Bound: first completion in the batch, and KV growth on the
            # batch's instances with one iteration of headroom so the
            # post-window discrete step never lands in preemption
            # territory the reference would have avoided.
            n_finish = min(r.output_len - r.generated for r in batch.requests)
            n_kv = server.pool.free_on(list(batch.instance_ids)) // bs - 1
            cap = min(n_finish, n_kv, self.max_iterations)
            if cap < 1:
                return False  # KV-starved; discrete preemption logic decides
            contexts = batch.context_lens
            d_start = server.cost_model.decode_time(
                contexts, batch.instance_ids, tp, num_masters=len(masters)
            )
            if cap > 1:
                d_end = server.cost_model.decode_time(
                    [c + cap - 1 for c in contexts],
                    batch.instance_ids, tp, num_masters=len(masters),
                )
                slope = (d_end - d_start) / (cap - 1)
            else:
                slope = 0.0
            entries.append((batch, masters, cap, d_start, slope))
        if not entries:
            return False

        # Common window end: the earliest batch's natural cap keeps every
        # batch's completions processed close to when the discrete path
        # would have, and the event horizon keeps transients ahead of us.
        t_end = min(
            now + _stretch_time(cap, d, s) for _, _, cap, d, s in entries
        )
        t_end = min(t_end, now + self.max_window_s)
        if backlog_bound < t_end:
            t_end = backlog_bound
        horizon = server.sim.next_event_time()
        if horizon is not None:
            t_end = min(t_end, horizon)
        budget = t_end - now
        final = []
        total = 0
        for batch, masters, cap, d_start, slope in entries:
            n = _max_iterations_within(budget, d_start, slope, cap)
            if n < 1:
                return False
            total += n
            final.append((batch, n, d_start, slope))
        if total < self.min_iterations * len(final):
            return False

        return self._launch(final, now)

    def _admission_horizon(self, now: float) -> float:
        """Earliest time the discrete scheduler could act on the backlog
        before a completion: the first QoS slack-threshold crossing.

        ``_qos_preempt_for_deadlines`` fires for a top-tier pending
        request once ``slack < preempt_slack_fraction * deadline_budget``.
        Slack burns at exactly 1 s/s (deadline and ideal latency are
        fixed once admitted), so the crossing is at
        ``now + slack(now) - threshold`` — deterministic, priced from the
        same policy the discrete path consults.  Without QoS preemption
        nothing can touch the queue before a completion frees KV, and the
        window already ends at the first completion.
        """
        server = self.server
        qos = server.qos
        if qos is None or not qos.preemption:
            return math.inf
        top = min(c.priority for c in qos.classes.values())
        bound = math.inf
        for request in server.pending:
            if request.deadline is None or qos.qos_class(request).priority != top:
                continue
            threshold = qos.preempt_slack_fraction * (
                request.deadline - request.arrival_time
            )
            crossing = now + qos.slack(request, now) - threshold
            if crossing < bound:
                bound = crossing
        return bound

    # -- window execution --------------------------------------------------

    def _launch(self, final, now: float) -> bool:
        """Commit the planned window.  Returns False when every batch had
        to be dropped (the discrete path should run this tick instead)."""
        server = self.server
        pool = server.pool
        window_end = now
        launched = []
        for batch, n, d_start, slope in final:
            # Re-check the KV budget against the pool's *current* free
            # slots before touching it: an earlier batch in this very
            # window (or a sibling merge during memory pre-flight) may
            # share instances, and planning bounds are per-batch.  Shrink
            # deterministically instead of overrunning mid-allocation.
            budget_slots = pool.free_on(list(batch.instance_ids))
            bs = batch.batch_size
            # planned(n) = n*bs - (#requests finishing within the window)
            # >= (n-1)*bs, so nothing above budget//bs + 1 can ever fit.
            n = min(n, budget_slots // bs + 1)
            while n >= 1 and self._planned_appends(batch, n) > budget_slots:
                n -= 1
            if n < 1:
                continue  # KV-starved batch: leave it to the discrete path
            duration = _stretch_time(n, d_start, slope)
            window_end = max(window_end, now + duration)
            # Allocate the whole window's KV growth up front: no event
            # fires inside the window (it ends at or before the queue
            # head), so nothing competes for these slots in the
            # meantime, and a crash wipes the pool wholesale either way.
            # A request finishing exactly at iteration n appends one
            # token fewer — the discrete path never extends KV on the
            # finishing iteration.
            for request in batch.requests:
                appends = n if (request.output_len - request.generated) > n else n - 1
                self._bulk_extend(request.request_id, batch, appends)
            batch.running = True
            batch.iteration += n
            if batch.exec_started_at == 0.0:
                batch.exec_started_at = now
            server.iteration_stats.append(
                BatchStats(
                    iteration=len(server.iteration_stats),
                    phase=Phase.DECODE,
                    batch_size=batch.batch_size,
                    total_tokens=batch.total_context,
                    dop=batch.group.dop if batch.group else 1,
                    duration=duration,
                    start_time=now,
                )
            )
            if server.trace.enabled:
                replica = getattr(server, "obs_replica", 0)
                server.trace.audit(
                    now, "fluid_window", component="scheduler",
                    replica=replica,
                    batch=batch.batch_id, iterations=n,
                    duration=round(duration, 4),
                )
                # Sub-divide each member's decode span: one
                # (window_start, window_end, tokens_advanced) entry per
                # window.  The list is shared by reference with the open
                # span's attrs, so a same-phase transition merges and
                # later appends land in the exported span.
                w_start = round(now, 6)
                w_end = round(now + duration, 6)
                for request in batch.requests:
                    left = request.output_len - request.generated
                    advanced = n if left > n else left
                    windows = self._span_windows.setdefault(
                        request.request_id, []
                    )
                    windows.append((w_start, w_end, advanced))
                    server.trace.transition(
                        request.request_id, "decode", now,
                        replica=replica, fluid_windows=windows,
                    )
            # Snapshot membership: requests joining at exactly the
            # window-end timestamp (a prefill completing there) must not
            # be credited with this window's tokens.
            launched.append((batch, n, [r.request_id for r in batch.requests]))
        if not launched:
            return False
        self.windows += 1
        self.iterations_absorbed += sum(n for _, n, _ in launched)
        server.sim.call_after(
            window_end - now,
            server._guarded(lambda: self._on_window_done(launched)),
            label="fluid_done",
        )
        return True

    @staticmethod
    def _planned_appends(batch, n: int) -> int:
        """KV slots a window of ``n`` iterations would append for a batch
        (requests finishing inside the window append one fewer)."""
        return sum(
            n if (request.output_len - request.generated) > n else n - 1
            for request in batch.requests
        )

    def _bulk_extend(self, request_id: int, batch, num_tokens: int) -> None:
        """Spread a request's window growth across the group's free slots.

        Total feasibility was established by the KV bound; greedily
        filling the most-free instance keeps shards roughly balanced,
        mirroring the per-token append-instance policy at window scale.
        """
        pool = self.server.pool
        pools = pool.pools
        ids = batch.instance_ids
        remaining = num_tokens
        while remaining > 0:
            target = max(ids, key=lambda i: pools[i].free)
            take = min(remaining, pools[target].free)
            if take <= 0:
                raise RuntimeError(
                    "fluid window KV pre-allocation overran the free-slot "
                    "bound — window sizing is inconsistent with the pool"
                )
            pool.extend(request_id, target, take)
            remaining -= take

    def _on_window_done(self, launched) -> None:
        server = self.server
        for batch, n, member_ids in launched:
            members = set(member_ids)
            for request in list(batch.requests):
                if request.request_id not in members:
                    continue
                request.generated += n
                server._generated_total += n
                if request.generated >= request.output_len:
                    self._span_windows.pop(request.request_id, None)
                    server._finish_request(request)
            batch.remove_finished()
            batch.running = False
            if not batch.requests:
                server._remove_batch(batch)
        server._request_tick()


def _stretch_time(k: int, d_start: float, slope: float) -> float:
    """Exact window time under the linear iteration-time shape:
    iteration i takes ``d_start + slope*i``, summed as a trapezoid."""
    return k * d_start + slope * (k * (k - 1) / 2)


def _max_iterations_within(budget: float, d_start: float, slope: float, cap: int) -> int:
    """Largest k <= cap with ``_stretch_time(k) <= budget``."""
    if budget <= 0 or d_start <= 0:
        return 0
    if slope <= 0:
        # Flat (or shrinking, which the roofline never produces): the
        # linear bound is conservative either way.
        return min(cap, int(budget / d_start))
    # Solve (slope/2)k^2 + (d_start - slope/2)k - budget = 0.  With b > 0
    # the textbook root (-b + sqrt(D))/slope cancels catastrophically for
    # tiny slopes; the conjugate form 2*budget/(b + sqrt(D)) is stable
    # and degrades gracefully to the linear budget/d_start answer.
    b = d_start - slope / 2
    disc = math.sqrt(b * b + 2 * slope * budget)
    if b > 0:
        k = 2 * budget / (b + disc)
    else:
        k = (disc - b) / slope
    return min(cap, int(k))
