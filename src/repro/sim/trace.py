"""Back-compat shim over the unified observability tracer.

``TraceRecorder`` grew into :class:`repro.obs.tracer.Tracer` — spans,
structured audit records, and the cheap ``enabled`` fast-path.  This
module keeps the old import path and constructor working: a
``TraceRecorder`` *is* a ``Tracer`` (audit records land in the same
``records`` list with the legacy ``TraceRecord`` shape), so existing
call sites, tests, and examples keep working unchanged while new code
imports from :mod:`repro.obs` directly.
"""

from __future__ import annotations

from repro.obs.tracer import AuditRecord, Tracer

#: The old record type is the new audit record (field-compatible).
TraceRecord = AuditRecord


class TraceRecorder(Tracer):
    """Legacy name + constructor signature for the unified tracer."""

    def __init__(
        self, enabled: bool = True, records: list[AuditRecord] | None = None
    ) -> None:
        super().__init__(enabled=enabled)
        if records is not None:
            self.records = records
