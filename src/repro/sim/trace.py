"""Structured trace recording for simulation runs.

Experiments need post-hoc visibility into what the scheduler did —
iteration boundaries, scaling actions, preemptions — without the serving
loop printf-ing.  ``TraceRecorder`` collects typed records cheaply and
renders them on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    time: float
    kind: str
    payload: dict[str, Any]


@dataclass
class TraceRecorder:
    """Append-only event trace with filtering helpers."""

    enabled: bool = True
    records: list[TraceRecord] = field(default_factory=list)

    def record(self, time: float, kind: str, **payload: Any) -> None:
        if not self.enabled:
            return
        self.records.append(TraceRecord(time=time, kind=kind, payload=payload))

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def kinds(self) -> set[str]:
        return {r.kind for r in self.records}

    def between(self, start: float, end: float) -> list[TraceRecord]:
        return [r for r in self.records if start <= r.time < end]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def render(self, limit: int = 50) -> str:
        """Human-readable tail of the trace."""
        lines = []
        for record in self.records[-limit:]:
            fields = " ".join(f"{k}={v}" for k, v in record.payload.items())
            lines.append(f"[{record.time:10.4f}] {record.kind:<18} {fields}")
        return "\n".join(lines)
