"""The simulation run loop.

Two layouts share one clock discipline:

* **Single calendar** (default): one :class:`~repro.sim.events.EventQueue`
  holds every event — the layout every single-server run uses, kept as
  the fast path with zero new work on its hot loop.
* **Sharded calendars** (:meth:`Simulator.create_shard`): each shard —
  one per fleet replica, with the simulator's own queue as shard 0 for
  the control plane — owns its events, and the run loop coordinates
  through a small top-level heap of per-shard head keys.  Pop cost
  drops from O(log total-events) to O(log own-shard events) +
  O(log shards), and each replica's calendar stays cache-local.

Sharding is **bit-identical** to the single calendar: every shard queue
draws seq numbers from one shared counter, so the global
``(time, priority, seq)`` order — and therefore the pop order, the
tie-breaks, and every downstream outcome — is exactly the single-heap
order (golden-gated in ``tests/test_sim_sharded.py``).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.sim.events import EventQueue, Timer


class Simulator:
    """A virtual clock plus one or more event calendars.

    Serving systems schedule callbacks with :meth:`call_at` /
    :meth:`call_after`; :meth:`run` drains the calendars in timestamp
    order.  The clock never goes backwards; scheduling in the past
    raises.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._stopped = False
        self._events_processed = 0
        # Sharded layout (armed lazily by create_shard): _shards[0] is
        # the simulator's own queue; _top is a heap of posted per-shard
        # head entries and _posted[s] is the entry this loop believes is
        # shard s's minimum.  Entries are the shard heaps' own
        # (time, priority, seq, event) tuples, shared by identity — the
        # top heap allocates nothing per event, and staleness checks are
        # single pointer compares.  Invariant: whenever shard s is
        # non-empty, _posted[s] is set and sorts <= its live head — so
        # the smallest posted entry that still *is* its shard's live
        # head is the global minimum.
        self._shards: list[EventQueue] = [self._queue]
        self._multi = False
        self._top: list[tuple] = []
        self._posted: list[tuple | None] = [None]

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def next_event_time(self) -> float | None:
        """Timestamp of the next live scheduled event (None when idle).

        The fluid stepper bounds its closed-form stretches with this:
        every transient it must not skip over — an arrival, a control
        tick, a fault, another batch's completion — is an already-queued
        event, so stopping at the horizon is conservative.  In sharded
        mode this is the minimum over every shard.
        """
        if not self._multi:
            return self._queue.peek_time()
        best = None
        for shard in self._shards:
            t = shard.peek_time()
            if t is not None and (best is None or t < best):
                best = t
        return best

    # ------------------------------------------------------------------
    # Sharded calendars
    # ------------------------------------------------------------------

    def create_shard(self) -> "ShardClock":
        """Open a new event calendar and return its clock facade.

        Fleet runs give each replica a shard so its events sift in a
        heap of its own; the simulator's original queue becomes shard 0
        and keeps the control plane (arrivals, control ticks, faults,
        steal deliveries).  Call before scheduling replica work.
        """
        if not self._multi:
            self._multi = True
            self._top = []
            self._posted = [None]
            self._repost(0)
        queue = EventQueue(counter=self._queue._counter)
        self._shards.append(queue)
        self._posted.append(None)
        shard_id = len(self._shards) - 1
        self._repost(shard_id)
        return ShardClock(self, shard_id, queue)

    def _repost(self, shard_id: int) -> None:
        """Post shard's live head entry to the top heap if not covered."""
        queue = self._shards[shard_id]
        queue.peek_time()  # clear lazily-cancelled heads first
        heap = queue._heap
        if heap:
            entry = heap[0]
            posted = self._posted[shard_id]
            if posted is None or entry < posted:
                self._posted[shard_id] = entry
                heapq.heappush(self._top, entry)

    def _notify(self, shard_id: int, entry: tuple) -> None:
        """A push landed on ``shard_id``; ``entry`` is its heap tuple."""
        posted = self._posted[shard_id]
        if posted is None or entry < posted:
            self._posted[shard_id] = entry
            heapq.heappush(self._top, entry)

    def _any_live_event(self) -> bool:
        for shard in self._shards:
            if shard.peek_time() is not None:
                return True
        return False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def call_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
        weak: bool = False,
    ) -> Timer:
        """Schedule ``action`` at absolute virtual time ``time``.

        ``weak`` events are pure observers: one popped with no other
        live event remaining is discarded instead of run, so it neither
        advances the clock nor keeps the run alive.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule at {time:.6f}, clock is at {self._now:.6f}")
        if self._multi:
            entry = self._queue.push_entry(
                time, action, priority=priority, label=label, weak=weak
            )
            self._notify(0, entry)
            return Timer(event=entry[3], queue=self._queue)
        event = self._queue.push(time, action, priority=priority, label=label, weak=weak)
        return Timer(event=event, queue=self._queue)

    def call_after(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
        weak: bool = False,
    ) -> Timer:
        """Schedule ``action`` after a relative delay."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(
            self._now + delay, action, priority=priority, label=label, weak=weak
        )

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Run loops
    # ------------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queues drain, ``until`` passes, or
        ``max_events`` fire.  Returns the final clock value.

        ``peek_time`` skips lazily-cancelled heads, so the ``until``
        comparison only ever sees live events: a dead timer beyond the
        bound can neither leave phantom work in the queue nor make the
        loop break on a timestamp that will never fire.
        """
        if self._multi:
            return self._run_sharded(until, max_events)
        self._stopped = False
        processed = 0
        queue = self._queue
        while not self._stopped:
            next_time = queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            event = queue.pop()
            if event.cancelled:
                # Cancelled timers are lazily discarded: they neither run
                # nor consume the caller's event budget, so a timer-heavy
                # trace cannot exhaust ``run_until_idle`` on no-ops.
                continue
            if event.weak and queue.peek_time() is None:
                # A trailing weak event (pure observer with nothing left
                # to observe) is discarded like a cancelled one: the
                # clock stays at the last real event.
                continue
            self._now = event.time
            event.action()
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self._now < until and queue.peek_time() is None:
            self._now = until
        return self._now

    def _run_sharded(self, until: float | None, max_events: int | None) -> float:
        """Sharded run loop: pop the globally-minimal head across shards.

        The top heap holds *candidate* minima.  An entry is executed
        only when it (a) still matches ``_posted`` for its shard — a
        smaller key posted later supersedes it — and (b) still matches
        the shard's live head — a cancelled head leaves a stale posted
        key, which is replaced by re-posting the live head.  Every
        non-empty shard always has a posted entry at or below its live
        head, so an entry passing both checks is the global minimum
        under the exact single-heap (time, priority, seq) order.
        """
        self._stopped = False
        processed = 0
        top = self._top
        posted = self._posted
        shards = self._shards
        heappop, heappush = heapq.heappop, heapq.heappush
        while not self._stopped:
            shard_id = -1
            while top:
                entry = top[0]
                event = entry[3]
                sid = event.shard
                if posted[sid] is not entry:
                    heappop(top)  # superseded by a smaller post
                    continue
                # Validate against the shard's live head: clear lazily-
                # cancelled heads, then one identity compare (the top
                # heap shares the shard heaps' tuples) decides staleness.
                queue = shards[sid]
                sheap = queue._heap
                while sheap and sheap[0][3].cancelled:
                    heappop(sheap)[3].popped = True
                    queue._cancelled -= 1
                if not sheap or sheap[0] is not entry:
                    # Head was cancelled; drop the stale entry and
                    # re-post the live head so the shard stays covered.
                    heappop(top)
                    posted[sid] = None
                    if sheap:
                        live = sheap[0]
                        posted[sid] = live
                        heappush(top, live)
                    continue
                shard_id = sid
                break
            if shard_id < 0:
                break  # every shard drained
            if until is not None and entry[0] > until:
                self._now = until
                break
            heappop(top)
            posted[shard_id] = None
            queue.pop()  # pops this same entry; marks the event popped
            # Cover the shard's next head before running the event: an
            # action that schedules nothing here must not strand it.
            sheap = queue._heap
            while sheap and sheap[0][3].cancelled:
                heappop(sheap)[3].popped = True
                queue._cancelled -= 1
            if sheap:
                live = sheap[0]
                posted[shard_id] = live
                heappush(top, live)
            if event.weak and not self._any_live_event():
                continue
            self._now = event.time
            event.action()
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self._now < until and not self._any_live_event():
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Drain every event; guard against runaway loops."""
        return self.run(max_events=max_events)


class ShardClock:
    """One shard's view of a sharded :class:`Simulator`.

    Quacks like the simulator for the APIs a replica server uses
    (``now`` / ``call_at`` / ``call_after`` / ``stop`` /
    ``events_processed`` / ``next_event_time``), but schedules onto its
    own calendar.  :meth:`next_event_time` is the replica-local horizon:
    the minimum of this shard's head and shard 0's — sound for fluid
    windows because anything another replica does can only reach this
    one through a control-plane (shard 0) event, and it automatically
    bounds windows by the next control tick.
    """

    __slots__ = ("_sim", "shard_id", "_queue")

    def __init__(self, sim: Simulator, shard_id: int, queue: EventQueue) -> None:
        self._sim = sim
        self.shard_id = shard_id
        self._queue = queue

    @property
    def now(self) -> float:
        return self._sim._now

    @property
    def events_processed(self) -> int:
        return self._sim._events_processed

    def next_event_time(self) -> float | None:
        """Replica-local horizon: own head vs the control plane's."""
        own = self._queue.peek_time()
        control = self._sim._shards[0].peek_time()
        if own is None:
            return control
        if control is None or own <= control:
            return own
        return control

    def call_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
        weak: bool = False,
    ) -> Timer:
        sim = self._sim
        if time < sim._now:
            raise ValueError(f"cannot schedule at {time:.6f}, clock is at {sim._now:.6f}")
        entry = self._queue.push_entry(
            time, action, priority=priority, label=label, weak=weak
        )
        event = entry[3]
        event.shard = self.shard_id
        sim._notify(self.shard_id, entry)
        return Timer(event=event, queue=self._queue)

    def call_after(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
        weak: bool = False,
    ) -> Timer:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(
            self._sim._now + delay, action, priority=priority, label=label, weak=weak
        )

    def stop(self) -> None:
        self._sim.stop()
