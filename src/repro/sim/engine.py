"""The simulation run loop."""

from __future__ import annotations

from typing import Callable

from repro.sim.events import EventQueue, Timer


class Simulator:
    """A virtual clock plus an event queue.

    Serving systems schedule callbacks with :meth:`call_at` /
    :meth:`call_after`; :meth:`run` drains the queue in timestamp order.
    The clock never goes backwards; scheduling in the past raises.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._stopped = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def next_event_time(self) -> float | None:
        """Timestamp of the next live scheduled event (None when idle).

        The fluid stepper bounds its closed-form stretches with this:
        every transient it must not skip over — an arrival, a control
        tick, a fault, another batch's completion — is an already-queued
        event, so stopping at the horizon is conservative.
        """
        return self._queue.peek_time()

    def call_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
        weak: bool = False,
    ) -> Timer:
        """Schedule ``action`` at absolute virtual time ``time``.

        ``weak`` events are pure observers: one popped with no other
        live event remaining is discarded instead of run, so it neither
        advances the clock nor keeps the run alive.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule at {time:.6f}, clock is at {self._now:.6f}")
        event = self._queue.push(time, action, priority=priority, label=label, weak=weak)
        return Timer(event=event, queue=self._queue)

    def call_after(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
        weak: bool = False,
    ) -> Timer:
        """Schedule ``action`` after a relative delay."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(
            self._now + delay, action, priority=priority, label=label, weak=weak
        )

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue drains, ``until`` passes, or
        ``max_events`` fire.  Returns the final clock value.

        ``peek_time`` skips lazily-cancelled heads, so the ``until``
        comparison only ever sees live events: a dead timer beyond the
        bound can neither leave phantom work in the queue nor make the
        loop break on a timestamp that will never fire.
        """
        self._stopped = False
        processed = 0
        queue = self._queue
        while not self._stopped:
            next_time = queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            event = queue.pop()
            if event.cancelled:
                # Cancelled timers are lazily discarded: they neither run
                # nor consume the caller's event budget, so a timer-heavy
                # trace cannot exhaust ``run_until_idle`` on no-ops.
                continue
            if event.weak and queue.peek_time() is None:
                # A trailing weak event (pure observer with nothing left
                # to observe) is discarded like a cancelled one: the
                # clock stays at the last real event.
                continue
            self._now = event.time
            event.action()
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self._now < until and queue.peek_time() is None:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Drain every event; guard against runaway loops."""
        return self.run(max_events=max_events)
