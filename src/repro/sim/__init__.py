"""Discrete-event simulation substrate.

Serving systems in this reproduction are event-driven processes over a
shared virtual clock: request arrivals and iteration completions are
events; schedulers react to events and schedule the next ones.  The core
is deliberately small — a heap-ordered event queue and a run loop — so
the serving logic above it stays readable.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.trace import TraceRecorder

__all__ = ["Event", "EventQueue", "Simulator", "TraceRecorder"]
