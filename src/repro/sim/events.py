"""Event primitives for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, priority, seq): ties at the same timestamp resolve
    by explicit priority, then insertion order — deterministic replay is a
    hard requirement for reproducible experiments.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """A monotonic min-heap of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class Timer:
    """Cancellable handle returned by :meth:`Simulator.call_at`."""

    event: Event
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True
        # The event stays in the heap (removal would be O(n)); flag it so
        # the run loop discards it without executing or counting it.
        object.__setattr__(self.event, "_cancelled", True)


def make_noop() -> Callable[[], None]:
    """A do-nothing action, useful as a wake-up tick."""

    def _noop() -> None:
        return None

    return _noop
