"""Event primitives for the discrete-event simulator.

Hot-path layout: the heap stores plain ``(time, priority, seq, event)``
tuples so every sift comparison runs in C on builtins instead of calling
a dataclass ``__lt__``, and :class:`Event` / :class:`Timer` carry
``__slots__`` — at millions of events per run, the per-event dict was a
measurable share of both wall time and peak RSS.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

# Heap entry: (time, priority, seq, event).  The first three fields are
# the deterministic total order; the event rides along as payload.
_HeapEntry = tuple


class Event:
    """A scheduled callback.

    Ordering is (time, priority, seq): ties at the same timestamp resolve
    by explicit priority, then insertion order — deterministic replay is a
    hard requirement for reproducible experiments.
    """

    __slots__ = (
        "time", "priority", "seq", "action", "label", "cancelled", "popped",
        "weak", "shard",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[[], None],
        label: str = "",
        weak: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False
        self.popped = False
        # A weak event runs only if another live event remains queued:
        # popped last, it is discarded without advancing the clock, so
        # pure observers (telemetry samplers) never stretch a run's
        # makespan past its final real event.
        self.weak = weak
        # Which calendar holds this event in a sharded simulator (0 =
        # the simulator's own queue).  The sharded run loop shares the
        # heap-entry tuples between the shard heaps and its top-level
        # heap — allocation-free coordination — and reads the owning
        # shard back off the event.
        self.shard = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("popped" if self.popped else "live")
        return f"Event(time={self.time!r}, priority={self.priority}, seq={self.seq}, {state})"


class EventQueue:
    """A monotonic min-heap of events.

    Cancelled events are flagged in place (heap removal is O(n)) and
    lazily discarded on pop or peek; once they outnumber the live events
    the heap is compacted in one O(n) rebuild, so long timer-heavy runs
    keep their pop cost at O(log live) instead of O(log total-ever-
    cancelled).
    """

    # Compaction only kicks in past this heap size: tiny heaps are cheap
    # to pop through regardless, and the threshold keeps rebuild cost
    # amortised O(1) per cancellation.
    _COMPACT_MIN = 64

    def __init__(self, counter: "itertools.count | None" = None) -> None:
        self._heap: list[_HeapEntry] = []
        # Sharded simulators pass one shared counter to every shard's
        # queue: seq numbers are then allocated in global program order,
        # so the (time, priority, seq) total order — and therefore the
        # pop order — is identical to a single queue holding all events.
        self._counter = counter if counter is not None else itertools.count()
        self._cancelled = 0

    def push(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
        weak: bool = False,
    ) -> Event:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time, priority, next(self._counter), action, label, weak)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        return event

    def push_entry(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
        weak: bool = False,
    ) -> _HeapEntry:
        """:meth:`push`, but returns the heap entry tuple itself.

        The sharded run loop re-posts this exact tuple into its
        top-level heap, so cross-calendar coordination allocates nothing
        beyond what a single-heap push already would — per-event
        allocation parity keeps GC pressure (a measurable fleet-scale
        cost) identical to the unsharded engine.
        """
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time, priority, next(self._counter), action, label, weak)
        entry = (time, priority, event.seq, event)
        heapq.heappush(self._heap, entry)
        return entry

    def discard(self, event: Event) -> None:
        """Cancel a scheduled event; it will never run nor count.

        The heap entry stays until popped or compacted away.  Discarding
        an event that already left the heap (it ran, or was lazily
        dropped) is a no-op — the dead-weight counter only tracks
        cancelled events still occupying heap slots.
        """
        if event.cancelled or event.popped:
            return
        event.cancelled = True
        self._cancelled += 1
        if self._cancelled > len(self._heap) // 2 and len(self._heap) >= self._COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors."""
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        event = heapq.heappop(self._heap)[3]
        event.popped = True
        if event.cancelled:
            self._cancelled -= 1
        return event

    def peek_time(self) -> float | None:
        """Timestamp of the next *live* event (None when none remain).

        Lazily-cancelled heads are dropped on the way: a dead timer's
        timestamp must never leak into ``Simulator.run``'s ``until``
        comparison (or any other consumer's horizon decision), so the
        head this reports is always a live event.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)[3].popped = True
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def peek_key(self) -> tuple | None:
        """Full ``(time, priority, seq)`` key of the next live event.

        Same lazy-cancelled-head cleanup as :meth:`peek_time`; the
        sharded run loop needs the whole key so per-shard heads compare
        under the exact single-heap tie-break order.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)[3].popped = True
            self._cancelled -= 1
        if not heap:
            return None
        head = heap[0]
        return (head[0], head[1], head[2])

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Timer:
    """Cancellable handle returned by :meth:`Simulator.call_at`.

    Cancellation always routes through the owning queue —
    :meth:`EventQueue.discard` is the single mechanism, so every
    cancelled event participates in the dead-weight accounting and
    compaction.
    """

    __slots__ = ("event", "queue", "cancelled")

    def __init__(self, event: Event, queue: EventQueue, cancelled: bool = False) -> None:
        self.event = event
        self.queue = queue
        self.cancelled = cancelled

    def cancel(self) -> None:
        self.cancelled = True
        self.queue.discard(self.event)

    @property
    def active(self) -> bool:
        """Still scheduled: neither cancelled nor already fired.

        The fleet controller uses this to drop spent lifecycle timers
        from its ledger instead of cancelling events that already ran.
        """
        return not self.cancelled and not self.event.popped


def make_noop() -> Callable[[], None]:
    """A do-nothing action, useful as a wake-up tick."""

    def _noop() -> None:
        return None

    return _noop
