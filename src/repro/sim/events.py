"""Event primitives for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, priority, seq): ties at the same timestamp resolve
    by explicit priority, then insertion order — deterministic replay is a
    hard requirement for reproducible experiments.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """A monotonic min-heap of events.

    Cancelled events are flagged in place (heap removal is O(n)) and
    lazily discarded on pop; once they outnumber the live events the heap
    is compacted in one O(n) rebuild, so long timer-heavy runs keep their
    pop cost at O(log live) instead of O(log total-ever-cancelled).
    """

    # Compaction only kicks in past this heap size: tiny heaps are cheap
    # to pop through regardless, and the threshold keeps rebuild cost
    # amortised O(1) per cancellation.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._cancelled = 0

    def push(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def discard(self, event: Event) -> None:
        """Cancel a scheduled event; it will never run nor count.

        The heap entry stays until popped or compacted away.  Discarding
        an event that already left the heap (it ran, or was lazily
        dropped) is a no-op — the dead-weight counter only tracks
        cancelled events still occupying heap slots.
        """
        if getattr(event, "_cancelled", False) or getattr(event, "_popped", False):
            return
        object.__setattr__(event, "_cancelled", True)
        self._cancelled += 1
        if self._cancelled > len(self._heap) // 2 and len(self._heap) >= self._COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors."""
        self._heap = [e for e in self._heap if not getattr(e, "_cancelled", False)]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        event = heapq.heappop(self._heap)
        object.__setattr__(event, "_popped", True)
        if getattr(event, "_cancelled", False):
            self._cancelled -= 1
        return event

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class Timer:
    """Cancellable handle returned by :meth:`Simulator.call_at`.

    Cancellation always routes through the owning queue —
    :meth:`EventQueue.discard` is the single mechanism, so every
    cancelled event participates in the dead-weight accounting and
    compaction.
    """

    event: Event
    queue: EventQueue
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True
        self.queue.discard(self.event)

    @property
    def active(self) -> bool:
        """Still scheduled: neither cancelled nor already fired.

        The fleet controller uses this to drop spent lifecycle timers
        from its ledger instead of cancelling events that already ran.
        """
        return not self.cancelled and not getattr(self.event, "_popped", False)


def make_noop() -> Callable[[], None]:
    """A do-nothing action, useful as a wake-up tick."""

    def _noop() -> None:
        return None

    return _noop
