"""Shared value types used across the LoongServe reproduction.

The vocabulary here follows the paper: a *request* flows through a *prefill*
phase (all input tokens processed in one iteration) and then a *decoding*
phase (one output token per iteration).  Requests are grouped into *batches*,
each batch is executed by a *parallel group* of elastic instances with some
*degree of parallelism* (DoP).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class Phase(enum.Enum):
    """Execution phase of a request."""

    PREFILL = "prefill"
    DECODE = "decode"


class RequestState(enum.Enum):
    """Lifecycle state of a request inside a serving system.

    ``PENDING``    — arrived, waiting in the global queue.
    ``PREFILLING`` — selected for the current prefill iteration.
    ``DECODING``   — producing output tokens, one per iteration.
    ``PREEMPTED``  — evicted from GPU memory; must re-run prefill.
    ``FINISHED``   — all output tokens produced.
    """

    PENDING = "pending"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    PREEMPTED = "preempted"
    FINISHED = "finished"


_request_ids = itertools.count()


def next_request_id() -> int:
    """Return a process-unique monotonically increasing request id."""
    return next(_request_ids)


@dataclass(slots=True)
class Request:
    """A single inference request.

    ``input_len`` and ``output_len`` are token counts.  ``max_tokens`` is the
    user-declared output cap used by the scheduler's eviction-avoidance
    estimate (§5.1); it defaults to the true output length, which models a
    well-behaved client.

    Multi-turn sessions (``repro.sessions``): ``session_id``/``turn`` tag a
    request as turn ``turn`` of one conversation, ``token_ids`` carries its
    full prompt so a prefix-KV cache can match it against resident
    conversation state, and ``output_token_ids`` the (pre-sampled) answer
    the next turn's prompt embeds.  ``cached_prefix_len`` is runtime state
    set by the scheduler: how many leading prompt tokens were found
    resident, so the prefill processes (and allocates) only the uncached
    suffix.

    QoS (``repro.qos``): ``qos`` is the workload-assigned SLO class name
    (``interactive``/``standard``/``batch``; ``None`` = untagged, served
    with default semantics).  ``deadline``/``downgraded_to`` are runtime
    state written by a QoS-armed scheduler: the absolute completion
    deadline set at admission, and the class the admission controller
    renegotiated the request down to (the workload tag is never
    overwritten, so per-class reporting stays anchored to what the
    client asked for).  ``on_finish`` is an optional completion hook
    (called with the finish time) used by closed-loop workload drivers
    to schedule a session's next turn.
    """

    request_id: int
    input_len: int
    output_len: int
    arrival_time: float = 0.0
    max_tokens: int | None = None
    session_id: int | None = None
    turn: int = 0
    token_ids: tuple[int, ...] | None = None
    output_token_ids: tuple[int, ...] | None = None
    qos: str | None = None

    state: RequestState = RequestState.PENDING
    generated: int = 0
    cached_prefix_len: int = 0
    deadline: float | None = None
    downgraded_to: str | None = None
    on_finish: object | None = field(default=None, repr=False, compare=False)

    prefill_start: float | None = None
    prefill_end: float | None = None
    finish_time: float | None = None
    first_token_time: float | None = None
    preemptions: int = 0

    def __post_init__(self) -> None:
        if self.input_len <= 0:
            raise ValueError(f"input_len must be positive, got {self.input_len}")
        if self.output_len <= 0:
            raise ValueError(f"output_len must be positive, got {self.output_len}")
        if self.token_ids is not None and len(self.token_ids) != self.input_len:
            raise ValueError(
                f"token_ids carries {len(self.token_ids)} tokens but "
                f"input_len is {self.input_len}"
            )
        if (
            self.output_token_ids is not None
            and len(self.output_token_ids) != self.output_len
        ):
            raise ValueError(
                f"output_token_ids carries {len(self.output_token_ids)} tokens "
                f"but output_len is {self.output_len}"
            )
        if self.max_tokens is None:
            self.max_tokens = self.output_len

    @property
    def current_len(self) -> int:
        """Tokens currently resident in the KV cache for this request."""
        return self.input_len + self.generated

    @property
    def max_total_len(self) -> int:
        """Worst-case total sequence length (input + declared output cap)."""
        return self.input_len + (self.max_tokens or self.output_len)

    @property
    def prefill_tokens(self) -> int:
        """Tokens the next prefill iteration must actually process.

        A matched prefix (``cached_prefix_len``) is already resident in
        the KV pool, so only the uncached suffix is computed.  Equals
        ``current_len`` whenever no prefix cache is in play.
        """
        return self.current_len - self.cached_prefix_len

    @property
    def kv_demand(self) -> int:
        """New KV slots a prefill allocates: the uncached suffix plus the
        first generated token (the cached prefix keeps its own slots)."""
        return self.prefill_tokens + 1

    @property
    def future_kv_demand(self) -> int:
        """Worst-case *new* slots this request will ever hold (the §5.1
        eviction-avoidance reserve, net of the cached prefix)."""
        return self.max_total_len + 1 - self.cached_prefix_len

    @property
    def effective_qos(self) -> str | None:
        """The class the request is currently served under (a downgrade
        renegotiates service, the workload tag in ``qos`` stays)."""
        return self.downgraded_to or self.qos

    @property
    def finished(self) -> bool:
        return self.state == RequestState.FINISHED

    @property
    def phase(self) -> Phase:
        return Phase.PREFILL if self.generated == 0 else Phase.DECODE

    def record_first_token(self, now: float) -> None:
        if self.first_token_time is None:
            self.first_token_time = now

    # -- derived latency metrics -------------------------------------------

    @property
    def end_to_end_latency(self) -> float:
        """Arrival to completion, in seconds.  Requires ``finished``."""
        if self.finish_time is None:
            raise ValueError(f"request {self.request_id} not finished")
        return self.finish_time - self.arrival_time

    @property
    def prefill_latency(self) -> float:
        """Arrival to the end of the (last) prefill iteration."""
        if self.prefill_end is None:
            raise ValueError(f"request {self.request_id} never prefilled")
        return self.prefill_end - self.arrival_time

    @property
    def decode_latency(self) -> float:
        """Time spent between prefill completion and final token."""
        if self.finish_time is None or self.prefill_end is None:
            raise ValueError(f"request {self.request_id} not finished")
        return self.finish_time - self.prefill_end

    @property
    def normalized_latency(self) -> float:
        """End-to-end latency divided by total sequence length (s/token)."""
        return self.end_to_end_latency / (self.input_len + self.output_len)

    @property
    def normalized_input_latency(self) -> float:
        """Prefill latency divided by input length (s/token)."""
        return self.prefill_latency / self.input_len

    @property
    def normalized_output_latency(self) -> float:
        """Decode latency divided by output length (s/token)."""
        return self.decode_latency / self.output_len


@dataclass(frozen=True, slots=True)
class BatchStats:
    """Summary of one executed iteration, used for accounting and traces."""

    iteration: int
    phase: Phase
    batch_size: int
    total_tokens: int
    dop: int
    duration: float
    start_time: float


@dataclass(slots=True)
class ScalingEvent:
    """A recorded elastic scaling action (for the Figure 13 frequency plot)."""

    time: float
    kind: str  # "scale_up" | "scale_down"
    group_before: tuple[int, ...]
    group_after: tuple[int, ...]
    batch_size: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("scale_up", "scale_down"):
            raise ValueError(f"unknown scaling kind {self.kind!r}")


@dataclass
class ServeResult:
    """Output of one serving-system run over a workload trace.

    ``cache_stats`` is populated (as a plain counter dict) by servers
    running with a prefix-KV cache; ``None`` otherwise.  ``qos_stats``
    is the per-class admission/preemption ledger (class name -> counter
    dict) written by QoS-armed servers; ``None`` otherwise.  ``obs``
    carries the run's :class:`repro.obs.observe.Observability` bundle
    (spans, audit log, telemetry) when one was attached; ``None`` keeps
    observability-off runs byte-identical to prior builds.
    """

    system: str
    requests: list[Request] = field(default_factory=list)
    scaling_events: list[ScalingEvent] = field(default_factory=list)
    iteration_stats: list[BatchStats] = field(default_factory=list)
    makespan: float = 0.0
    aborted: list[Request] = field(default_factory=list)
    cache_stats: dict[str, float] | None = None
    qos_stats: dict[str, dict[str, float]] | None = None
    obs: object | None = None

    @property
    def finished_requests(self) -> list[Request]:
        return [r for r in self.requests if r.finished]

    @property
    def completed_fraction(self) -> float:
        if not self.requests:
            return 0.0
        return len(self.finished_requests) / len(self.requests)
