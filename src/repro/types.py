"""Shared value types used across the LoongServe reproduction.

The vocabulary here follows the paper: a *request* flows through a *prefill*
phase (all input tokens processed in one iteration) and then a *decoding*
phase (one output token per iteration).  Requests are grouped into *batches*,
each batch is executed by a *parallel group* of elastic instances with some
*degree of parallelism* (DoP).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class Phase(enum.Enum):
    """Execution phase of a request."""

    PREFILL = "prefill"
    DECODE = "decode"


class RequestState(enum.Enum):
    """Lifecycle state of a request inside a serving system.

    ``PENDING``    — arrived, waiting in the global queue.
    ``PREFILLING`` — selected for the current prefill iteration.
    ``DECODING``   — producing output tokens, one per iteration.
    ``PREEMPTED``  — evicted from GPU memory; must re-run prefill.
    ``FINISHED``   — all output tokens produced.
    """

    PENDING = "pending"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    PREEMPTED = "preempted"
    FINISHED = "finished"


_request_ids = itertools.count()


def next_request_id() -> int:
    """Return a process-unique monotonically increasing request id."""
    return next(_request_ids)


@dataclass
class Request:
    """A single inference request.

    ``input_len`` and ``output_len`` are token counts.  ``max_tokens`` is the
    user-declared output cap used by the scheduler's eviction-avoidance
    estimate (§5.1); it defaults to the true output length, which models a
    well-behaved client.
    """

    request_id: int
    input_len: int
    output_len: int
    arrival_time: float = 0.0
    max_tokens: int | None = None

    state: RequestState = RequestState.PENDING
    generated: int = 0

    prefill_start: float | None = None
    prefill_end: float | None = None
    finish_time: float | None = None
    first_token_time: float | None = None
    preemptions: int = 0

    def __post_init__(self) -> None:
        if self.input_len <= 0:
            raise ValueError(f"input_len must be positive, got {self.input_len}")
        if self.output_len <= 0:
            raise ValueError(f"output_len must be positive, got {self.output_len}")
        if self.max_tokens is None:
            self.max_tokens = self.output_len

    @property
    def current_len(self) -> int:
        """Tokens currently resident in the KV cache for this request."""
        return self.input_len + self.generated

    @property
    def max_total_len(self) -> int:
        """Worst-case total sequence length (input + declared output cap)."""
        return self.input_len + (self.max_tokens or self.output_len)

    @property
    def finished(self) -> bool:
        return self.state == RequestState.FINISHED

    @property
    def phase(self) -> Phase:
        return Phase.PREFILL if self.generated == 0 else Phase.DECODE

    def record_first_token(self, now: float) -> None:
        if self.first_token_time is None:
            self.first_token_time = now

    # -- derived latency metrics -------------------------------------------

    @property
    def end_to_end_latency(self) -> float:
        """Arrival to completion, in seconds.  Requires ``finished``."""
        if self.finish_time is None:
            raise ValueError(f"request {self.request_id} not finished")
        return self.finish_time - self.arrival_time

    @property
    def prefill_latency(self) -> float:
        """Arrival to the end of the (last) prefill iteration."""
        if self.prefill_end is None:
            raise ValueError(f"request {self.request_id} never prefilled")
        return self.prefill_end - self.arrival_time

    @property
    def decode_latency(self) -> float:
        """Time spent between prefill completion and final token."""
        if self.finish_time is None or self.prefill_end is None:
            raise ValueError(f"request {self.request_id} not finished")
        return self.finish_time - self.prefill_end

    @property
    def normalized_latency(self) -> float:
        """End-to-end latency divided by total sequence length (s/token)."""
        return self.end_to_end_latency / (self.input_len + self.output_len)

    @property
    def normalized_input_latency(self) -> float:
        """Prefill latency divided by input length (s/token)."""
        return self.prefill_latency / self.input_len

    @property
    def normalized_output_latency(self) -> float:
        """Decode latency divided by output length (s/token)."""
        return self.decode_latency / self.output_len


@dataclass(frozen=True)
class BatchStats:
    """Summary of one executed iteration, used for accounting and traces."""

    iteration: int
    phase: Phase
    batch_size: int
    total_tokens: int
    dop: int
    duration: float
    start_time: float


@dataclass
class ScalingEvent:
    """A recorded elastic scaling action (for the Figure 13 frequency plot)."""

    time: float
    kind: str  # "scale_up" | "scale_down"
    group_before: tuple[int, ...]
    group_after: tuple[int, ...]
    batch_size: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("scale_up", "scale_down"):
            raise ValueError(f"unknown scaling kind {self.kind!r}")


@dataclass
class ServeResult:
    """Output of one serving-system run over a workload trace."""

    system: str
    requests: list[Request] = field(default_factory=list)
    scaling_events: list[ScalingEvent] = field(default_factory=list)
    iteration_stats: list[BatchStats] = field(default_factory=list)
    makespan: float = 0.0
    aborted: list[Request] = field(default_factory=list)

    @property
    def finished_requests(self) -> list[Request]:
        return [r for r in self.requests if r.finished]

    @property
    def completed_fraction(self) -> float:
        if not self.requests:
            return 0.0
        return len(self.finished_requests) / len(self.requests)
