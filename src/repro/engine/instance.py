"""Functional elastic instances: token-granularity KV shard storage.

A :class:`FunctionalInstance` is one SP rank of the functional engine.
Its KV pool stores, per request and per layer, an arbitrary *set* of
token positions with their K/V tensors — the token-granularity,
no-locality-constraint storage model of the unified distributed KV cache
pool (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class KVShard:
    """K/V tensors for a set of global token positions of one layer.

    ``positions`` need not be contiguous or sorted — attention masks by
    explicit position, so any token subset is a valid shard.
    """

    positions: np.ndarray  # (n,) int
    k: np.ndarray  # (n, kv_heads, head_dim)
    v: np.ndarray  # (n, kv_heads, head_dim)

    @property
    def num_tokens(self) -> int:
        return int(self.positions.shape[0])

    @classmethod
    def empty(cls, num_kv_heads: int, head_dim: int) -> KVShard:
        return cls(
            positions=np.zeros(0, dtype=np.int64),
            k=np.zeros((0, num_kv_heads, head_dim)),
            v=np.zeros((0, num_kv_heads, head_dim)),
        )

    def append(self, positions: np.ndarray, k: np.ndarray, v: np.ndarray) -> None:
        if positions.shape[0] != k.shape[0] or k.shape != v.shape:
            raise ValueError("positions/k/v shapes disagree")
        overlap = np.intersect1d(self.positions, positions)
        if overlap.size:
            raise ValueError(f"positions {overlap.tolist()} already stored in shard")
        self.positions = np.concatenate([self.positions, positions.astype(np.int64)])
        self.k = np.concatenate([self.k, k], axis=0)
        self.v = np.concatenate([self.v, v], axis=0)


@dataclass
class FunctionalInstance:
    """One SP rank: a KV pool keyed by (request, layer)."""

    instance_id: int
    num_layers: int
    num_kv_heads: int
    head_dim: int
    _shards: dict[int, list[KVShard]] = field(default_factory=dict)

    def _layers_of(self, request_id: int) -> list[KVShard]:
        if request_id not in self._shards:
            self._shards[request_id] = [
                KVShard.empty(self.num_kv_heads, self.head_dim)
                for _ in range(self.num_layers)
            ]
        return self._shards[request_id]

    def store(
        self,
        request_id: int,
        layer: int,
        positions: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
    ) -> None:
        """Save KV tensors for some token positions of one layer."""
        if not 0 <= layer < self.num_layers:
            raise ValueError(f"layer {layer} out of range")
        self._layers_of(request_id)[layer].append(positions, k, v)

    def shard(self, request_id: int, layer: int) -> KVShard:
        """This instance's KV shard (possibly empty) for a request+layer."""
        layers = self._shards.get(request_id)
        if layers is None:
            return KVShard.empty(self.num_kv_heads, self.head_dim)
        return layers[layer]

    def tokens_held(self, request_id: int) -> int:
        """Token count of the request's shard (layer 0 is authoritative)."""
        layers = self._shards.get(request_id)
        return layers[0].num_tokens if layers else 0

    def positions_held(self, request_id: int) -> np.ndarray:
        layers = self._shards.get(request_id)
        if not layers:
            return np.zeros(0, dtype=np.int64)
        return np.sort(layers[0].positions)

    def has_request(self, request_id: int) -> bool:
        return request_id in self._shards and self._shards[request_id][0].num_tokens > 0

    def evict(self, request_id: int) -> int:
        """Drop a request's shards; returns tokens freed."""
        layers = self._shards.pop(request_id, None)
        return layers[0].num_tokens if layers else 0

    @property
    def total_tokens(self) -> int:
        return sum(layers[0].num_tokens for layers in self._shards.values())

    @property
    def resident_requests(self) -> list[int]:
        return sorted(r for r in self._shards if self._shards[r][0].num_tokens > 0)


def group_placement(
    instances: list[FunctionalInstance], request_id: int
) -> dict[int, int]:
    """Observed placement of a request across instances (id -> tokens)."""
    return {
        inst.instance_id: inst.tokens_held(request_id)
        for inst in instances
        if inst.tokens_held(request_id) > 0
    }
