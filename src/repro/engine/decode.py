"""Distributed decoding: single- and multi-master (§4.2, Figure 8).

One decode step of a batch proceeds per layer as:

1. Each request's **master** instance projects Q/K/V for the new token and
   appends K/V to its *local* shard (newly generated KV never migrates).
2. The master sends the query to every instance holding KV for the
   request; each computes partial attention over its local shard and
   returns an (m, l, acc) triple.
3. The master reduces the partials (online-softmax merge), applies the
   output projection, residual, and FFN — linear layers run only on
   masters, which is why multi-master helps when decode is compute-bound.

Query/partial-result messages are counted so tests can check the claimed
communication pattern (no KV movement, only O(hidden) per token).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.instance import FunctionalInstance
from repro.engine.softmax import OnlineSoftmax
from repro.engine.weights import TransformerWeights
from repro.engine.reference import ReferenceTransformer, expand_kv_heads, merge_heads


@dataclass
class DecodeStepResult:
    """Outputs of one distributed decode iteration."""

    hidden: dict[int, np.ndarray]  # request id -> output hidden state
    query_messages: int  # cross-instance query/partial exchanges
    kv_migrated_tokens: int  # always 0 — the mechanism's guarantee


@dataclass
class DistributedDecoder:
    """Drives decode iterations for a parallel group of instances."""

    weights: TransformerWeights
    instances: list[FunctionalInstance]
    _reference: ReferenceTransformer = field(init=False)

    def __post_init__(self) -> None:
        if not self.instances:
            raise ValueError("need at least one instance")
        self._reference = ReferenceTransformer(self.weights)

    def _instance_by_id(self, instance_id: int) -> FunctionalInstance:
        for inst in self.instances:
            if inst.instance_id == instance_id:
                return inst
        raise KeyError(f"instance {instance_id} not in group")

    def request_length(self, request_id: int) -> int:
        """Total tokens of a request across the group's shards."""
        return sum(inst.tokens_held(request_id) for inst in self.instances)

    def decode_step(
        self,
        inputs: dict[int, np.ndarray],
        masters: dict[int, int],
    ) -> DecodeStepResult:
        """One iteration over a batch.

        ``inputs`` maps request id -> the new token's embedding (hidden,).
        ``masters`` maps request id -> master *instance id*.  Multi-master
        decoding is simply a ``masters`` map with more than one distinct
        value.
        """
        w = self.weights
        missing = set(inputs) - set(masters)
        if missing:
            raise ValueError(f"requests {sorted(missing)} have no master assigned")

        query_messages = 0
        hidden: dict[int, np.ndarray] = {}
        positions: dict[int, int] = {}
        for request_id, x_t in inputs.items():
            if x_t.shape != (w.hidden_size,):
                raise ValueError(
                    f"request {request_id}: expected ({w.hidden_size},), got {x_t.shape}"
                )
            hidden[request_id] = x_t[None, :]
            positions[request_id] = self.request_length(request_id)

        for layer_idx, layer in enumerate(w.layers):
            for request_id in inputs:
                master = self._instance_by_id(masters[request_id])
                pos = positions[request_id]
                pos_array = np.array([pos])
                q, k, v = self._reference.project_qkv(
                    layer, hidden[request_id], pos_array
                )
                # New KV is stored on the master — never migrated (§4.2).
                master.store(request_id, layer_idx, pos_array, k, v)

                accumulator = OnlineSoftmax(1, w.num_heads, w.head_dim)
                for inst in self.instances:
                    shard = inst.shard(request_id, layer_idx)
                    if shard.num_tokens == 0:
                        continue
                    partial = OnlineSoftmax(1, w.num_heads, w.head_dim)
                    partial.update(
                        q,
                        expand_kv_heads(shard.k, w.group_size),
                        expand_kv_heads(shard.v, w.group_size),
                        pos_array,
                        shard.positions,
                    )
                    if inst.instance_id != master.instance_id:
                        query_messages += 2  # query out, partial back
                    accumulator.merge_partial(*partial.partial())

                attn = accumulator.finalize()
                h = hidden[request_id] + merge_heads(attn) @ layer.wo
                h = h + self._reference.ffn(layer, h)
                hidden[request_id] = h

        outputs = {rid: h[0] for rid, h in hidden.items()}
        return DecodeStepResult(
            hidden=outputs, query_messages=query_messages, kv_migrated_tokens=0
        )

    def scale_up(self, new_instances: list[FunctionalInstance]) -> None:
        """Add instances to the group — no KV moves, they just join."""
        known = {inst.instance_id for inst in self.instances}
        for inst in new_instances:
            if inst.instance_id in known:
                raise ValueError(f"instance {inst.instance_id} already in group")
            self.instances.append(inst)

    def placement_of(self, request_id: int) -> dict[int, int]:
        """Observed token placement of a request across the group."""
        return {
            inst.instance_id: inst.tokens_held(request_id)
            for inst in self.instances
            if inst.tokens_held(request_id) > 0
        }
