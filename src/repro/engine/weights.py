"""Deterministic random weights for the functional transformer.

The functional engine validates *mechanisms*, not model quality, so
weights are seeded Gaussians scaled for numerical stability.  Shapes
follow the Llama architecture (RMSNorm, RoPE, SwiGLU FFN, optional GQA),
which is the architecture of the paper's evaluation model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class LayerWeights:
    """One transformer layer's parameters."""

    wq: np.ndarray  # (d, n_heads * head_dim)
    wk: np.ndarray  # (d, n_kv_heads * head_dim)
    wv: np.ndarray  # (d, n_kv_heads * head_dim)
    wo: np.ndarray  # (n_heads * head_dim, d)
    w_gate: np.ndarray  # (d, ffn)
    w_up: np.ndarray  # (d, ffn)
    w_down: np.ndarray  # (ffn, d)
    attn_norm: np.ndarray  # (d,)
    ffn_norm: np.ndarray  # (d,)


@dataclass(frozen=True)
class TransformerWeights:
    """A complete toy decoder: config plus per-layer weights."""

    hidden_size: int
    num_heads: int
    num_kv_heads: int
    ffn_hidden_size: int
    num_layers: int
    layers: tuple[LayerWeights, ...] = field(default=())
    rope_base: float = 10_000.0
    dtype: np.dtype = np.dtype(np.float64)

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must divide num_heads")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError("num_kv_heads must divide num_heads")
        if len(self.layers) != self.num_layers:
            raise ValueError(
                f"expected {self.num_layers} layer weight sets, got {len(self.layers)}"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def group_size(self) -> int:
        """Query heads per KV head (1 for MHA, num_heads for MQA)."""
        return self.num_heads // self.num_kv_heads

    @classmethod
    def random(
        cls,
        hidden_size: int = 32,
        num_heads: int = 4,
        num_kv_heads: int | None = None,
        ffn_hidden_size: int | None = None,
        num_layers: int = 2,
        seed: int = 0,
        dtype: np.dtype = np.dtype(np.float64),
    ) -> TransformerWeights:
        """Seeded random weights with 1/sqrt(d) scaling."""
        num_kv_heads = num_kv_heads if num_kv_heads is not None else num_heads
        ffn_hidden_size = ffn_hidden_size if ffn_hidden_size is not None else 3 * hidden_size
        head_dim = hidden_size // num_heads
        kv_width = num_kv_heads * head_dim
        rng = np.random.default_rng(seed)

        def mat(rows: int, cols: int) -> np.ndarray:
            return (rng.standard_normal((rows, cols)) / np.sqrt(rows)).astype(dtype)

        layers = []
        for _ in range(num_layers):
            layers.append(
                LayerWeights(
                    wq=mat(hidden_size, hidden_size),
                    wk=mat(hidden_size, kv_width),
                    wv=mat(hidden_size, kv_width),
                    wo=mat(hidden_size, hidden_size),
                    w_gate=mat(hidden_size, ffn_hidden_size),
                    w_up=mat(hidden_size, ffn_hidden_size),
                    w_down=mat(ffn_hidden_size, hidden_size),
                    attn_norm=np.ones(hidden_size, dtype=dtype),
                    ffn_norm=np.ones(hidden_size, dtype=dtype),
                )
            )
        return cls(
            hidden_size=hidden_size,
            num_heads=num_heads,
            num_kv_heads=num_kv_heads,
            ffn_hidden_size=ffn_hidden_size,
            num_layers=num_layers,
            layers=tuple(layers),
            dtype=dtype,
        )


def rmsnorm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer norm (Llama style)."""
    variance = np.mean(np.square(x), axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


def rope_rotate(x: np.ndarray, positions: np.ndarray, base: float = 10_000.0) -> np.ndarray:
    """Apply rotary position embeddings.

    ``x`` has shape (..., tokens, heads, head_dim); ``positions`` gives the
    *global* sequence position of each token — striped attention depends
    on rotating by global position regardless of which instance holds the
    token.
    """
    head_dim = x.shape[-1]
    if head_dim % 2 != 0:
        raise ValueError("head_dim must be even for RoPE")
    half = head_dim // 2
    freqs = base ** (-np.arange(half, dtype=x.dtype) * 2.0 / head_dim)
    angles = positions.astype(x.dtype)[:, None] * freqs[None, :]  # (tokens, half)
    cos = np.cos(angles)[:, None, :]  # (tokens, 1, half)
    sin = np.sin(angles)[:, None, :]
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)
