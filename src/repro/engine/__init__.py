"""Functional execution engine (numpy).

This package *executes* the paper's parallelism mechanisms rather than
modelling their time: striped-attention sequence-parallel prefill with
ring KV circulation (§2.3), proactive scale-down retention (§4.1), and
single-/multi-master distributed decoding with Flash-Decoding-style
partial-attention reduction (§4.2).  Tensor parallelism is mathematically
transparent (it shards matmuls without changing results), so instances
here are SP ranks; TP is handled by the cost model alone.

Everything is verifiable: outputs must match the serial reference
transformer bit-for-bit up to float tolerance, and after a proactive
scale-down the KV pools of surviving instances must hold exactly the
planned token placement.
"""

from repro.engine.decode import DistributedDecoder
from repro.engine.instance import FunctionalInstance, KVShard
from repro.engine.reference import ReferenceTransformer
from repro.engine.striped import StripedPrefillRun, striped_prefill
from repro.engine.weights import TransformerWeights

__all__ = [
    "DistributedDecoder",
    "FunctionalInstance",
    "KVShard",
    "ReferenceTransformer",
    "StripedPrefillRun",
    "TransformerWeights",
    "striped_prefill",
]
