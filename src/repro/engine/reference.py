"""Serial reference transformer — the correctness oracle.

Single-"device" prefill and decode with an explicit KV cache.  The
distributed engine (striped prefill, multi-master decode) must reproduce
this module's outputs exactly (up to floating-point tolerance), which is
what makes the ESP mechanisms verifiable without GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.weights import LayerWeights, TransformerWeights, rmsnorm, rope_rotate, silu


@dataclass
class LayerKVCache:
    """K/V tensors of one layer: (tokens, kv_heads, head_dim)."""

    k: np.ndarray
    v: np.ndarray

    @property
    def num_tokens(self) -> int:
        return self.k.shape[0]


@dataclass
class KVCache:
    """Per-layer KV cache of one request on the reference engine."""

    layers: list[LayerKVCache] = field(default_factory=list)

    @property
    def num_tokens(self) -> int:
        return self.layers[0].num_tokens if self.layers else 0


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """(tokens, heads*dim) -> (tokens, heads, dim)."""
    tokens, width = x.shape
    return x.reshape(tokens, num_heads, width // num_heads)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """(tokens, heads, dim) -> (tokens, heads*dim)."""
    tokens, heads, dim = x.shape
    return x.reshape(tokens, heads * dim)


def expand_kv_heads(kv: np.ndarray, group_size: int) -> np.ndarray:
    """Repeat KV heads for GQA/MQA: (tokens, kv_heads, d) -> (tokens, heads, d)."""
    if group_size == 1:
        return kv
    return np.repeat(kv, group_size, axis=1)


def causal_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_positions: np.ndarray,
    k_positions: np.ndarray,
) -> np.ndarray:
    """Masked attention with explicit global positions.

    q: (nq, heads, d); k, v: (nk, heads, d).  A query at position p
    attends to keys at positions <= p.  Returns (nq, heads, d).
    """
    head_dim = q.shape[-1]
    scores = np.einsum("qhd,khd->hqk", q, k) / np.sqrt(head_dim)
    mask = k_positions[None, :] <= q_positions[:, None]  # (nq, nk)
    scores = np.where(mask[None, :, :], scores, -np.inf)
    scores -= scores.max(axis=-1, keepdims=True)
    weights = np.exp(scores)
    weights /= weights.sum(axis=-1, keepdims=True)
    return np.einsum("hqk,khd->qhd", weights, v)


class ReferenceTransformer:
    """Plain, single-device forward passes with a KV cache."""

    def __init__(self, weights: TransformerWeights) -> None:
        self.weights = weights

    # -- layer pieces --------------------------------------------------------

    def project_qkv(
        self, layer: LayerWeights, x: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Normed projections with RoPE applied at global positions."""
        w = self.weights
        normed = rmsnorm(x, layer.attn_norm)
        q = split_heads(normed @ layer.wq, w.num_heads)
        k = split_heads(normed @ layer.wk, w.num_kv_heads)
        v = split_heads(normed @ layer.wv, w.num_kv_heads)
        q = rope_rotate(q, positions, w.rope_base)
        k = rope_rotate(k, positions, w.rope_base)
        return q, k, v

    def ffn(self, layer: LayerWeights, x: np.ndarray) -> np.ndarray:
        normed = rmsnorm(x, layer.ffn_norm)
        return (silu(normed @ layer.w_gate) * (normed @ layer.w_up)) @ layer.w_down

    # -- full passes -----------------------------------------------------------

    def prefill(self, x: np.ndarray) -> tuple[np.ndarray, KVCache]:
        """Process a full sequence; return hidden states and the KV cache.

        ``x`` is (tokens, hidden) — the "embedded" input sequence.
        """
        w = self.weights
        if x.ndim != 2 or x.shape[1] != w.hidden_size:
            raise ValueError(f"expected (tokens, {w.hidden_size}), got {x.shape}")
        positions = np.arange(x.shape[0])
        cache = KVCache()
        hidden = x
        for layer in w.layers:
            q, k, v = self.project_qkv(layer, hidden, positions)
            cache.layers.append(LayerKVCache(k=k.copy(), v=v.copy()))
            k_full = expand_kv_heads(k, w.group_size)
            v_full = expand_kv_heads(v, w.group_size)
            attn = causal_attention(q, k_full, v_full, positions, positions)
            hidden = hidden + merge_heads(attn) @ layer.wo
            hidden = hidden + self.ffn(layer, hidden)
        return hidden, cache

    def decode_step(
        self, x_t: np.ndarray, cache: KVCache, position: int | None = None
    ) -> np.ndarray:
        """Process one new token; append its KV to the cache in place.

        ``x_t`` is (hidden,).  Returns the output hidden state (hidden,).
        """
        w = self.weights
        if x_t.shape != (w.hidden_size,):
            raise ValueError(f"expected ({w.hidden_size},), got {x_t.shape}")
        pos = cache.num_tokens if position is None else position
        positions = np.array([pos])
        hidden = x_t[None, :]
        for idx, layer in enumerate(w.layers):
            q, k, v = self.project_qkv(layer, hidden, positions)
            layer_cache = cache.layers[idx]
            layer_cache.k = np.concatenate([layer_cache.k, k], axis=0)
            layer_cache.v = np.concatenate([layer_cache.v, v], axis=0)
            k_full = expand_kv_heads(layer_cache.k, w.group_size)
            v_full = expand_kv_heads(layer_cache.v, w.group_size)
            k_positions = np.arange(layer_cache.k.shape[0])
            attn = causal_attention(q, k_full, v_full, positions, k_positions)
            hidden = hidden + merge_heads(attn) @ layer.wo
            hidden = hidden + self.ffn(layer, hidden)
        return hidden[0]

    def generate(self, x: np.ndarray, num_steps: int, seed: int = 1) -> np.ndarray:
        """Prefill then decode ``num_steps`` synthetic next-token inputs.

        Decode inputs are a deterministic function of the previous hidden
        state, making end-to-end generation comparable across engines
        without a tokenizer.
        """
        hidden, cache = self.prefill(x)
        outputs = [hidden[-1]]
        for _ in range(num_steps):
            x_t = next_token_embedding(outputs[-1])
            outputs.append(self.decode_step(x_t, cache))
        return np.stack(outputs)


def next_token_embedding(hidden: np.ndarray) -> np.ndarray:
    """Deterministic pseudo-embedding of the "sampled" next token.

    A fixed nonlinear map of the previous output standing in for
    ``embed(argmax(logits))``; identical across engines by construction.
    """
    return np.tanh(hidden) * 0.5
