"""Online-softmax accumulation (the Flash-Attention/Flash-Decoding trick).

Both striped prefill and distributed decode compute attention over KV
blocks that arrive piecewise — ring rounds in prefill, per-instance
shards in decode.  ``OnlineSoftmax`` folds each partial block into a
running (max, sum-of-exponentials, weighted-value) triple so the final
result is exactly full-softmax attention regardless of arrival order.
"""

from __future__ import annotations

import numpy as np


class OnlineSoftmax:
    """Streaming softmax-weighted accumulation over key/value blocks.

    Shapes: queries (nq, heads, d); per-block keys/values (nk, heads, d).
    Maintains per-(head, query) running statistics.  Blocks where a query
    sees no unmasked key leave that query's state untouched.
    """

    def __init__(self, num_queries: int, num_heads: int, head_dim: int) -> None:
        self.m = np.full((num_heads, num_queries), -np.inf)
        self.l = np.zeros((num_heads, num_queries))
        self.acc = np.zeros((num_queries, num_heads, head_dim))
        self.head_dim = head_dim

    def update(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        q_positions: np.ndarray,
        k_positions: np.ndarray,
    ) -> None:
        """Fold one KV block in, with a causal mask on global positions."""
        if k.shape[0] == 0:
            return
        scores = np.einsum("qhd,khd->hqk", q, k) / np.sqrt(self.head_dim)
        mask = k_positions[None, :] <= q_positions[:, None]  # (nq, nk)
        scores = np.where(mask[None, :, :], scores, -np.inf)

        block_max = scores.max(axis=-1)  # (heads, nq)
        new_m = np.maximum(self.m, block_max)
        # exp(-inf - -inf) would be NaN; fully-masked entries contribute 0.
        finite = ~np.isneginf(new_m)
        with np.errstate(invalid="ignore"):
            old_corr = np.where(
                finite, np.exp(np.where(finite, self.m - new_m, 0.0)), 0.0
            )
            exp_scores = np.where(
                np.isneginf(scores),
                0.0,
                np.exp(scores - np.where(finite, new_m, 0.0)[:, :, None]),
            )
        block_l = exp_scores.sum(axis=-1)
        block_acc = np.einsum("hqk,khd->qhd", exp_scores, v)

        self.m = new_m
        self.l = self.l * old_corr + block_l
        self.acc = self.acc * old_corr.transpose(1, 0)[:, :, None] + block_acc

    def merge_partial(self, m: np.ndarray, l: np.ndarray, acc: np.ndarray) -> None:
        """Fold in another accumulator's (m, l, acc) triple.

        This is the reduction masters perform over partial attention
        results returned by peer instances (§4.2, Figure 8).
        """
        new_m = np.maximum(self.m, m)
        finite = ~np.isneginf(new_m)
        with np.errstate(invalid="ignore"):
            self_corr = np.where(
                finite, np.exp(np.where(finite, self.m - new_m, 0.0)), 0.0
            )
            other_corr = np.where(
                finite, np.exp(np.where(finite, m - new_m, 0.0)), 0.0
            )
        self.m = new_m
        self.l = self.l * self_corr + l * other_corr
        self.acc = (
            self.acc * self_corr.transpose(1, 0)[:, :, None]
            + acc * other_corr.transpose(1, 0)[:, :, None]
        )

    def partial(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Export the raw (m, l, acc) triple for cross-instance reduction."""
        return self.m.copy(), self.l.copy(), self.acc.copy()

    def finalize(self) -> np.ndarray:
        """The attention output: acc / l, shape (nq, heads, d)."""
        denominator = self.l.transpose(1, 0)[:, :, None]
        if np.any(denominator == 0):
            raise ValueError("some query attended to no keys; causal mask broken")
        return self.acc / denominator
