"""Striped-attention sequence-parallel prefill with proactive scale-down.

Implements Figure 1 and §4.1 functionally:

1. The input sequence is *striped* across the parallel group — token at
   global position ``j`` is owned by instance ``j % sp``.  Striping (vs.
   contiguous blocks) balances the causal-mask work across instances.
2. Each layer, every instance projects Q/K/V for its own tokens, then the
   KV blocks circulate the ring: ``sp - 1`` rounds, each instance passing
   the block it holds to its neighbour while computing partial attention
   between its local queries and the visiting block.
3. **Proactive scale-down**: a retention plan maps surviving instances to
   the token positions they must keep.  Because every KV block visits
   every instance exactly once during the ring, each survivor simply
   copies its assigned positions out of the blocks passing through — zero
   messages beyond what the prefill already sends.  ``ring_sends`` is
   counted so tests can assert that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.instance import FunctionalInstance
from repro.engine.softmax import OnlineSoftmax
from repro.engine.weights import TransformerWeights
from repro.engine.reference import ReferenceTransformer, expand_kv_heads, merge_heads


@dataclass
class StripedPrefillRun:
    """Result of a sequence-parallel prefill."""

    hidden: np.ndarray  # (tokens, hidden) in original order
    ring_sends: int  # KV block hops performed
    retained: dict[int, int] = field(default_factory=dict)  # instance -> tokens kept

    @property
    def last_hidden(self) -> np.ndarray:
        return self.hidden[-1]


def stripe_assignment(num_tokens: int, sp: int) -> list[np.ndarray]:
    """Global positions owned by each of ``sp`` instances (striped)."""
    positions = np.arange(num_tokens)
    return [positions[positions % sp == i] for i in range(sp)]


def block_assignment(num_tokens: int, sp: int) -> list[np.ndarray]:
    """Contiguous-block ownership (Ring Attention's layout).

    Provided for comparison: blocks are causally imbalanced — the
    instance owning the last block evaluates far more query-key pairs
    than the first — which is why the paper builds on *Striped* Attention
    (§2.3).  ``attention_pairs_per_instance`` quantifies the gap.
    """
    positions = np.arange(num_tokens)
    return [chunk for chunk in np.array_split(positions, sp)]


def attention_pairs_per_instance(assignment: list[np.ndarray]) -> list[int]:
    """Causal query-key pairs each instance evaluates.

    A query at global position q attends to q+1 keys; the ring delivers
    every key to every instance, so ownership of queries alone fixes the
    per-instance attention work.
    """
    return [int(np.sum(positions + 1)) for positions in assignment]


def validate_retention_plan(
    plan: dict[int, np.ndarray], num_tokens: int, group_size: int
) -> None:
    """A retention plan must partition [0, num_tokens) among survivors."""
    if not plan:
        raise ValueError("retention plan must keep at least one instance")
    for idx in plan:
        if not 0 <= idx < group_size:
            raise ValueError(f"plan references instance index {idx} outside group")
    merged = np.concatenate([np.asarray(p) for p in plan.values()]) if plan else np.array([])
    merged = np.sort(merged)
    expected = np.arange(num_tokens)
    if merged.shape != expected.shape or not np.array_equal(merged, expected):
        raise ValueError("retention plan must cover every token position exactly once")


def striped_prefill(
    weights: TransformerWeights,
    x: np.ndarray,
    instances: list[FunctionalInstance],
    request_id: int,
    retention_plan: dict[int, np.ndarray] | None = None,
    assignment: list[np.ndarray] | None = None,
) -> StripedPrefillRun:
    """Run one request's prefill across an ESP group.

    ``retention_plan`` maps *group-local* instance index -> global token
    positions that instance keeps (proactive scale-down §4.1).  ``None``
    means no scale-down: each instance keeps its own partition, the
    standard sequence-parallel outcome.

    ``assignment`` overrides the token-ownership layout (default:
    striped).  Pass :func:`block_assignment` for the Ring-Attention
    contiguous layout — results are identical, only the per-instance
    work balance differs.
    """
    sp = len(instances)
    if sp == 0:
        raise ValueError("need at least one instance")
    num_tokens = x.shape[0]
    if num_tokens == 0:
        raise ValueError("cannot prefill an empty sequence")

    stripes = assignment if assignment is not None else stripe_assignment(num_tokens, sp)
    if len(stripes) != sp:
        raise ValueError(f"assignment has {len(stripes)} partitions for {sp} instances")
    if retention_plan is None:
        retention_plan = {i: stripes[i] for i in range(sp)}
    validate_retention_plan(retention_plan, num_tokens, sp)
    retain_sets = {i: set(np.asarray(p).tolist()) for i, p in retention_plan.items()}

    reference = ReferenceTransformer(weights)
    w = weights
    hidden = [x[stripe] for stripe in stripes]  # per-instance local hidden states
    ring_sends = 0

    for layer_idx, layer in enumerate(w.layers):
        # Projection: each instance handles its own stripe.
        blocks = []  # circulating KV blocks: (origin, positions, k, v)
        queries = []
        for i in range(sp):
            q, k, v = reference.project_qkv(layer, hidden[i], stripes[i])
            queries.append(q)
            blocks.append((i, stripes[i], k, v))

        accumulators = [
            OnlineSoftmax(len(stripes[i]), w.num_heads, w.head_dim) for i in range(sp)
        ]

        # Ring circulation: round r, instance i holds the block that
        # originated at instance (i - r) mod sp.
        held = list(blocks)
        for round_idx in range(sp):
            for i in range(sp):
                origin, positions, k, v = held[i]
                k_full = expand_kv_heads(k, w.group_size)
                v_full = expand_kv_heads(v, w.group_size)
                accumulators[i].update(queries[i], k_full, v_full, stripes[i], positions)
                # Proactive retention: copy out assigned positions while
                # the block is resident — no extra communication.
                wanted = retain_sets.get(i)
                if wanted:
                    keep = np.array([p in wanted for p in positions])
                    if keep.any():
                        instances[i].store(
                            request_id,
                            layer_idx,
                            positions[keep],
                            k[keep],
                            v[keep],
                        )
            if round_idx < sp - 1:
                # Pass blocks to the neighbour: instance i receives from i-1.
                held = [held[(i - 1) % sp] for i in range(sp)]
                ring_sends += sp

        # Attention output + residual + FFN, all local to each instance.
        for i in range(sp):
            attn = accumulators[i].finalize()
            hidden[i] = hidden[i] + merge_heads(attn) @ layer.wo
            hidden[i] = hidden[i] + reference.ffn(layer, hidden[i])

    # Reassemble outputs into original token order.
    output = np.zeros((num_tokens, w.hidden_size))
    for i in range(sp):
        output[stripes[i]] = hidden[i]

    retained = {
        instances[i].instance_id: instances[i].tokens_held(request_id) for i in range(sp)
    }
    return StripedPrefillRun(
        hidden=output,
        ring_sends=ring_sends,
        retained={k: v for k, v in retained.items() if v > 0},
    )
