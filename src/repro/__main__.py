"""Serve a workload from the command line.

    python -m repro serve --system loongserve --dataset sharegpt \
        --rate 10 --num-requests 200
    python -m repro serve --system vllm --trace my_trace.jsonl --timeline
    python -m repro gen-trace --dataset mixed --rate 0.5 -n 100 -o trace.jsonl

Fleet-scale serving shards the trace across N replicas behind a router
(`round-robin`, `least-outstanding`, `least-kv`, `length-aware`, or
`affinity`) and reports fleet-aggregated latency, SLO attainment, and
per-replica load:

    python -m repro serve --system loongserve --replicas 4 \
        --router least-kv --dataset mixed --rate 20 --num-requests 200

The closed-loop control plane adds actuators on top of placement:
`--autoscale` parks/unparks replicas on load hysteresis, `--steal`
rebalances queued requests between replicas, and `--migrate-kv` ships
session prefix KV along with rebalanced work (requires
`--prefix-cache`); `--control-interval` sets the tick period.  With all
three off the fleet behaves exactly like route-once placement:

    python -m repro serve --replicas 4 --router least-kv --dataset mixed \
        --rate 20 -n 200 --autoscale --steal

Multi-turn session serving (`--dataset sessions`; `--rate` then counts
sessions/s and `-n` sessions) pairs with the prefix-KV cache and
cache-affinity routing:

    python -m repro serve --dataset sessions --prefix-cache \
        --replicas 4 --router affinity --rate 1.0 -n 40

Failure injection crashes replicas mid-run (queued and running work
fails over through the router, resident KV is lost, the replica warms
back up after `--fault-downtime`): `--fault-at TIME:REPLICA` scripts
crashes, `--fault-mtbf` draws a seeded stochastic schedule:

    python -m repro serve --replicas 3 --router affinity --prefix-cache \
        --dataset sessions --rate 1.0 -n 30 --migrate-kv --steal \
        --fault-at 20:0 --fault-downtime 15

Disaggregated serving and tiered KV (`repro.fleet.disagg`,
`repro.kvcache.tiers`): `--disagg N` splits the fleet into N prefill
replicas and the rest decode — arrivals prefill on the first pool and
their KV rides the priced fabric to a decode replica (requires
`--prefix-cache`).  `--kv-tiers lru|fifo|lifo` arms host/SSD offload
under each replica's prefix cache, and `--standby N` appends N warm
standby replicas an autoscaler promotes with zero warm-up:

    python -m repro serve --replicas 4 --disagg 1 --prefix-cache \
        --dataset mixed --rate 20 -n 200 --kv-tiers lru

Multi-tenant QoS (`repro.qos`): `--qos-mix` tags the generated trace
with SLO classes (`interactive:0.3,standard:0.5,batch:0.2`), `--qos`
arms deadline-aware dispatch + batch-tier preemption on LoongServe
replicas, `--admission` adds deadline-feasibility admission control,
`--router slo` places on predicted slack, and `--autoscale-predictive`
scales on the forecast arrival rate instead of queue depth:

    python -m repro serve --replicas 3 --dataset mixed --rate 12 -n 150 \
        --qos-mix interactive:0.4,standard:0.4,batch:0.2 \
        --qos --admission --router slo --prefix-cache

(`python -m repro.experiments <figureN>` regenerates paper figures;
`python -m repro.experiments qos` runs the QoS-vs-FCFS comparison.)
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.experiments.systems import CRASHABLE_SYSTEMS, make_fleet, make_system
from repro.fleet.router import ROUTERS
from repro.metrics.fleet import fleet_load_report
from repro.metrics.latency import summarize_latency
from repro.metrics.summary import throughput_tokens_per_s
from repro.viz.timeline import occupancy_timeline, utilization_summary
from repro.sessions import make_session_trace
from repro.workloads.datasets import DATASETS
from repro.workloads.serialization import load_trace, save_trace
from repro.workloads.trace_gen import clone_requests, make_trace

SYSTEM_CHOICES = [
    "loongserve", "loongserve-no-scaleup", "vllm", "splitfuse",
    "deepspeed-mii", "distserve", "static-sp", "replicated-tp2",
]


def _sample_trace(args: argparse.Namespace):
    """Draw a fresh trace from the selected dataset (single source of the
    sessions-vs-length-distribution dispatch, shared by serve/gen-trace)."""
    qos_mix = None
    if getattr(args, "qos_mix", None):
        from repro.qos import parse_qos_mix

        qos_mix = parse_qos_mix(args.qos_mix)
    if args.dataset == "sessions":
        # Multi-turn conversations: --rate is sessions/s, -n sessions.
        return make_session_trace(
            rate=args.rate, num_sessions=args.num_requests, seed=args.seed,
            qos_mix=qos_mix,
        )
    return make_trace(
        DATASETS[args.dataset],
        rate=args.rate, num_requests=args.num_requests, seed=args.seed,
        qos_mix=qos_mix,
    )


def _build_trace(args: argparse.Namespace):
    if args.trace:
        return load_trace(args.trace)
    return _sample_trace(args)


PREFIX_CACHE_SYSTEMS = ("loongserve", "loongserve-no-scaleup")


def _parse_fault_at(value: str) -> tuple[float, int]:
    """Parse one --fault-at entry: ``TIME:REPLICA`` (e.g. ``12.5:0``)."""
    try:
        time_part, _, replica_part = value.partition(":")
        time, replica = float(time_part), int(replica_part)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--fault-at wants TIME:REPLICA (e.g. 12.5:0), got {value!r}"
        ) from None
    if not math.isfinite(time) or time < 0 or replica < 0:
        raise argparse.ArgumentTypeError(
            f"--fault-at TIME and REPLICA must be finite and non-negative, "
            f"got {value!r}"
        )
    return time, replica


def _build_fault_plan(args: argparse.Namespace, trace):
    """Combine scripted --fault-at crashes with a --fault-mtbf Poisson
    schedule drawn over the trace's arrival span."""
    from repro.fleet.faults import FaultPlan, ReplicaFault

    faults = [
        ReplicaFault(time=t, replica_id=r, downtime_s=args.fault_downtime)
        for t, r in (args.fault_at or [])
    ]
    if args.fault_mtbf is not None:
        horizon = max((r.arrival_time for r in trace), default=0.0)
        faults.extend(
            FaultPlan.poisson(
                num_replicas=args.replicas,
                horizon_s=horizon,
                mtbf_s=args.fault_mtbf,
                seed=args.fault_seed,
                downtime_s=args.fault_downtime,
            )
        )
    return FaultPlan(faults)


def cmd_serve(args: argparse.Namespace) -> int:
    if args.replicas < 1:
        print(f"error: --replicas must be >= 1, got {args.replicas}", file=sys.stderr)
        return 2
    if args.prefix_cache and args.system not in PREFIX_CACHE_SYSTEMS:
        print(
            f"error: --prefix-cache requires a LoongServe system "
            f"({', '.join(PREFIX_CACHE_SYSTEMS)}), got {args.system!r}",
            file=sys.stderr,
        )
        return 2
    if args.migrate_kv and not args.prefix_cache:
        print(
            "error: --migrate-kv moves prefix-KV cache extents; "
            "it requires --prefix-cache",
            file=sys.stderr,
        )
        return 2
    if args.replicas < 2 and (args.autoscale or args.steal or args.migrate_kv):
        print(
            "error: --autoscale/--steal/--migrate-kv need a fleet "
            "(--replicas >= 2)",
            file=sys.stderr,
        )
        return 2
    if args.disagg:
        if not args.prefix_cache:
            print(
                "error: --disagg hands prefilled KV between replicas' prefix "
                "caches; it requires --prefix-cache",
                file=sys.stderr,
            )
            return 2
        if not 1 <= args.disagg < args.replicas:
            print(
                f"error: --disagg {args.disagg} must leave both pools "
                f"non-empty (--replicas {args.replicas})",
                file=sys.stderr,
            )
            return 2
    if args.kv_tiers and not args.prefix_cache:
        print(
            "error: --kv-tiers offloads prefix-cache extents; "
            "it requires --prefix-cache",
            file=sys.stderr,
        )
        return 2
    if args.standby and not (args.autoscale or args.autoscale_predictive):
        print(
            "error: --standby replicas start parked; arm --autoscale or "
            "--autoscale-predictive to ever promote them",
            file=sys.stderr,
        )
        return 2
    faults_requested = bool(args.fault_at) or args.fault_mtbf is not None
    if faults_requested and not (
        math.isfinite(args.fault_downtime) and args.fault_downtime > 0
    ):
        print("error: --fault-downtime must be finite and positive",
              file=sys.stderr)
        return 2
    if args.fault_mtbf is not None and not (
        math.isfinite(args.fault_mtbf) and args.fault_mtbf > 0
    ):
        print("error: --fault-mtbf must be finite and positive", file=sys.stderr)
        return 2
    if faults_requested and args.replicas < 2:
        print(
            "error: --fault-at/--fault-mtbf need a fleet (--replicas >= 2); "
            "a single crashed replica has no survivors to fail over to",
            file=sys.stderr,
        )
        return 2
    if faults_requested and args.system not in CRASHABLE_SYSTEMS:
        print(
            f"error: failure injection requires a crashable LoongServe system "
            f"({', '.join(CRASHABLE_SYSTEMS)}), got {args.system!r}",
            file=sys.stderr,
        )
        return 2
    if args.admission and not args.qos:
        print("error: --admission requires --qos", file=sys.stderr)
        return 2
    if args.qos and args.system not in PREFIX_CACHE_SYSTEMS:
        print(
            f"error: --qos requires a LoongServe system "
            f"({', '.join(PREFIX_CACHE_SYSTEMS)}), got {args.system!r}",
            file=sys.stderr,
        )
        return 2
    if args.autoscale and args.autoscale_predictive:
        print(
            "error: pass at most one of --autoscale / --autoscale-predictive",
            file=sys.stderr,
        )
        return 2
    if args.replicas < 2 and args.autoscale_predictive:
        print(
            "error: --autoscale-predictive needs a fleet (--replicas >= 2)",
            file=sys.stderr,
        )
        return 2
    if args.qos_mix:
        from repro.qos import parse_qos_mix

        try:
            parse_qos_mix(args.qos_mix)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    driver = None
    if args.closed_loop:
        if args.dataset != "sessions" or args.trace:
            print(
                "error: --closed-loop replays generated sessions with "
                "arrival feedback; it requires --dataset sessions and no "
                "--trace",
                file=sys.stderr,
            )
            return 2
        if args.fault_mtbf is not None:
            print(
                "error: --fault-mtbf draws crashes over a static trace's "
                "arrival span, which a closed-loop run does not have; "
                "script crashes with --fault-at instead",
                file=sys.stderr,
            )
            return 2
        if args.replicas < 2 and args.system not in PREFIX_CACHE_SYSTEMS:
            print(
                f"error: single-deployment --closed-loop needs a LoongServe "
                f"system ({', '.join(PREFIX_CACHE_SYSTEMS)}), got "
                f"{args.system!r}",
                file=sys.stderr,
            )
            return 2
        from dataclasses import replace as _replace

        from repro.sessions import SESSIONS, make_session_workload

        qos_mix = None
        if args.qos_mix:
            from repro.qos import parse_qos_mix

            qos_mix = parse_qos_mix(args.qos_mix)
        driver = make_session_workload(
            _replace(SESSIONS, closed_loop=True),
            rate=args.rate, num_sessions=args.num_requests, seed=args.seed,
            qos_mix=qos_mix,
        )
        trace = []
    else:
        trace = _build_trace(args)
    fault_plan = _build_fault_plan(args, trace) if faults_requested else None
    if fault_plan is not None and fault_plan.max_replica_id >= args.replicas:
        print(
            f"error: --fault-at targets replica {fault_plan.max_replica_id} "
            f"but the fleet has only {args.replicas} replicas",
            file=sys.stderr,
        )
        return 2
    if fault_plan is not None and not fault_plan:
        print(
            "note: fault schedule is empty (no --fault-at entries and the "
            "drawn Poisson schedule produced no crashes); running fault-free"
        )
        fault_plan = None
    router_kwargs = {}
    if args.router == "length-aware" and args.long_threshold is not None:
        router_kwargs["long_threshold"] = args.long_threshold
    if args.replicas > 1:
        system = make_fleet(
            args.system, replicas=args.replicas, router=args.router,
            requests=trace, num_gpus=args.num_gpus,
            prefix_cache=args.prefix_cache,
            autoscale=args.autoscale, steal=args.steal,
            migrate_kv=args.migrate_kv,
            faults=fault_plan,
            control_interval=args.control_interval,
            qos=args.qos, admission=args.admission,
            autoscale_predictive=args.autoscale_predictive,
            disagg=args.disagg, kv_tiers=args.kv_tiers,
            standby=args.standby,
            **router_kwargs,
        )
    else:
        system = make_system(
            args.system, requests=trace, num_gpus=args.num_gpus,
            prefix_cache=args.prefix_cache,
            qos=args.qos, admission=args.admission,
            kv_tiers=args.kv_tiers,
        )
    obs = None
    if (
        args.trace_out
        or args.telemetry_interval is not None
        or args.slo_monitor
    ):
        from repro.obs import DEFAULT_TELEMETRY_INTERVAL, Observability

        obs = Observability(
            telemetry_interval=(
                args.telemetry_interval
                if args.telemetry_interval is not None
                else DEFAULT_TELEMETRY_INTERVAL
            )
        )
        if args.slo_monitor:
            obs.enable_health()
        if hasattr(system, "observe"):
            system.observe(obs)
        else:
            # Baseline engines: audit records only (no span/telemetry
            # instrumentation on their serving loops).
            system.trace = obs.tracer
    if driver is not None:
        result = system.run_driven(driver)
        trace = driver.requests  # realised arrivals, for reporting below
    else:
        result = system.run(clone_requests(trace))
    summary = summarize_latency(result)

    label = getattr(system, "name", args.system)
    print(f"system:   {label}")
    print(f"requests: {summary.finished}/{summary.total} finished, "
          f"{len(result.aborted)} aborted")
    print(f"makespan: {result.makespan:.1f}s simulated")
    print(f"throughput: {throughput_tokens_per_s(result):,.0f} tokens/s")
    print(f"normalized latency  per-token: {summary.per_token * 1000:8.2f} ms")
    print(f"                    input:     {summary.input_token * 1000:8.2f} ms")
    print(f"                    output:    {summary.output_token * 1000:8.2f} ms")
    if result.scaling_events:
        ups = sum(1 for e in result.scaling_events if e.kind == "scale_up")
        downs = len(result.scaling_events) - ups
        print(f"elastic scaling: {ups} scale-ups, {downs} scale-downs")
    if result.cache_stats:
        cache = result.cache_stats
        matched = cache.get("hit_tokens", 0)
        total = matched + cache.get("miss_tokens", 0)
        rate = matched / total if total else 0.0
        print(f"prefix cache: {rate:.1%} token hit rate, "
              f"{int(matched):,} prefill tokens saved, "
              f"{int(cache.get('evicted_tokens', 0)):,} evicted")
        if cache.get("tier_offloaded_tokens"):
            print(f"kv tiers: {int(cache['tier_offloaded_tokens']):,} tokens "
                  f"offloaded, "
                  f"{int(cache.get('tier_swapped_in_tokens', 0)):,} swapped "
                  f"back in "
                  f"({cache.get('tier_swap_in_seconds', 0.0) * 1000:.1f} ms "
                  f"charged)")
    tagged = any(r.qos is not None for r in trace)
    if tagged or result.qos_stats:
        from repro.experiments.endtoend import reference_ideal_model
        from repro.experiments.report import render_class_table
        from repro.metrics.qos import per_class_report

        ideal = reference_ideal_model(num_gpus=args.num_gpus)
        print("\nper-class SLO attainment:")
        print(render_class_table(per_class_report(result, ideal), result.makespan))
    if args.replicas > 1:
        from repro.experiments.endtoend import reference_ideal_model
        from repro.metrics.slo import slo_report

        ideal = reference_ideal_model(num_gpus=args.num_gpus)
        slo = slo_report(result, ideal)
        print(f"SLO attainment: {slo.attainment:.1%} "
              f"({slo.attained}/{slo.total} within deadline)")
        print("\nper-replica load:")
        print(
            fleet_load_report(
                result.per_replica,
                elastic=getattr(result, "elastic", None),
                makespan=result.makespan,
            ).render()
        )
    if args.timeline and args.replicas > 1:
        print("\n(--timeline shows one deployment; rerun without --replicas)")
    elif args.timeline:
        num_instances = getattr(
            getattr(system, "config", None), "num_instances", args.num_gpus // 2
        )
        print("\n" + occupancy_timeline(result, num_instances))
        util = utilization_summary(result, num_instances)
        print(f"\nutilization: prefill {util['prefill']:.0%}, "
              f"decode {util['decode']:.0%}, idle {util['idle']:.0%}")
    if obs is not None:
        if args.trace_out:
            from repro.obs import export_jsonl, export_perfetto

            if args.trace_out.endswith(".jsonl"):
                lines = export_jsonl(obs, args.trace_out)
                print(f"\nwrote {lines} observability records to "
                      f"{args.trace_out} (JSONL)")
            else:
                doc = export_perfetto(obs, args.trace_out)
                print(f"\nwrote {len(doc['traceEvents'])} trace events to "
                      f"{args.trace_out} (Perfetto; open in ui.perfetto.dev "
                      f"or chrome://tracing)")
            print(f"  spans: {len(obs.tracer.spans)}  "
                  f"audit records: {len(obs.tracer.records)}  "
                  f"telemetry samples: {len(obs.metrics.sample_times)}")
        if obs.metrics.sample_times:
            print("\ntelemetry:")
            print(obs.metrics.render_timeline())
        if obs.health is not None:
            alerts = [r for r in obs.tracer.records if r.kind == "slo_alert"]
            fired = sum(1 for r in alerts if r.payload["state"] == "firing")
            print(f"\nSLO burn-rate monitor: {fired} alert(s) fired")
            for record in alerts:
                payload = record.payload
                print(
                    f"  [{record.time:8.2f}s] {payload['cls']}: "
                    f"{payload['state']}  "
                    f"burn {payload['burn_fast']}x fast / "
                    f"{payload['burn_slow']}x slow, "
                    f"attainment {payload['attainment']:.1%}"
                )
    return 0


def cmd_gen_trace(args: argparse.Namespace) -> int:
    trace = _sample_trace(args)
    save_trace(trace, args.output)
    tokens = sum(r.input_len + r.output_len for r in trace)
    print(f"wrote {len(trace)} requests ({tokens:,} tokens) to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="replay a workload on a serving system")
    serve.add_argument("--system", choices=SYSTEM_CHOICES, default="loongserve")
    serve.add_argument("--dataset", choices=sorted([*DATASETS, "sessions"]),
                       default="sharegpt")
    serve.add_argument("--rate", type=float, default=10.0)
    serve.add_argument("--num-requests", "-n", type=int, default=100)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--num-gpus", type=int, default=8)
    serve.add_argument("--trace", help="replay a jsonl trace instead of generating")
    serve.add_argument("--timeline", action="store_true",
                       help="render the instance-occupancy Gantt strip")
    serve.add_argument("--replicas", type=int, default=1,
                       help="serve with N independent replicas behind a router")
    serve.add_argument("--router", choices=sorted(ROUTERS), default="round-robin",
                       help="fleet routing policy (with --replicas > 1)")
    serve.add_argument("--prefix-cache", action="store_true",
                       help="keep finished requests' KV in a radix prefix "
                            "cache (LoongServe systems)")
    serve.add_argument("--long-threshold", type=int, default=None,
                       help="input length (tokens) at which the length-aware "
                            "router treats a request as long-context")
    serve.add_argument("--autoscale", action="store_true",
                       help="park/unpark replicas on queue-depth + KV-pressure "
                            "hysteresis (with --replicas > 1)")
    serve.add_argument("--steal", action="store_true",
                       help="rebalance still-queued requests from overloaded "
                            "to idle replicas each control tick")
    serve.add_argument("--migrate-kv", action="store_true",
                       help="ship session prefix KV between replicas when work "
                            "is rebalanced or a replica parks (needs "
                            "--prefix-cache)")
    serve.add_argument("--disagg", type=int, default=0, metavar="N",
                       help="disaggregated serving: the first N replicas "
                            "become a dedicated prefill pool, the rest "
                            "decode; prefilled KV rides the priced fabric "
                            "between them (requires --prefix-cache)")
    serve.add_argument("--kv-tiers", choices=("lru", "fifo", "lifo"),
                       default=None,
                       help="offload evicted prefix-cache extents to "
                            "host/SSD tiers with this victim policy instead "
                            "of dropping them (requires --prefix-cache)")
    serve.add_argument("--standby", type=int, default=0, metavar="N",
                       help="append N warm standby replicas (parked, weights "
                            "resident) that the autoscaler promotes with "
                            "zero warm-up (requires --autoscale or "
                            "--autoscale-predictive)")
    serve.add_argument("--control-interval", type=float, default=None,
                       help="seconds between fleet control ticks "
                            "(default 0.5)")
    serve.add_argument("--fault-at", action="append", type=_parse_fault_at,
                       metavar="TIME:REPLICA",
                       help="crash replica REPLICA at simulated second TIME "
                            "(repeatable; queued/running work fails over, "
                            "resident KV is lost)")
    serve.add_argument("--fault-mtbf", type=float, default=None,
                       help="draw stochastic crashes: per-replica mean time "
                            "between failures in seconds (seeded Poisson "
                            "over the trace's arrival span)")
    serve.add_argument("--fault-downtime", type=float, default=10.0,
                       help="seconds a crashed replica stays down before it "
                            "begins warming back up (default 10)")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the --fault-mtbf crash schedule")
    serve.add_argument("--qos", action="store_true",
                       help="arm SLO-class scheduling on LoongServe replicas: "
                            "deadline-aware dispatch order + batch-tier decode "
                            "preemption (repro.qos)")
    serve.add_argument("--admission", action="store_true",
                       help="reject/downgrade arrivals whose class deadline is "
                            "already infeasible (requires --qos)")
    serve.add_argument("--qos-mix", default=None, metavar="SPEC",
                       help="tag the generated trace with SLO classes, e.g. "
                            "interactive:0.3,standard:0.5,batch:0.2 "
                            "(weights are normalised; sessions tag whole "
                            "conversations)")
    serve.add_argument("--autoscale-predictive", action="store_true",
                       help="scale capacity on the forecast arrival rate "
                            "(EWMA tokens/s vs the cost-model service rate) "
                            "instead of reactive queue depth")
    serve.add_argument("--closed-loop", action="store_true",
                       help="sessions arrival feedback: each turn is "
                            "submitted think-time after the previous turn "
                            "finishes instead of at a pre-generated instant "
                            "(--dataset sessions)")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="export the run's observability trace: "
                            "Chrome/Perfetto trace JSON, or JSONL when PATH "
                            "ends in .jsonl (arms spans + audit log + "
                            "telemetry)")
    serve.add_argument("--telemetry-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="time-series sampling cadence (default 0.5; with "
                            "a fleet control loop, samples ride the control "
                            "ticks instead); arms telemetry even without "
                            "--trace-out")
    serve.add_argument("--slo-monitor", action="store_true",
                       help="arm the SLO burn-rate monitor: rolling per-class "
                            "attainment + multi-window burn-rate gauges and "
                            "hysteresis-gated slo_alert audit records (pure "
                            "observer; requires deadlines, i.e. --qos-mix)")
    serve.set_defaults(func=cmd_serve)

    gen = sub.add_parser("gen-trace", help="generate and save a jsonl trace")
    gen.add_argument("--dataset", choices=sorted([*DATASETS, "sessions"]),
                     default="sharegpt")
    gen.add_argument("--rate", type=float, default=10.0)
    gen.add_argument("--num-requests", "-n", type=int, default=100)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--qos-mix", default=None, metavar="SPEC",
                     help="tag the trace with SLO classes (round-trips "
                          "through the jsonl file)")
    gen.add_argument("--output", "-o", required=True)
    gen.set_defaults(func=cmd_gen_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
