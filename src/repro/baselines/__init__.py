"""Baseline serving systems (§7.1) on the shared simulated substrate.

Every baseline re-implements the *scheduling policy* of the system the
paper compares against, over the same cluster, cost model, and KV
accounting as LoongServe — so performance differences come from policy,
not substrate:

* ``VLLMServer`` — vLLM 0.3.0: static TP, continuous batching with
  prefill priority, preemption by recomputation.
* ``SplitFuseServer`` — DeepSpeed-MII Dynamic SplitFuse / LightLLM
  SplitFuse: chunked prefill fused with decode iterations.
* ``DistServeServer`` — prefill-decoding disaggregation with reactive KV
  migration between the two GPU groups.
* ``StaticSPServer`` — LoongServe w/o ESP (fixed TP x SP hybrid).
* ``ReplicatedServer`` — N independent engines behind a dispatcher
  (LoongServe w/o ESP (TP=2) x 4, and the per-node multi-node baselines).
* ``build_no_scale_up_loongserve`` — the Figure 13 ablation.
"""

from repro.baselines.base import EngineServer, EnginePolicy
from repro.baselines.distserve import DistServeServer
from repro.baselines.no_scaleup import build_loongserve, build_no_scale_up_loongserve
from repro.baselines.replicated import ReplicatedServer
from repro.baselines.splitfuse import SplitFuseServer, ideal_chunk_size
from repro.baselines.static_sp import StaticSPServer
from repro.baselines.vllm import VLLMServer

__all__ = [
    "DistServeServer",
    "EnginePolicy",
    "EngineServer",
    "ReplicatedServer",
    "SplitFuseServer",
    "StaticSPServer",
    "VLLMServer",
    "build_loongserve",
    "build_no_scale_up_loongserve",
    "ideal_chunk_size",
]
