"""Replicated engines behind a dispatcher.

Covers two baselines:

* **LoongServe w/o ESP (TP=2) x 4** (Figure 12) — four independent TP=2
  engines; a request's whole KV must fit one engine's pool, the
  fragmentation pathology of Figure 4.
* **Per-node baselines in the multi-node evaluation** (Figure 11) — the
  paper deploys each baseline independently on each server.

Dispatch is least-outstanding-work (queued + resident tokens), the
strongest simple policy, so the comparison is not handicapped.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines.base import EngineServer
from repro.sim.engine import Simulator
from repro.types import Request, ServeResult

ServerFactory = Callable[[int], object]


class ReplicatedServer:
    """N engines, one queue dispatcher, shared virtual clock."""

    def __init__(
        self,
        engines: Sequence[EngineServer],
        name: str | None = None,
    ) -> None:
        if not engines:
            raise ValueError("need at least one engine")
        self.engines = list(engines)
        self.name = name or f"{engines[0].name} x {len(engines)}"

    def run(self, requests: list[Request]) -> ServeResult:
        sim = Simulator()
        self.use_simulator(sim)
        for request in requests:
            sim.call_at(
                request.arrival_time,
                self._make_arrival(request),
                label=f"arrival:{request.request_id}",
            )
        sim.run_until_idle()

        aborted = [r for engine in self.engines for r in engine.aborted]
        aborted_ids = {r.request_id for r in aborted}
        stats = [s for engine in self.engines for s in engine.iteration_stats]
        return ServeResult(
            system=self.name,
            requests=[r for r in requests if r.request_id not in aborted_ids],
            iteration_stats=sorted(stats, key=lambda s: s.start_time),
            makespan=sim.now,
            aborted=aborted,
        )

    def use_simulator(self, sim: Simulator) -> None:
        """Reset every engine and attach them to a (shared) clock.

        Lets an outer dispatcher — e.g. a fleet router — drive this
        system via :meth:`submit` instead of :meth:`run`.
        """
        for engine in self.engines:
            engine._reset()
            engine.use_simulator(sim)

    def submit(self, request: Request) -> None:
        """External enqueue: dispatch one request to the best engine."""
        engine = min(self.engines, key=self._outstanding_tokens)
        engine.submit(request)

    def _make_arrival(self, request: Request):
        def _on_arrival() -> None:
            self.submit(request)

        return _on_arrival

    def _outstanding_tokens(self, engine: EngineServer) -> int:
        queued = sum(r.current_len for r in engine.waiting)
        resident = engine.pool.used
        return queued + resident
