"""vLLM-style baseline: static TP, continuous batching, prefill priority.

Matches vLLM 0.3.0's scheduler (the commit the paper pins): when waiting
requests fit in free KV blocks, run a prefill-only iteration over them;
otherwise run one decode iteration over all running requests.  Prefill
iterations stall decoding — the interference Figure 10 shows on the long
datasets.  Memory pressure preempts the youngest request by
recomputation.
"""

from __future__ import annotations

from repro.baselines.base import EnginePolicy, EngineServer, IterationPlan
from repro.config import SystemConfig
from repro.costmodel.latency import RooflineCostModel
from repro.sim.trace import TraceRecorder


class PrefillPriorityPolicy(EnginePolicy):
    """vLLM 0.3.0 scheduling: whole-prompt prefills ahead of decodes."""

    def __init__(self, max_batched_tokens: int | None = None) -> None:
        self.max_batched_tokens = max_batched_tokens

    def next_iteration(self, engine: EngineServer) -> IterationPlan:
        admissible = engine.admissible()
        if admissible:
            budget = self.max_batched_tokens
            chosen = []
            used = 0
            for request in admissible:
                tokens = request.current_len
                if budget is not None and chosen and used + tokens > budget:
                    break
                chosen.append((request, tokens))
                used += tokens
            return IterationPlan(prefill_chunks=chosen)
        if engine.running and engine.free_slots_for_decode():
            return IterationPlan(decode_requests=list(engine.running))
        return IterationPlan()


class VLLMServer(EngineServer):
    """vLLM with tensor parallelism over the whole cluster (TP=8 in §7.1)."""

    def __init__(
        self,
        config: SystemConfig,
        cost_model: RooflineCostModel | None = None,
        max_batched_tokens: int | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        if config.num_instances != 1:
            raise ValueError(
                "vLLM baseline expects the whole cluster as one TP instance; "
                "build its config with tensor_parallel = num_gpus"
            )
        super().__init__(
            config=config,
            policy=PrefillPriorityPolicy(max_batched_tokens=max_batched_tokens),
            cost_model=cost_model,
            instance_ids=[0],
            num_masters=1,
            name="vLLM",
            trace=trace,
        )
