"""LoongServe variants for the ablation studies.

``build_loongserve`` constructs the paper's default LoongServe (TP=2,
ESP up to num_gpus/2); ``build_no_scale_up_loongserve`` disables elastic
scale-up only, which is the Figure 13 ablation — batches stay at their
post-prefill DoP forever, so growing decode batches hit memory/compute
walls on ShareGPT-like workloads.
"""

from __future__ import annotations

from repro.config import SchedulerConfig, SystemConfig, default_config
from repro.core.server import LoongServeServer


def build_loongserve(
    num_gpus: int = 8,
    tensor_parallel: int = 2,
    gpus_per_node: int = 8,
    scheduler: SchedulerConfig | None = None,
    config: SystemConfig | None = None,
) -> LoongServeServer:
    """The paper's LoongServe configuration (§7.1)."""
    if config is None:
        config = default_config(
            num_gpus=num_gpus,
            tensor_parallel=tensor_parallel,
            gpus_per_node=gpus_per_node,
            scheduler=scheduler,
        )
    return LoongServeServer(config)


def build_no_scale_up_loongserve(
    num_gpus: int = 8,
    tensor_parallel: int = 2,
    gpus_per_node: int = 8,
    prefix_cache: bool = False,
) -> LoongServeServer:
    """LoongServe with elastic scale-up disabled (Figure 13 ablation)."""
    scheduler = SchedulerConfig(enable_scale_up=False, enable_prefix_cache=prefix_cache)
    config = default_config(
        num_gpus=num_gpus,
        tensor_parallel=tensor_parallel,
        gpus_per_node=gpus_per_node,
        scheduler=scheduler,
    )
    server = LoongServeServer(config)
    server.name = "LoongServe w/o Elastic Scale-up"
    return server
