"""Static hybrid parallelism baseline: LoongServe w/o ESP (TP=2, SP=4).

Sequence parallelism at a *fixed* DoP: every iteration — prefill or
decode — runs on all four instances.  Prefill enjoys the full group, but
decoding drags the whole group's communication overhead for every token,
no second batch can run concurrently, and prefill iterations still stall
decoding (same interference as vLLM).  This is the Figure 12 ablation
showing that sequence parallelism alone, without elasticity, is not
enough.
"""

from __future__ import annotations

from repro.baselines.base import EngineServer
from repro.baselines.vllm import PrefillPriorityPolicy
from repro.config import SystemConfig
from repro.costmodel.latency import RooflineCostModel
from repro.sim.trace import TraceRecorder


class StaticSPServer(EngineServer):
    """One engine spanning every instance at a fixed SP degree."""

    def __init__(
        self,
        config: SystemConfig,
        cost_model: RooflineCostModel | None = None,
        name: str | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        sp = config.num_instances
        super().__init__(
            config=config,
            policy=PrefillPriorityPolicy(),
            cost_model=cost_model,
            instance_ids=list(range(sp)),
            kv_slots=config.kv_slots_per_instance * sp,
            num_masters=sp,  # static multi-master: fixed, never adapted
            name=name or f"LoongServe w/o ESP (TP={config.tensor_parallel}, SP={sp})",
            trace=trace,
        )
