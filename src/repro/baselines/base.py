"""Shared single-engine serving loop for the baseline systems.

An *engine* is one statically-parallelised model replica: a fixed set of
elastic-instance slots (e.g. one TP=8 instance for vLLM, four TP=2
instances for the static hybrid) with one KV pool and one scheduler
queue.  ``EngineServer`` provides continuous batching with
preemption-by-recomputation; an :class:`EnginePolicy` decides what each
iteration executes, which is the only place the baselines differ.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

from repro.config import SystemConfig
from repro.costmodel.latency import RooflineCostModel
from repro.kvcache.pool import InstancePool
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.types import (
    BatchStats,
    Phase,
    Request,
    RequestState,
    ServeResult,
)


@dataclass
class IterationPlan:
    """What one engine iteration executes.

    ``prefill_chunks`` maps request -> new tokens processed this iteration
    (the whole input for whole-prefill policies; a chunk for SplitFuse).
    ``decode_requests`` advance by one token each.
    """

    prefill_chunks: list[tuple[Request, int]] = field(default_factory=list)
    decode_requests: list[Request] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.prefill_chunks and not self.decode_requests

    @property
    def phase(self) -> Phase:
        return Phase.PREFILL if self.prefill_chunks else Phase.DECODE


class EnginePolicy(abc.ABC):
    """Chooses the next iteration's contents."""

    @abc.abstractmethod
    def next_iteration(self, engine: EngineServer) -> IterationPlan:
        """Build the next iteration from the engine's queues."""


class EngineServer:
    """One statically-parallelised engine with continuous batching."""

    name = "engine"

    def __init__(
        self,
        config: SystemConfig,
        policy: EnginePolicy,
        cost_model: RooflineCostModel | None = None,
        instance_ids: list[int] | None = None,
        kv_slots: int | None = None,
        num_masters: int = 1,
        max_num_seqs: int = 256,
        name: str | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.max_num_seqs = max_num_seqs
        self.cost_model = cost_model or RooflineCostModel(
            cluster=config.cluster, model=config.model
        )
        self.instance_ids = instance_ids if instance_ids is not None else list(
            range(config.num_instances)
        )
        self.kv_slots = kv_slots if kv_slots is not None else (
            config.kv_slots_per_instance * len(self.instance_ids)
        )
        self.num_masters = num_masters
        if name:
            self.name = name
        self.trace = trace or TraceRecorder(enabled=False)
        # Called when a request finishes its prefill but still has tokens
        # to decode; returning True removes it from this engine (used by
        # DistServe's prefill->decode handoff).
        self.prefill_complete_hook: Callable[[Request], bool] | None = None
        self._reset()

    def _reset(self) -> None:
        self.sim = Simulator()
        self.pool = InstancePool(instance_id=-1, capacity=self.kv_slots)
        self.waiting: list[Request] = []
        self.running: list[Request] = []
        self.prefilling: list[Request] = []  # mid-prefill (chunked policies)
        self.prefill_progress: dict[int, int] = {}
        self.finished: list[Request] = []
        self.aborted: list[Request] = []
        self.iteration_stats: list[BatchStats] = []
        self.busy = False
        self._all_requests: list[Request] = []

    # -- public API --------------------------------------------------------------

    def run(self, requests: list[Request]) -> ServeResult:
        self._reset()
        self._all_requests = list(requests)
        for request in requests:
            self.sim.call_at(
                request.arrival_time,
                self._make_arrival(request),
                label=f"arrival:{request.request_id}",
            )
        self.sim.run_until_idle()
        return ServeResult(
            system=self.name,
            requests=[r for r in self._all_requests if r not in self.aborted],
            iteration_stats=self.iteration_stats,
            makespan=self.sim.now,
            aborted=self.aborted,
        )

    def use_simulator(self, sim: Simulator) -> None:
        """Share a simulator with other engines (multi-engine systems)."""
        self.sim = sim

    def inject_running(self, request: Request, preallocated: bool = False) -> None:
        """Admit an already-prefilled request straight into decoding.

        DistServe's decode engine receives requests whose KV has just
        migrated in; ``preallocated`` skips the slot allocation when the
        caller reserved capacity before starting the migration.
        """
        if not preallocated:
            self.pool.allocate(request.request_id, request.current_len)
        request.state = RequestState.DECODING
        self.running.append(request)
        self._maybe_start()

    # -- queue management ------------------------------------------------------------

    def submit(self, request: Request, now: float | None = None) -> None:
        """External enqueue (used by dispatchers and DistServe's handoff)."""
        if request.max_total_len + 1 > self.kv_slots:
            request.state = RequestState.FINISHED
            self.aborted.append(request)
            self._fire_terminal_hook(request)
            if self.trace.enabled:
                self.trace.audit(
                    self.sim.now, "abort", component="server",
                    request=request.request_id, engine=self.name,
                )
                self.trace.end_span(
                    request.request_id, self.sim.now, aborted=True
                )
            return
        self.waiting.append(request)
        self.waiting.sort(key=lambda r: r.arrival_time)
        self._maybe_start()

    def _make_arrival(self, request: Request):
        def _on_arrival() -> None:
            self.submit(request)

        return _on_arrival

    def admissible(self) -> list[Request]:
        """Waiting requests that fit free KV right now, FCFS prefix."""
        admitted: list[Request] = []
        free = self.pool.free
        watermark = int(self.kv_slots * self.config.scheduler.watermark_fraction)
        budget = self.max_num_seqs - len(self.running) - len(self.prefilling)
        for request in self.waiting:
            if len(admitted) >= budget:
                break
            needed = request.current_len + 1
            if needed + watermark > free:
                break
            admitted.append(request)
            free -= needed
        return admitted

    # -- the iteration loop ------------------------------------------------------------

    def _maybe_start(self) -> None:
        if self.busy:
            return
        plan = self.policy.next_iteration(self)
        if plan.is_empty:
            return
        self._execute(plan)

    def _execute(self, plan: IterationPlan) -> None:
        now = self.sim.now
        chunks: list[tuple[int, int]] = []
        for request, tokens in plan.prefill_chunks:
            progress = self.prefill_progress.get(request.request_id, 0)
            if progress == 0:
                if request in self.waiting:
                    self.waiting.remove(request)
                self.prefilling.append(request)
                request.state = RequestState.PREFILLING
                if request.prefill_start is None:
                    request.prefill_start = now
            self.pool.allocate(request.request_id, tokens)
            chunks.append((tokens, progress))
        decode_contexts = [r.current_len for r in plan.decode_requests]
        for request in plan.decode_requests:
            self.pool.allocate(request.request_id, 1)

        duration = self.cost_model.fused_iteration_time(
            chunks,
            decode_contexts,
            self.instance_ids,
            self.config.tensor_parallel,
            num_masters=self.num_masters,
        )
        duration += self.config.scheduler.scheduling_overhead_s
        total_tokens = sum(t for t, _ in chunks) + len(decode_contexts)
        self.iteration_stats.append(
            BatchStats(
                iteration=len(self.iteration_stats),
                phase=plan.phase,
                batch_size=len(plan.prefill_chunks) + len(plan.decode_requests),
                total_tokens=total_tokens,
                dop=len(self.instance_ids),
                duration=duration,
                start_time=now,
            )
        )
        self.busy = True
        self.sim.call_after(duration, lambda: self._on_iteration_done(plan))

    def _on_iteration_done(self, plan: IterationPlan) -> None:
        now = self.sim.now
        for request, tokens in plan.prefill_chunks:
            progress = self.prefill_progress.get(request.request_id, 0) + tokens
            if progress >= request.current_len:
                # Prefill complete: first output token emitted.
                self.prefill_progress.pop(request.request_id, None)
                if request in self.prefilling:
                    self.prefilling.remove(request)
                self.pool.allocate(request.request_id, 1)
                request.generated += 1
                request.prefill_end = now
                request.record_first_token(now)
                if request.generated >= request.output_len:
                    self._finish(request)
                elif self.prefill_complete_hook is not None and self.prefill_complete_hook(
                    request
                ):
                    pass  # handed off to another engine
                else:
                    request.state = RequestState.DECODING
                    self.running.append(request)
            else:
                self.prefill_progress[request.request_id] = progress
        for request in plan.decode_requests:
            request.generated += 1
            if request.generated >= request.output_len:
                self._finish(request)
        self.running = [r for r in self.running if not r.finished]
        self.busy = False
        self._maybe_start()

    def _finish(self, request: Request) -> None:
        request.state = RequestState.FINISHED
        request.finish_time = self.sim.now
        self.pool.release(request.request_id)
        if request in self.running:
            self.running.remove(request)
        self.finished.append(request)
        self._fire_terminal_hook(request)

    def _fire_terminal_hook(self, request: Request) -> None:
        """Run a request's completion hook exactly once (closed-loop
        session drivers chain the next turn off it)."""
        hook, request.on_finish = request.on_finish, None
        if hook is not None:
            hook(self.sim.now)

    # -- memory pressure ------------------------------------------------------------------

    def free_slots_for_decode(self) -> bool:
        """Ensure a decode iteration can append; preempt youngest if not."""
        while self.running and self.pool.free < len(self.running):
            victim = max(self.running, key=lambda r: r.arrival_time)
            self._preempt(victim)
        return bool(self.running)

    def _preempt(self, request: Request) -> None:
        self.pool.release(request.request_id)
        self.running.remove(request)
        self.prefill_progress.pop(request.request_id, None)
        if request in self.prefilling:
            self.prefilling.remove(request)
        request.state = RequestState.PREEMPTED
        request.preemptions += 1
        self.waiting.append(request)
        self.waiting.sort(key=lambda r: r.arrival_time)
        if self.trace.enabled:
            self.trace.audit(
                self.sim.now, "preempt", component="server",
                request=request.request_id,
            )
