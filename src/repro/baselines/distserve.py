"""DistServe baseline: prefill-decoding disaggregation (§2.2, §7.1).

Two static GPU groups — a prefill engine and a decode engine, DoP 4 each
on the 8-GPU testbed (the paper's validated best split).  After a request
prefills, its whole KV cache *reactively migrates* across the group
boundary before decoding can start; the migration time comes from the
communication model (the overhead LoongServe's proactive mechanism
eliminates).

Isolation costs reproduced here:

* Each phase sees only half the GPUs, so the longest servable request is
  bounded by the *minimum* of the two pools — the paper's LV-Eval / Mixed
  OOM, surfaced as aborted requests.
* Prefill KV slots stay held until the migration completes, shrinking the
  prefill engine's effective capacity.
"""

from __future__ import annotations

from collections import deque

from repro.baselines.base import EngineServer
from repro.baselines.vllm import PrefillPriorityPolicy
from repro.config import SystemConfig
from repro.costmodel.latency import RooflineCostModel
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.types import Request, RequestState, ServeResult


class _DecodeEngine(EngineServer):
    """Decode-side engine that pumps the handoff queue as slots free up."""

    handoff_pump = None

    def _finish(self, request: Request) -> None:
        super()._finish(request)
        if self.handoff_pump is not None:
            self.handoff_pump()


class DistServeServer:
    """Disaggregated serving over one cluster: prefill group + decode group."""

    name = "DistServe"

    def __init__(
        self,
        config: SystemConfig,
        cost_model: RooflineCostModel | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        if config.num_instances != 2:
            raise ValueError(
                "DistServe splits the cluster into two equal groups; build its "
                "config with tensor_parallel = num_gpus // 2"
            )
        self.config = config
        self.cost_model = cost_model or RooflineCostModel(
            cluster=config.cluster, model=config.model
        )
        self.trace = trace or TraceRecorder(enabled=False)
        self.prefill_engine = EngineServer(
            config=config,
            policy=PrefillPriorityPolicy(),
            cost_model=self.cost_model,
            instance_ids=[0],
            kv_slots=config.kv_slots_per_instance,
            name="DistServe-prefill",
            trace=self.trace,
        )
        self.decode_engine = _DecodeEngine(
            config=config,
            policy=PrefillPriorityPolicy(),
            cost_model=self.cost_model,
            instance_ids=[1],
            kv_slots=config.kv_slots_per_instance,
            name="DistServe-decode",
            trace=self.trace,
        )
        self.aborted: list[Request] = []
        self.migrations = 0
        self.migration_seconds = 0.0
        self._handoff_queue: deque[Request] = deque()

    def use_simulator(self, sim: Simulator) -> None:
        """Reset both engines and attach them to a (shared) clock.

        Lets an outer dispatcher — e.g. a fleet router — drive this
        system via :meth:`submit` instead of :meth:`run`.
        """
        self.prefill_engine._reset()
        self.decode_engine._reset()
        self.prefill_engine.use_simulator(sim)
        self.decode_engine.use_simulator(sim)
        self.prefill_engine.prefill_complete_hook = self._handoff
        self.decode_engine.handoff_pump = self._pump_handoffs
        self.aborted = []
        self.migrations = 0
        self.migration_seconds = 0.0
        self._handoff_queue = deque()
        self._sim = sim

    def submit(self, request: Request) -> None:
        """External enqueue, applying the disaggregation capacity cap.

        The longest servable request is capped by both pools: the KV
        must fit the prefill group first and the decode group after.
        """
        capacity = min(self.prefill_engine.kv_slots, self.decode_engine.kv_slots)
        if request.max_total_len + 1 > capacity:
            request.state = RequestState.FINISHED
            self.aborted.append(request)
            if self.trace.enabled:
                self.trace.audit(
                    self._sim.now, "abort", component="server",
                    request=request.request_id, system=self.name,
                )
                self.trace.end_span(
                    request.request_id, self._sim.now, aborted=True
                )
            return
        self.prefill_engine.submit(request)

    def run(self, requests: list[Request]) -> ServeResult:
        sim = Simulator()
        self.use_simulator(sim)

        for request in requests:
            sim.call_at(
                request.arrival_time,
                self._make_arrival(request),
                label=f"arrival:{request.request_id}",
            )
        sim.run_until_idle()

        aborted = (
            self.aborted
            + self.prefill_engine.aborted
            + self.decode_engine.aborted
        )
        aborted_ids = {r.request_id for r in aborted}
        return ServeResult(
            system=self.name,
            requests=[r for r in requests if r.request_id not in aborted_ids],
            iteration_stats=(
                self.prefill_engine.iteration_stats
                + self.decode_engine.iteration_stats
            ),
            makespan=sim.now,
            aborted=aborted,
        )

    def _make_arrival(self, request: Request):
        def _on_arrival() -> None:
            self.submit(request)

        return _on_arrival

    def _handoff(self, request: Request) -> bool:
        """Queue a finished prefill for migration to the decode group."""
        self._handoff_queue.append(request)
        self._pump_handoffs()
        return True

    def _pump_handoffs(self) -> None:
        """Start reactive migrations while the decode pool has capacity.

        Decode slots are reserved *before* the copy starts; when the
        decode group is full, handoffs (and, through the held prefill
        slots, the prefill engine itself) stall — the isolation
        backpressure of disaggregated designs.
        """
        while self._handoff_queue:
            request = self._handoff_queue[0]
            needed = request.current_len
            if self.decode_engine.pool.free < needed + len(self.decode_engine.running):
                break
            self._handoff_queue.popleft()
            self.decode_engine.pool.allocate(request.request_id, needed)
            migration_time = self.cost_model.migration_time(
                request.current_len,
                src_instance=0,
                dst_instance=1,
                tensor_parallel=self.config.tensor_parallel,
            )
            self.migrations += 1
            self.migration_seconds += migration_time

            def _complete_migration(request: Request = request) -> None:
                # Slots leave the prefill pool only once the copy is done.
                self.prefill_engine.pool.release(request.request_id)
                self.decode_engine.inject_running(request, preallocated=True)
                self.prefill_engine._maybe_start()

            self._sim.call_after(migration_time, _complete_migration)
