"""Chunked-prefill baseline (DeepSpeed-MII Dynamic SplitFuse / LightLLM
SplitFuse / SARATHI).

Long prompts are split into fixed-size chunks; every iteration fuses one
chunk's worth of prefill tokens with a decode step for all running
requests.  Decoding is protected from head-of-line prefill blocking, but
prefill efficiency drops: each chunk re-streams the weights and re-reads
the growing KV prefix (both captured by the cost model), which is why the
paper finds SplitFuse loses on long-prompt datasets with high P:D ratios.

``ideal_chunk_size`` computes SARATHI's "P:D ratio" chunk size the paper
grants this baseline (a per-dataset oracle, "although it is unknown in
practice").
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import EnginePolicy, EngineServer, IterationPlan
from repro.config import SystemConfig
from repro.costmodel.latency import RooflineCostModel
from repro.sim.trace import TraceRecorder
from repro.types import Request


def ideal_chunk_size(
    requests: Sequence[Request],
    minimum: int = 256,
    maximum: int = 65_536,
) -> int:
    """SARATHI's P:D-ratio chunk size for a workload.

    One decode iteration piggybacks ``chunk`` prefill tokens; matching the
    number of chunk iterations to the number of decode iterations per
    request means chunk ~= total_input_tokens / total_output_tokens.
    """
    total_in = sum(r.input_len for r in requests)
    total_out = sum(r.output_len for r in requests)
    if total_out == 0:
        return maximum
    chunk = total_in // max(1, total_out)
    return max(minimum, min(maximum, chunk))


class SplitFusePolicy(EnginePolicy):
    """Fuse up to ``chunk_size`` prefill tokens with every decode step."""

    def __init__(self, chunk_size: int, max_prefill_len: int | None = None) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self.max_prefill_len = max_prefill_len

    def next_iteration(self, engine: EngineServer) -> IterationPlan:
        plan = IterationPlan()
        if engine.running and engine.free_slots_for_decode():
            plan.decode_requests = list(engine.running)

        budget = self.chunk_size
        # Requests mid-prefill continue first (FCFS among the chunked).
        in_flight = list(engine.prefilling) + list(engine.waiting)
        free = engine.pool.free - len(plan.decode_requests)
        for request in in_flight:
            if budget <= 0:
                break
            done = engine.prefill_progress.get(request.request_id, 0)
            remaining = request.current_len - done
            take = min(budget, remaining, max(0, free))
            if take <= 0:
                continue
            plan.prefill_chunks.append((request, take))
            budget -= take
            free -= take
        return plan


class SplitFuseServer(EngineServer):
    """Chunked prefill on a static TP engine (TP=8 in §7.1).

    ``crash_input_len`` reproduces DeepSpeed-MII's "illegal memory access"
    beyond 32K-token prompts (§7.1): requests longer than the limit are
    aborted, so the MII variant is only usable on ShareGPT, exactly as in
    the paper.  The LightLLM variant sets no limit.
    """

    def __init__(
        self,
        config: SystemConfig,
        chunk_size: int,
        cost_model: RooflineCostModel | None = None,
        crash_input_len: int | None = None,
        name: str = "LightLLM w/ SplitFuse",
        trace: TraceRecorder | None = None,
    ) -> None:
        if config.num_instances != 1:
            raise ValueError(
                "SplitFuse baseline expects the whole cluster as one TP instance"
            )
        super().__init__(
            config=config,
            policy=SplitFusePolicy(chunk_size=chunk_size),
            cost_model=cost_model,
            instance_ids=[0],
            num_masters=1,
            name=name,
            trace=trace,
        )
        self.crash_input_len = crash_input_len

    def submit(self, request: Request, now: float | None = None) -> None:
        if self.crash_input_len is not None and request.input_len > self.crash_input_len:
            from repro.types import RequestState

            request.state = RequestState.FINISHED
            self.aborted.append(request)
            return
        super().submit(request, now)
