"""Trace assembly: lengths x arrivals -> request lists.

``make_trace`` builds a reproducible trace; ``clone_requests`` copies one
so the same trace can be replayed on several serving systems (servers
mutate request state in place).
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.types import Request, next_request_id
from repro.workloads.arrival import PoissonArrivals


class LengthSampler(Protocol):
    def sample(self, rng: np.random.Generator) -> tuple[int, int]: ...


def make_trace(
    dataset: LengthSampler,
    rate: float,
    num_requests: int,
    seed: int = 0,
    max_input_len: int | None = None,
) -> list[Request]:
    """Draw a Poisson-arrival trace from a dataset distribution."""
    rng = np.random.default_rng(seed)
    times = PoissonArrivals(rate=rate).times(num_requests, rng)
    requests = []
    for arrival in times:
        input_len, output_len = dataset.sample(rng)
        if max_input_len is not None:
            input_len = min(input_len, max_input_len)
        requests.append(
            Request(
                request_id=next_request_id(),
                input_len=input_len,
                output_len=output_len,
                arrival_time=arrival,
            )
        )
    return requests


def clone_requests(requests: Sequence[Request]) -> list[Request]:
    """Fresh Request objects with identical workload parameters.

    Runtime state (timestamps, generated counts) is reset so each serving
    system starts from the same clean trace.
    """
    return [
        Request(
            request_id=r.request_id,
            input_len=r.input_len,
            output_len=r.output_len,
            arrival_time=r.arrival_time,
            max_tokens=r.max_tokens,
        )
        for r in requests
    ]
