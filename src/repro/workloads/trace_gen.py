"""Trace assembly: lengths x arrivals -> request lists.

``make_trace`` builds a reproducible trace; ``clone_requests`` copies one
so the same trace can be replayed on several serving systems (servers
mutate request state in place); ``shard_trace`` statically splits one
trace into per-replica sub-traces for offline fleet analysis (online
fleet runs route with live state instead — see ``repro.fleet``).
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.types import Request, next_request_id
from repro.workloads.arrival import PoissonArrivals
from repro.workloads.datasets import LONG_INPUT_THRESHOLD


class LengthSampler(Protocol):
    def sample(self, rng: np.random.Generator) -> tuple[int, int]: ...


class ArrivalProcess(Protocol):
    def times(self, count: int, rng: np.random.Generator) -> list[float]: ...


def make_trace(
    dataset: LengthSampler,
    rate: float,
    num_requests: int,
    seed: int = 0,
    max_input_len: int | None = None,
    arrivals: ArrivalProcess | None = None,
    qos_mix: dict[str, float] | None = None,
) -> list[Request]:
    """Draw a trace from a dataset distribution.

    Arrivals default to the paper's Poisson process at ``rate``; pass an
    explicit ``arrivals`` process (e.g. ``BurstyArrivals``) to change
    the temporal shape while keeping the length distribution.

    ``qos_mix`` tags each request with an SLO class drawn from the given
    class->weight mapping (``repro.qos``).  Tagging uses its own RNG
    stream, so a ``qos_mix=None`` trace is bit-identical to pre-QoS
    generation and a tagged trace differs only in the ``qos`` field.
    """
    rng = np.random.default_rng(seed)
    times = (arrivals or PoissonArrivals(rate=rate)).times(num_requests, rng)
    requests = []
    for arrival in times:
        input_len, output_len = dataset.sample(rng)
        if max_input_len is not None:
            input_len = min(input_len, max_input_len)
        requests.append(
            Request(
                request_id=next_request_id(),
                input_len=input_len,
                output_len=output_len,
                arrival_time=arrival,
            )
        )
    if qos_mix is not None:
        from repro.qos.classes import assign_qos

        assign_qos(requests, qos_mix, seed=seed)
    return requests


def shard_trace(
    requests: Sequence[Request],
    num_shards: int,
    policy: str = "round-robin",
    long_threshold: int = LONG_INPUT_THRESHOLD,
) -> list[list[Request]]:
    """Statically split a trace into ``num_shards`` per-replica traces.

    Policies mirror the stateless fleet routers: ``round-robin`` deals
    requests out in arrival order; ``length-aware`` sends long-input
    requests (>= ``long_threshold`` tokens) to the first half of the
    shards and short ones to the rest, balancing each side by running
    token count.  Every request lands in exactly one shard; arrival
    order within a shard is preserved.
    """
    if num_shards < 1:
        raise ValueError(f"need at least one shard, got {num_shards}")
    shards: list[list[Request]] = [[] for _ in range(num_shards)]
    ordered = sorted(requests, key=lambda r: r.arrival_time)
    if policy == "round-robin":
        for position, request in enumerate(ordered):
            shards[position % num_shards].append(request)
    elif policy == "length-aware":
        boundary = max(1, num_shards // 2) if num_shards > 1 else 0
        loads = [0] * num_shards
        for request in ordered:
            if num_shards == 1:
                candidates = [0]
            elif request.input_len >= long_threshold:
                candidates = list(range(boundary))
            else:
                candidates = list(range(boundary, num_shards))
            target = min(candidates, key=lambda i: (loads[i], i))
            shards[target].append(request)
            loads[target] += request.input_len + request.output_len
    else:
        raise ValueError(
            f"unknown shard policy {policy!r}; choose round-robin or length-aware"
        )
    return shards


def clone_requests(requests: Sequence[Request]) -> list[Request]:
    """Fresh Request objects with identical workload parameters.

    Runtime state (timestamps, generated counts) is reset so each serving
    system starts from the same clean trace.
    """
    return [
        Request(
            request_id=r.request_id,
            input_len=r.input_len,
            output_len=r.output_len,
            arrival_time=r.arrival_time,
            max_tokens=r.max_tokens,
            session_id=r.session_id,
            turn=r.turn,
            token_ids=r.token_ids,
            output_token_ids=r.output_token_ids,
            qos=r.qos,
        )
        for r in requests
    ]
