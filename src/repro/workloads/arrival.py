"""Arrival processes.

The paper generates arrivals with a Poisson process (§7.1); a fixed-gap
process is provided for deterministic tests and overhead microbenches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PoissonArrivals:
    """Exponential inter-arrival gaps at ``rate`` requests/second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")

    def times(self, count: int, rng: np.random.Generator) -> list[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        gaps = rng.exponential(1.0 / self.rate, size=count)
        return np.cumsum(gaps).tolist()


@dataclass(frozen=True)
class UniformArrivals:
    """Deterministic fixed-gap arrivals at ``rate`` requests/second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")

    def times(self, count: int, rng: np.random.Generator | None = None) -> list[float]:
        gap = 1.0 / self.rate
        return [gap * (i + 1) for i in range(count)]
