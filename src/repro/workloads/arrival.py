"""Arrival processes.

The paper generates arrivals with a Poisson process (§7.1); a fixed-gap
process is provided for deterministic tests and overhead microbenches,
and an on/off modulated Poisson process (``BurstyArrivals``) for the
elastic-fleet experiments — production traffic is bursty, and burstiness
is exactly what a closed-loop control plane (autoscaling, work stealing)
exploits over route-once placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PoissonArrivals:
    """Exponential inter-arrival gaps at ``rate`` requests/second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")

    def times(self, count: int, rng: np.random.Generator) -> list[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        gaps = rng.exponential(1.0 / self.rate, size=count)
        return np.cumsum(gaps).tolist()


@dataclass(frozen=True)
class BurstyArrivals:
    """On/off Markov-modulated Poisson arrivals averaging ``rate``.

    Each cycle of ``cycle_s`` seconds spends ``burst_fraction`` of its
    length in a burst phase whose instantaneous rate is ``burst_factor``
    times the off-phase rate; the two phase rates are scaled so the
    *mean* rate over a cycle equals ``rate``, which keeps bursty traces
    comparable to Poisson traces at the same nominal load.  Sampling is
    the standard piecewise-thinning construction: draw an exponential
    gap at the current phase's rate, and restart from the phase boundary
    whenever the gap crosses it.
    """

    rate: float
    burst_factor: float = 4.0
    burst_fraction: float = 0.25
    cycle_s: float = 20.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")
        if self.burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {self.burst_factor}")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError(
                f"burst_fraction must be in (0, 1), got {self.burst_fraction}"
            )
        if self.cycle_s <= 0:
            raise ValueError(f"cycle_s must be positive, got {self.cycle_s}")

    def phase_rates(self) -> tuple[float, float]:
        """(burst rate, off rate), mean-preserving for the cycle."""
        f, p = self.burst_factor, self.burst_fraction
        off = self.rate / (p * f + (1.0 - p))
        return off * f, off

    def _rate_at(self, t: float) -> float:
        burst_rate, off_rate = self.phase_rates()
        in_cycle = t % self.cycle_s
        return burst_rate if in_cycle < self.burst_fraction * self.cycle_s else off_rate

    def _next_boundary(self, t: float) -> float:
        cycle_start = (t // self.cycle_s) * self.cycle_s
        burst_end = cycle_start + self.burst_fraction * self.cycle_s
        if t < burst_end:
            return burst_end
        return cycle_start + self.cycle_s

    def times(self, count: int, rng: np.random.Generator) -> list[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        times: list[float] = []
        t = 0.0
        while len(times) < count:
            gap = rng.exponential(1.0 / self._rate_at(t))
            boundary = self._next_boundary(t)
            if t + gap >= boundary:
                t = boundary  # phase changed before the arrival: resample
                continue
            t += gap
            times.append(t)
        return times


@dataclass(frozen=True)
class UniformArrivals:
    """Deterministic fixed-gap arrivals at ``rate`` requests/second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")

    def times(self, count: int, rng: np.random.Generator | None = None) -> list[float]:
        gap = 1.0 / self.rate
        return [gap * (i + 1) for i in range(count)]
