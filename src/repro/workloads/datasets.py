"""Synthetic dataset length distributions.

Published facts reproduced here (§7.1):

* **ShareGPT** — chat transcripts; sequence lengths 4 – 2.3K tokens;
  short inputs, comparatively long outputs (chatty decode phase — the
  workload that makes elastic scale-up matter in Figure 13).
* **L-Eval** — long-document QA/summarisation; 2.7K – 210.5K tokens;
  long inputs, short grounded answers.
* **LV-Eval** — the longest benchmark available at the time; 15.1K –
  497.3K tokens; very long inputs, short answers.
* **Mixed** — equal-probability mixture of the three.

Each distribution is a clipped lognormal over inputs and outputs, the
standard shape for LLM serving traces; parameters were chosen so medians
and tails sit inside the published ranges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LengthSpec:
    """Clipped lognormal over token counts."""

    log_mean: float
    log_sigma: float
    minimum: int
    maximum: int

    def sample(self, rng: np.random.Generator) -> int:
        value = rng.lognormal(self.log_mean, self.log_sigma)
        return int(min(max(value, self.minimum), self.maximum))


@dataclass(frozen=True)
class LengthDistribution:
    """Joint (input_len, output_len) sampler for one dataset."""

    name: str
    input_spec: LengthSpec
    output_spec: LengthSpec

    def sample(self, rng: np.random.Generator) -> tuple[int, int]:
        return self.input_spec.sample(rng), self.output_spec.sample(rng)

    @property
    def max_total_len(self) -> int:
        return self.input_spec.maximum + self.output_spec.maximum


# ShareGPT prompts top out at ~2.3K tokens while the long-document
# datasets (L-Eval, LV-Eval) start at ~2.7K, so this threshold cleanly
# splits the Mixed workload into its short and long populations (used by
# length-aware fleet routing and offline trace sharding).
LONG_INPUT_THRESHOLD = 2_600

SHAREGPT = LengthDistribution(
    name="ShareGPT",
    input_spec=LengthSpec(log_mean=math.log(180.0), log_sigma=1.1, minimum=4, maximum=2300),
    output_spec=LengthSpec(log_mean=math.log(220.0), log_sigma=0.9, minimum=2, maximum=2000),
)

LEVAL = LengthDistribution(
    name="L-Eval",
    input_spec=LengthSpec(
        log_mean=math.log(12_000.0), log_sigma=1.0, minimum=2700, maximum=210_500
    ),
    output_spec=LengthSpec(log_mean=math.log(180.0), log_sigma=0.8, minimum=8, maximum=1200),
)

LVEVAL = LengthDistribution(
    name="LV-Eval",
    input_spec=LengthSpec(
        log_mean=math.log(60_000.0), log_sigma=0.9, minimum=15_100, maximum=497_300
    ),
    output_spec=LengthSpec(log_mean=math.log(120.0), log_sigma=0.7, minimum=8, maximum=600),
)


@dataclass(frozen=True)
class MixedDistribution:
    """Uniform mixture over component datasets (the paper's "Mixed")."""

    name: str
    components: tuple[LengthDistribution, ...]
    max_input_len: int | None = None

    def sample(self, rng: np.random.Generator) -> tuple[int, int]:
        component = self.components[int(rng.integers(len(self.components)))]
        input_len, output_len = component.sample(rng)
        if self.max_input_len is not None:
            input_len = min(input_len, self.max_input_len)
        return input_len, output_len

    @property
    def max_total_len(self) -> int:
        return max(c.max_total_len for c in self.components)


MIXED = MixedDistribution(name="Mixed", components=(SHAREGPT, LEVAL, LVEVAL))


@dataclass(frozen=True)
class ZipfMixed:
    """Zipf-skewed sampling over a pool of Mixed lengths (Figure 12).

    A pool of candidate (input, output) pairs is drawn from Mixed, sorted
    by total length ascending, and sampled with probability proportional
    to ``rank^-zipf``.  Larger ``zipf`` skews traffic toward short
    requests — the paper sweeps 1.0 / 1.2 / 1.4 and caps lengths at 200K
    so the replicated baseline can serve them at all.
    """

    name: str
    zipf: float
    pool_size: int = 512
    max_input_len: int = 200_000
    seed: int = 20_240_404

    def sample(self, rng: np.random.Generator) -> tuple[int, int]:
        pool = self._pool()
        ranks = np.arange(1, len(pool) + 1, dtype=float)
        weights = ranks**-self.zipf
        weights /= weights.sum()
        index = int(rng.choice(len(pool), p=weights))
        return pool[index]

    def _pool(self) -> list[tuple[int, int]]:
        rng = np.random.default_rng(self.seed)
        base = MixedDistribution(
            name="Mixed", components=(SHAREGPT, LEVAL, LVEVAL),
            max_input_len=self.max_input_len,
        )
        pool = [base.sample(rng) for _ in range(self.pool_size)]
        pool.sort(key=lambda pair: pair[0] + pair[1])
        return pool

    @property
    def max_total_len(self) -> int:
        return self.max_input_len + max(s.output_spec.maximum for s in (SHAREGPT, LEVAL, LVEVAL))


DATASETS: dict[str, LengthDistribution | MixedDistribution] = {
    "sharegpt": SHAREGPT,
    "leval": LEVAL,
    "lveval": LVEVAL,
    "mixed": MIXED,
}
