"""Trace serialization: save and reload workload traces as JSON lines.

Real serving evaluations replay *recorded* traces; this module gives the
reproduction the same workflow — generate once, commit/share the file,
replay identically across systems and machines (float-exact, since JSON
round-trips the decimal repr of arrival times).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.types import Request

_FIELDS = ("request_id", "input_len", "output_len", "arrival_time", "max_tokens")


def trace_to_records(requests: Sequence[Request]) -> list[dict]:
    """Workload-defining fields only (no runtime state).

    Session fields (``session_id``/``turn``/``token_ids``) are emitted
    only for multi-turn requests, and the QoS class tag only for tagged
    requests, keeping plain single-turn traces unchanged.
    """
    records = []
    for r in requests:
        record = {
            "request_id": r.request_id,
            "input_len": r.input_len,
            "output_len": r.output_len,
            "arrival_time": r.arrival_time,
            "max_tokens": r.max_tokens,
        }
        if r.qos is not None:
            record["qos"] = r.qos
        if r.session_id is not None:
            record["session_id"] = r.session_id
            record["turn"] = r.turn
            if r.token_ids is not None:
                record["token_ids"] = list(r.token_ids)
            if r.output_token_ids is not None:
                record["output_token_ids"] = list(r.output_token_ids)
        records.append(record)
    return records


def records_to_trace(records: Iterable[dict]) -> list[Request]:
    requests = []
    for record in records:
        missing = [f for f in _FIELDS if f not in record and f != "max_tokens"]
        if missing:
            raise ValueError(f"trace record missing fields {missing}: {record}")
        token_ids = record.get("token_ids")
        output_token_ids = record.get("output_token_ids")
        requests.append(
            Request(
                request_id=int(record["request_id"]),
                input_len=int(record["input_len"]),
                output_len=int(record["output_len"]),
                arrival_time=float(record["arrival_time"]),
                max_tokens=(
                    int(record["max_tokens"])
                    if record.get("max_tokens") is not None
                    else None
                ),
                session_id=(
                    int(record["session_id"])
                    if record.get("session_id") is not None
                    else None
                ),
                turn=int(record.get("turn", 0)),
                token_ids=(
                    tuple(int(t) for t in token_ids)
                    if token_ids is not None
                    else None
                ),
                output_token_ids=(
                    tuple(int(t) for t in output_token_ids)
                    if output_token_ids is not None
                    else None
                ),
                qos=(
                    str(record["qos"]) if record.get("qos") is not None else None
                ),
            )
        )
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return requests


def save_trace(requests: Sequence[Request], path: str | Path) -> None:
    """Write one JSON object per line (jsonl)."""
    path = Path(path)
    with path.open("w") as handle:
        for record in trace_to_records(requests):
            handle.write(json.dumps(record) + "\n")


def load_trace(path: str | Path) -> list[Request]:
    """Read a jsonl trace back into fresh Request objects."""
    path = Path(path)
    records = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON") from exc
    return records_to_trace(records)
