"""Workload generation: dataset length distributions and arrival processes.

The paper samples request input/output lengths from ShareGPT, L-Eval, and
LV-Eval and draws arrivals from a Poisson process (§7.1).  The datasets
themselves are not redistributable here, so each is modelled as a
length distribution matched to the published ranges and task shapes; the
Mixed workload and the Zipf-skewed sampling for the Figure 12 ablation
are built on top.
"""

from repro.workloads.arrival import PoissonArrivals
from repro.workloads.datasets import (
    DATASETS,
    LengthDistribution,
    LEVAL,
    LVEVAL,
    MIXED,
    SHAREGPT,
    ZipfMixed,
)
from repro.workloads.trace_gen import clone_requests, make_trace

__all__ = [
    "DATASETS",
    "LEVAL",
    "LVEVAL",
    "LengthDistribution",
    "MIXED",
    "PoissonArrivals",
    "SHAREGPT",
    "ZipfMixed",
    "clone_requests",
    "make_trace",
]
