"""Elastic scaling plan structures (§4, §5.4).

A :class:`ScalingPlan` tells the elasticity controller how a batch's
parallel group changes after the current iteration:

* :class:`ScaleDownPlan` — proactive scale-down during prefill: the
  surviving instances retain KV tensors as they circulate through the
  ring, so the plan carries a token-level *placement* (tokens per kept
  instance) and no migration cost.
* :class:`ScaleUpPlan` — decode scale-up: new instances join the group and
  may be promoted to masters; existing KV never moves.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScaleDownPlan:
    """Proactive scale-down: keep ``placement.keys()``, drop the rest.

    ``placement`` maps surviving instance id -> number of KV tokens it
    retains once the prefill's ring circulation completes.  Because every
    instance sees every KV shard during striped attention, *any*
    token-level split is realisable at zero extra communication (§4.1).
    """

    group_before: tuple[int, ...]
    placement: dict[int, int]

    def __post_init__(self) -> None:
        if not self.placement:
            raise ValueError("scale-down must keep at least one instance")
        stray = set(self.placement) - set(self.group_before)
        if stray:
            raise ValueError(f"placement targets {sorted(stray)} outside the group")
        if any(v < 0 for v in self.placement.values()):
            raise ValueError("placement token counts must be non-negative")

    @property
    def group_after(self) -> tuple[int, ...]:
        return tuple(sorted(self.placement))

    @property
    def released(self) -> tuple[int, ...]:
        return tuple(i for i in self.group_before if i not in self.placement)

    @property
    def total_tokens(self) -> int:
        return sum(self.placement.values())

    @property
    def migration_tokens(self) -> int:
        """Tokens moved by extra communication — always zero (the point)."""
        return 0


@dataclass(frozen=True)
class ScaleUpPlan:
    """Decode scale-up: add instances, optionally promote masters."""

    group_before: tuple[int, ...]
    new_instances: tuple[int, ...]
    masters_after: tuple[int, ...]

    def __post_init__(self) -> None:
        overlap = set(self.new_instances) & set(self.group_before)
        if overlap:
            raise ValueError(f"instances {sorted(overlap)} already in group")
        if not self.masters_after:
            raise ValueError("scale-up must designate at least one master")
        stray = set(self.masters_after) - set(self.group_after)
        if stray:
            raise ValueError(f"masters {sorted(stray)} outside the scaled group")

    @property
    def group_after(self) -> tuple[int, ...]:
        return self.group_before + self.new_instances

    @property
    def migration_tokens(self) -> int:
        """Existing KV tensors never move on scale-up (§4.2)."""
        return 0


ScalingPlan = ScaleDownPlan | ScaleUpPlan
