"""Parallelism abstractions: TPxSP strategies, ESP groups, scaling plans."""

from repro.parallel.esp import ScaleDownPlan, ScaleUpPlan, ScalingPlan
from repro.parallel.groups import ParallelGroup
from repro.parallel.strategy import ParallelismStrategy

__all__ = [
    "ParallelGroup",
    "ParallelismStrategy",
    "ScaleDownPlan",
    "ScaleUpPlan",
    "ScalingPlan",
]
