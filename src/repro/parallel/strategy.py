"""Parallelism strategy descriptors.

A strategy is a (tensor_parallel, sequence_parallel) pair: the model is
sharded TP-ways inside each elastic instance, and a parallel group of SP
instances splits the sequence dimension.  The paper's launch configuration
fixes TP (TP=2 for LoongServe) and lets SP vary per iteration — that per-
iteration SP is the *degree of parallelism* (DoP).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class ParallelismStrategy:
    """One TPxSP layout, e.g. SP4TP2 = 4 instances of 2 GPUs each."""

    tensor_parallel: int
    sequence_parallel: int

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1:
            raise ValueError(f"tensor_parallel must be >= 1, got {self.tensor_parallel}")
        if self.sequence_parallel < 1:
            raise ValueError(f"sequence_parallel must be >= 1, got {self.sequence_parallel}")

    @property
    def world_size(self) -> int:
        """Total GPUs the strategy occupies."""
        return self.tensor_parallel * self.sequence_parallel

    @property
    def dop(self) -> int:
        """Degree of parallelism = number of elastic instances."""
        return self.sequence_parallel

    @property
    def label(self) -> str:
        """The paper's naming, e.g. ``SP4TP2``."""
        return f"SP{self.sequence_parallel}TP{self.tensor_parallel}"

    def __str__(self) -> str:
        return self.label


def strategies_for_gpus(num_gpus: int, tensor_parallel: int) -> list[ParallelismStrategy]:
    """All SP degrees available at a fixed launch-time TP.

    With TP=2 on 8 GPUs this yields SP1TP2 .. SP4TP2 — the DoP menu the
    LoongServe global manager chooses from each iteration.
    """
    if num_gpus % tensor_parallel != 0:
        raise ValueError(f"{num_gpus} GPUs not divisible by TP={tensor_parallel}")
    max_sp = num_gpus // tensor_parallel
    return [
        ParallelismStrategy(tensor_parallel=tensor_parallel, sequence_parallel=sp)
        for sp in range(1, max_sp + 1)
    ]
