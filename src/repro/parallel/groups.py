"""ESP parallel groups.

A :class:`ParallelGroup` is a set of elastic instances executing one batch
with DoP = group size (§4).  Groups are disjoint; the global manager
re-forms them every iteration.  Master designations implement single- and
multi-master distributed decoding (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.strategy import ParallelismStrategy


@dataclass
class ParallelGroup:
    """A set of instances jointly executing one batch."""

    instance_ids: tuple[int, ...]
    tensor_parallel: int
    masters: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.instance_ids:
            raise ValueError("a parallel group needs at least one instance")
        if len(set(self.instance_ids)) != len(self.instance_ids):
            raise ValueError(f"duplicate instances in group: {self.instance_ids}")
        if not self.masters:
            self.masters = (self.instance_ids[0],)
        unknown = set(self.masters) - set(self.instance_ids)
        if unknown:
            raise ValueError(f"masters {sorted(unknown)} not members of group")

    @property
    def dop(self) -> int:
        """Degree of parallelism of this group."""
        return len(self.instance_ids)

    @property
    def num_masters(self) -> int:
        return len(self.masters)

    @property
    def strategy(self) -> ParallelismStrategy:
        return ParallelismStrategy(
            tensor_parallel=self.tensor_parallel, sequence_parallel=self.dop
        )

    def with_masters(self, masters: tuple[int, ...]) -> ParallelGroup:
        return ParallelGroup(
            instance_ids=self.instance_ids,
            tensor_parallel=self.tensor_parallel,
            masters=masters,
        )

    def expanded(self, new_instances: tuple[int, ...]) -> ParallelGroup:
        """Group after scale-up: new instances join without KV migration."""
        overlap = set(new_instances) & set(self.instance_ids)
        if overlap:
            raise ValueError(f"instances {sorted(overlap)} already in group")
        return ParallelGroup(
            instance_ids=self.instance_ids + tuple(new_instances),
            tensor_parallel=self.tensor_parallel,
            masters=self.masters,
        )

    def shrunk(self, keep: tuple[int, ...]) -> ParallelGroup:
        """Group after scale-down to the ``keep`` subset."""
        missing = set(keep) - set(self.instance_ids)
        if missing:
            raise ValueError(f"instances {sorted(missing)} not in group")
        if not keep:
            raise ValueError("cannot shrink a group to zero instances")
        masters = tuple(i for i in self.masters if i in keep) or (keep[0],)
        return ParallelGroup(
            instance_ids=tuple(keep),
            tensor_parallel=self.tensor_parallel,
            masters=masters,
        )

    def __contains__(self, instance_id: int) -> bool:
        return instance_id in self.instance_ids

    def __len__(self) -> int:
        return len(self.instance_ids)
