"""Unified observability: spans, audit log, telemetry, exporters.

See :mod:`repro.obs.tracer` for the span/audit model,
:mod:`repro.obs.telemetry` for the metrics registry,
:mod:`repro.obs.observe` for the run-level bundle and samplers,
:mod:`repro.obs.export`/:mod:`repro.obs.explain` for the Perfetto/JSONL
exporters and the post-hoc ``explain`` narration,
:mod:`repro.obs.forensics` for critical-path blame attribution, and
:mod:`repro.obs.health` for the SLO burn-rate monitor.
"""

from repro.obs.explain import diff_telemetry, request_ids, request_story
from repro.obs.forensics import (
    BlameReport,
    RequestBlame,
    attribute,
    diff_blame,
    render_report,
    verify_partition,
)
from repro.obs.health import SLOHealthMonitor
from repro.obs.export import (
    export_jsonl,
    export_perfetto,
    load_export,
    perfetto_trace,
    validate_perfetto,
)
from repro.obs.observe import DEFAULT_TELEMETRY_INTERVAL, Observability
from repro.obs.telemetry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import SPAN_PHASES, AuditRecord, Span, TraceRecord, Tracer

__all__ = [
    "AuditRecord",
    "BlameReport",
    "Counter",
    "DEFAULT_TELEMETRY_INTERVAL",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "RequestBlame",
    "SLOHealthMonitor",
    "SPAN_PHASES",
    "Span",
    "TraceRecord",
    "Tracer",
    "attribute",
    "diff_blame",
    "diff_telemetry",
    "export_jsonl",
    "export_perfetto",
    "load_export",
    "perfetto_trace",
    "render_report",
    "request_ids",
    "request_story",
    "validate_perfetto",
    "verify_partition",
]
