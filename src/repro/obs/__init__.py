"""Unified observability: spans, audit log, telemetry, exporters.

See :mod:`repro.obs.tracer` for the span/audit model,
:mod:`repro.obs.telemetry` for the metrics registry,
:mod:`repro.obs.observe` for the run-level bundle and samplers, and
:mod:`repro.obs.export`/:mod:`repro.obs.explain` for the Perfetto/JSONL
exporters and the post-hoc ``explain`` narration.
"""

from repro.obs.explain import diff_telemetry, request_ids, request_story
from repro.obs.export import (
    export_jsonl,
    export_perfetto,
    load_export,
    perfetto_trace,
    validate_perfetto,
)
from repro.obs.observe import DEFAULT_TELEMETRY_INTERVAL, Observability
from repro.obs.telemetry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import SPAN_PHASES, AuditRecord, Span, TraceRecord, Tracer

__all__ = [
    "AuditRecord",
    "Counter",
    "DEFAULT_TELEMETRY_INTERVAL",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "SPAN_PHASES",
    "Span",
    "TraceRecord",
    "Tracer",
    "diff_telemetry",
    "export_jsonl",
    "export_perfetto",
    "load_export",
    "perfetto_trace",
    "request_ids",
    "request_story",
    "validate_perfetto",
]
