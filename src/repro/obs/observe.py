"""The observability bundle and its control-tick samplers.

:class:`Observability` packages the :class:`~repro.obs.tracer.Tracer`
(spans + audit log) with a :class:`~repro.obs.telemetry.MetricsRegistry`
and knows how to sample the standard fleet/server signals:

* with a :class:`~repro.fleet.control.FleetController` running,
  telemetry rides the existing control ticks (one sample per tick, on
  the tick's clock — no extra events);
* without one (single server, static route-once fleet), a standalone
  repeating timer samples every ``telemetry_interval`` seconds and
  disarms itself once the simulation has nothing else scheduled, so a
  run still drains to idle.

One ``Observability`` instance covers one run; attach a fresh one per
run when comparing.
"""

from __future__ import annotations

from repro.obs.telemetry import MetricsRegistry
from repro.obs.tracer import SHADOW_REQUEST_OFFSET, Tracer

#: Default sampling cadence, matching the fleet control interval.
DEFAULT_TELEMETRY_INTERVAL = 0.5

# Samples observe post-placement, post-server state at an instant —
# same slot as the fleet control tick.
_SAMPLE_PRIORITY = 9


class Observability:
    """Tracer + metrics registry + sampling glue for one run."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        telemetry_interval: float = DEFAULT_TELEMETRY_INTERVAL,
    ) -> None:
        if telemetry_interval <= 0:
            raise ValueError(
                f"telemetry interval must be positive, got {telemetry_interval}"
            )
        self.tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.telemetry_interval = telemetry_interval
        # (time, cumulative generated tokens) at the previous sample —
        # the finite difference behind the tokens/s gauge.
        self._last_tokens: tuple[float, float] | None = None
        # Per-server high-water marks into the append-only ``finished``
        # lists: each control tick feeds only the newly finished
        # requests into the latency histograms.  Keyed by id(server) —
        # one Observability covers one run, so ids are stable.
        self._finished_cursors: dict[int, int] = {}
        # Optional SLO burn-rate monitor (off by default; see
        # :meth:`enable_health`).  When armed it observes on the same
        # ticks as the samplers, just before each metrics sample.
        self.health = None

    def enable_health(self, monitor=None):
        """Arm the SLO burn-rate monitor (see :mod:`repro.obs.health`).

        Pass a configured :class:`~repro.obs.health.SLOHealthMonitor`
        or let this build one with defaults.  Returns the monitor.
        """
        if monitor is None:
            from repro.obs.health import SLOHealthMonitor

            monitor = SLOHealthMonitor()
        self.health = monitor
        return monitor

    # ------------------------------------------------------------------
    # Samplers
    # ------------------------------------------------------------------

    def _tokens_per_s(self, now: float, total: float) -> float:
        prev = self._last_tokens
        self._last_tokens = (now, total)
        if prev is None or now <= prev[0]:
            return 0.0
        return (total - prev[1]) / (now - prev[0])

    def _sample_slack(self, active, now: float) -> None:
        """Per-QoS-class mean deadline slack over in-flight requests."""
        by_class: dict[str, list[float]] = {}
        for request in active:
            if request.deadline is not None:
                cls = request.effective_qos or "default"
                by_class.setdefault(cls, []).append(request.deadline - now)
        for cls, slacks in by_class.items():
            self.metrics.gauge(f"slack.{cls}").set(sum(slacks) / len(slacks))

    def _observe_latencies(self, server, prefix: str) -> None:
        """Feed newly finished requests into the latency histograms.

        ``finished`` is append-only (it even survives a replica crash),
        so a cursor per server makes each tick O(newly finished): TTFT
        as first-token minus arrival, and the mean per-token decode
        latency for requests that decoded past their first token.
        """
        finished = getattr(server, "finished", None)
        if finished is None:
            return
        start = self._finished_cursors.get(id(server), 0)
        end = len(finished)
        if end <= start:
            return
        ttft = self.metrics.histogram(f"{prefix}.ttft")
        per_token = self.metrics.histogram(f"{prefix}.per_token_latency")
        for i in range(start, end):
            request = finished[i]
            first = request.first_token_time
            if first is None or request.request_id >= SHADOW_REQUEST_OFFSET:
                continue  # internal shadow clones are not arrivals
            ttft.observe(first - request.arrival_time)
            if request.generated > 1 and request.finish_time is not None:
                per_token.observe(
                    (request.finish_time - first) / (request.generated - 1)
                )
        self._finished_cursors[id(server)] = end

    def sample_fleet(self, replicas, now: float) -> None:
        """One telemetry sample over a fleet's replica handles."""
        metrics = self.metrics
        queued = 0
        outstanding = 0
        batch = 0
        tokens = 0.0
        kv_frac = 0.0
        active = []
        for handle in replicas:
            queued += len(handle.queued_requests())
            outstanding += handle.outstanding_requests()
            active.extend(r for r in handle._active if not r.finished)
            kv_frac += handle.kv_used_fraction()
            for b in getattr(handle.server, "decode_batches", None) or []:
                batch += b.batch_size
            generated = getattr(handle.server, "_generated_total", None)
            if generated is None:  # non-LoongServe replica shapes
                generated = sum(r.generated for r in handle.routed)
            tokens += generated
            self._observe_latencies(handle.server, "fleet")
        n = len(replicas) or 1
        metrics.gauge("fleet.queue_depth").set(queued)
        metrics.gauge("fleet.outstanding").set(outstanding)
        metrics.gauge("fleet.kv_used_fraction").set(kv_frac / n)
        metrics.gauge("fleet.batch_size").set(batch)
        metrics.gauge("fleet.online_replicas").set(
            sum(1 for r in replicas if r.online)
        )
        metrics.gauge("fleet.tokens_per_s").set(self._tokens_per_s(now, tokens))
        self._sample_slack(active, now)
        if self.health is not None:
            self.health.observe(
                [h.server for h in replicas], now,
                tracer=self.tracer, metrics=metrics,
            )
        metrics.sample(now)

    def sample_server(self, server, now: float) -> None:
        """One telemetry sample over a single serving system."""
        metrics = self.metrics
        pending = getattr(server, "pending", None)
        if pending is None:
            pending = getattr(server, "waiting", None) or []
        metrics.gauge("server.queue_depth").set(len(pending))
        pool = getattr(server, "pool", None)
        if pool is not None:
            capacity = getattr(pool, "total_capacity", None)
            free = getattr(pool, "total_free", None)
            if capacity is None:
                capacity, free = pool.capacity, pool.free
            metrics.gauge("server.kv_used_fraction").set(
                1.0 - free / capacity if capacity else 0.0
            )
        batch = sum(
            b.batch_size for b in getattr(server, "decode_batches", None) or []
        )
        metrics.gauge("server.batch_size").set(batch)
        tokens = getattr(server, "_generated_total", None)
        if tokens is None:  # non-LoongServe server shapes keep the scan
            tokens = sum(r.generated for r in getattr(server, "_all_requests", ()))
        metrics.gauge("server.tokens_per_s").set(self._tokens_per_s(now, float(tokens)))
        self._sample_slack(self._live_requests(server, pending), now)
        self._observe_latencies(server, "server")
        if self.health is not None:
            self.health.observe(
                [server], now, tracer=self.tracer, metrics=metrics
            )
        metrics.sample(now)

    @staticmethod
    def _live_requests(server, pending):
        """In-flight requests in O(live): queued + prefilling + decoding.

        The three sources are disjoint and cover every unfinished,
        unaborted request, so the slack sample matches the old
        whole-trace scan without touching requests that already left
        the system.  Servers without the incremental bookkeeping fall
        back to that scan.
        """
        prefilling = getattr(server, "_prefilling", None)
        if prefilling is None:
            return (
                r for r in getattr(server, "_all_requests", ()) if not r.finished
            )
        live = list(pending)
        live.extend(prefilling.values())
        for batch in getattr(server, "decode_batches", None) or []:
            live.extend(batch.requests)
        return live

    # ------------------------------------------------------------------
    # Standalone sampling timer (runs without a FleetController)
    # ------------------------------------------------------------------

    def arm_standalone_sampler(self, sim, sample) -> None:
        """Sample every ``telemetry_interval`` while the sim has work.

        ``sample`` is a ``(now) -> None`` callback (a bound
        ``sample_fleet``/``sample_server`` partial).  The ticks are
        *weak* events: a tick popped with nothing else queued is
        discarded instead of run, so the sampler neither keeps a
        drained simulation alive nor stretches the final clock (and
        the makespan) past the last real event.
        """
        interval = self.telemetry_interval

        def _tick() -> None:
            sample(sim.now)
            if sim.next_event_time() is not None:
                sim.call_after(
                    interval, _tick,
                    priority=_SAMPLE_PRIORITY, label="telemetry-sample",
                    weak=True,
                )

        sim.call_after(
            interval, _tick, priority=_SAMPLE_PRIORITY,
            label="telemetry-sample", weak=True,
        )
