"""The observability bundle and its control-tick samplers.

:class:`Observability` packages the :class:`~repro.obs.tracer.Tracer`
(spans + audit log) with a :class:`~repro.obs.telemetry.MetricsRegistry`
and knows how to sample the standard fleet/server signals:

* with a :class:`~repro.fleet.control.FleetController` running,
  telemetry rides the existing control ticks (one sample per tick, on
  the tick's clock — no extra events);
* without one (single server, static route-once fleet), a standalone
  repeating timer samples every ``telemetry_interval`` seconds and
  disarms itself once the simulation has nothing else scheduled, so a
  run still drains to idle.

One ``Observability`` instance covers one run; attach a fresh one per
run when comparing.
"""

from __future__ import annotations

from repro.obs.telemetry import MetricsRegistry
from repro.obs.tracer import Tracer

#: Default sampling cadence, matching the fleet control interval.
DEFAULT_TELEMETRY_INTERVAL = 0.5

# Samples observe post-placement, post-server state at an instant —
# same slot as the fleet control tick.
_SAMPLE_PRIORITY = 9


class Observability:
    """Tracer + metrics registry + sampling glue for one run."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        telemetry_interval: float = DEFAULT_TELEMETRY_INTERVAL,
    ) -> None:
        if telemetry_interval <= 0:
            raise ValueError(
                f"telemetry interval must be positive, got {telemetry_interval}"
            )
        self.tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.telemetry_interval = telemetry_interval
        # (time, cumulative generated tokens) at the previous sample —
        # the finite difference behind the tokens/s gauge.
        self._last_tokens: tuple[float, float] | None = None

    # ------------------------------------------------------------------
    # Samplers
    # ------------------------------------------------------------------

    def _tokens_per_s(self, now: float, total: float) -> float:
        prev = self._last_tokens
        self._last_tokens = (now, total)
        if prev is None or now <= prev[0]:
            return 0.0
        return (total - prev[1]) / (now - prev[0])

    def _sample_slack(self, active, now: float) -> None:
        """Per-QoS-class mean deadline slack over in-flight requests."""
        by_class: dict[str, list[float]] = {}
        for request in active:
            if request.deadline is not None:
                cls = request.effective_qos or "default"
                by_class.setdefault(cls, []).append(request.deadline - now)
        for cls, slacks in by_class.items():
            self.metrics.gauge(f"slack.{cls}").set(sum(slacks) / len(slacks))

    def sample_fleet(self, replicas, now: float) -> None:
        """One telemetry sample over a fleet's replica handles."""
        metrics = self.metrics
        queued = 0
        outstanding = 0
        batch = 0
        tokens = 0.0
        kv_frac = 0.0
        active = []
        for handle in replicas:
            queued += len(handle.queued_requests())
            outstanding += handle.outstanding_requests()
            active.extend(r for r in handle._active if not r.finished)
            kv_frac += handle.kv_used_fraction()
            for b in getattr(handle.server, "decode_batches", None) or []:
                batch += b.batch_size
            tokens += sum(r.generated for r in handle.routed)
        n = len(replicas) or 1
        metrics.gauge("fleet.queue_depth").set(queued)
        metrics.gauge("fleet.outstanding").set(outstanding)
        metrics.gauge("fleet.kv_used_fraction").set(kv_frac / n)
        metrics.gauge("fleet.batch_size").set(batch)
        metrics.gauge("fleet.online_replicas").set(
            sum(1 for r in replicas if r.online)
        )
        metrics.gauge("fleet.tokens_per_s").set(self._tokens_per_s(now, tokens))
        self._sample_slack(active, now)
        metrics.sample(now)

    def sample_server(self, server, now: float) -> None:
        """One telemetry sample over a single serving system."""
        metrics = self.metrics
        pending = getattr(server, "pending", None)
        if pending is None:
            pending = getattr(server, "waiting", None) or []
        metrics.gauge("server.queue_depth").set(len(pending))
        pool = getattr(server, "pool", None)
        if pool is not None:
            capacity = getattr(pool, "total_capacity", None)
            free = getattr(pool, "total_free", None)
            if capacity is None:
                capacity, free = pool.capacity, pool.free
            metrics.gauge("server.kv_used_fraction").set(
                1.0 - free / capacity if capacity else 0.0
            )
        batch = sum(
            b.batch_size for b in getattr(server, "decode_batches", None) or []
        )
        metrics.gauge("server.batch_size").set(batch)
        tokens = float(
            sum(r.generated for r in getattr(server, "_all_requests", ()))
        )
        metrics.gauge("server.tokens_per_s").set(self._tokens_per_s(now, tokens))
        self._sample_slack(
            (r for r in getattr(server, "_all_requests", ()) if not r.finished),
            now,
        )
        metrics.sample(now)

    # ------------------------------------------------------------------
    # Standalone sampling timer (runs without a FleetController)
    # ------------------------------------------------------------------

    def arm_standalone_sampler(self, sim, sample) -> None:
        """Sample every ``telemetry_interval`` while the sim has work.

        ``sample`` is a ``(now) -> None`` callback (a bound
        ``sample_fleet``/``sample_server`` partial).  The ticks are
        *weak* events: a tick popped with nothing else queued is
        discarded instead of run, so the sampler neither keeps a
        drained simulation alive nor stretches the final clock (and
        the makespan) past the last real event.
        """
        interval = self.telemetry_interval

        def _tick() -> None:
            sample(sim.now)
            if sim.next_event_time() is not None:
                sim.call_after(
                    interval, _tick,
                    priority=_SAMPLE_PRIORITY, label="telemetry-sample",
                    weak=True,
                )

        sim.call_after(
            interval, _tick, priority=_SAMPLE_PRIORITY,
            label="telemetry-sample", weak=True,
        )
