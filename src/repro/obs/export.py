"""Trace exporters: Chrome/Perfetto ``trace.json`` and JSONL.

The Perfetto export follows the Chrome Trace Event JSON format (the
``traceEvents`` array form), which both ``chrome://tracing`` and
https://ui.perfetto.dev open directly:

* one *process* (``pid``) per replica (plus a synthetic control-plane
  process for fleet-level records), named via ``"M"`` metadata events;
* request-lifecycle spans as ``"X"`` complete events — ``tid`` is the
  request id, so each request renders as its own track nested under its
  replica, phases laid end to end;
* audit records as ``"i"`` instant events;
* telemetry series as ``"C"`` counter events;
* final histogram snapshots (bounds + bucket counts) as ``"M"``
  metadata events, so distribution-typed metrics (``server.ttft``,
  ``server.per_token_latency``) survive the round trip with their
  shape — the sampled series only carries their running mean.

Timestamps are microseconds (the format's unit); simulation seconds are
scaled by 1e6.  ``load_export`` reads either format back into plain
dicts so :mod:`repro.obs.explain` can replay a run from the file alone.
"""

from __future__ import annotations

import json

from repro.obs.observe import Observability
from repro.obs.telemetry import Histogram

#: pid used for control-plane records not tied to one replica.
CONTROL_PLANE_PID = 999

_US = 1_000_000  # seconds -> microseconds


def _histogram_snapshots(obs: Observability) -> list[dict]:
    """Final state of every histogram-typed metric, export-ready."""
    snapshots = []
    for name in obs.metrics.names():
        metric = obs.metrics.get(name)
        if isinstance(metric, Histogram):
            snapshots.append(
                {
                    "metric": name,
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "total": metric.total,
                }
            )
    return snapshots


def _span_event(span) -> dict:
    pid = span.replica if span.replica >= 0 else CONTROL_PLANE_PID
    args = {"request": span.request_id}
    args.update(span.attrs)
    return {
        "name": span.phase,
        "cat": "request",
        "ph": "X",
        "ts": round(span.start * _US, 3),
        "dur": round(max(span.end - span.start, 0.0) * _US, 3),
        "pid": pid,
        "tid": span.request_id,
        "args": args,
    }


def _audit_event(record) -> dict:
    pid = record.replica if record.replica >= 0 else CONTROL_PLANE_PID
    args = {"component": record.component}
    args.update(record.payload)
    return {
        "name": record.kind,
        "cat": "audit",
        "ph": "i",
        "ts": round(record.time * _US, 3),
        "pid": pid,
        "tid": 0,
        "s": "p",
        "args": args,
    }


def perfetto_trace(obs: Observability) -> dict:
    """Build the Chrome/Perfetto trace document for one run."""
    obs.tracer.finalize()
    events: list[dict] = []
    pids = {
        s.replica if s.replica >= 0 else CONTROL_PLANE_PID
        for s in obs.tracer.spans
    }
    pids |= {
        r.replica if r.replica >= 0 else CONTROL_PLANE_PID
        for r in obs.tracer.records
    }
    for pid in sorted(pids):
        name = "control-plane" if pid == CONTROL_PLANE_PID else f"replica-{pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    events.extend(_span_event(s) for s in obs.tracer.spans)
    events.extend(_audit_event(r) for r in obs.tracer.records)
    for metric, points in obs.metrics.series.items():
        for t, v in points:
            events.append(
                {
                    "name": metric,
                    "cat": "telemetry",
                    "ph": "C",
                    "ts": round(t * _US, 3),
                    "pid": CONTROL_PLANE_PID,
                    "args": {metric: v},
                }
            )
    for snapshot in _histogram_snapshots(obs):
        events.append(
            {
                "name": "histogram",
                "ph": "M",
                "pid": CONTROL_PLANE_PID,
                "tid": 0,
                "args": snapshot,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_perfetto(doc: dict) -> list[str]:
    """Schema-check a trace document; returns a list of problems.

    An empty list means the document is a well-formed Chrome Trace Event
    JSON object (the shape both tracing UIs accept).
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in {"M", "X", "i", "C", "B", "E"}:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: name must be a string")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: pid must be an int")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: dur must be a non-negative number")
        if ph == "C" and not isinstance(event.get("args"), dict):
            errors.append(f"{where}: counter event needs args")
    return errors


def export_perfetto(obs: Observability, path: str) -> dict:
    """Write the Perfetto trace JSON; returns the document."""
    doc = perfetto_trace(obs)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def export_jsonl(obs: Observability, path: str) -> int:
    """Write one JSON object per line (spans, audits, samples).

    Easier to grep/stream than the Perfetto form; ``load_export`` reads
    both.  Returns the number of lines written.
    """
    obs.tracer.finalize()
    lines = 0
    with open(path, "w") as fh:
        for span in obs.tracer.spans:
            fh.write(
                json.dumps(
                    {
                        "type": "span",
                        "request": span.request_id,
                        "phase": span.phase,
                        "start": span.start,
                        "end": span.end,
                        "replica": span.replica,
                        "attrs": span.attrs,
                    }
                )
                + "\n"
            )
            lines += 1
        for rec in obs.tracer.records:
            fh.write(
                json.dumps(
                    {
                        "type": "audit",
                        "time": rec.time,
                        "kind": rec.kind,
                        "component": rec.component,
                        "replica": rec.replica,
                        "payload": rec.payload,
                    }
                )
                + "\n"
            )
            lines += 1
        for metric, points in obs.metrics.series.items():
            for t, v in points:
                fh.write(
                    json.dumps(
                        {"type": "sample", "time": t, "metric": metric, "value": v}
                    )
                    + "\n"
                )
                lines += 1
        for snapshot in _histogram_snapshots(obs):
            fh.write(json.dumps({"type": "histogram", **snapshot}) + "\n")
            lines += 1
    return lines


def load_export(path: str) -> dict:
    """Read a trace export (Perfetto JSON or JSONL) back into dicts.

    Returns ``{"spans": [...], "audits": [...], "samples": {metric:
    [(t, v), ...]}, "histograms": {metric: snapshot}}`` with
    spans/audits in the JSONL field shapes.  Exports written before
    histogram snapshots existed load with ``histograms`` empty.
    """
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        return _load_perfetto(json.loads(text))
    spans: list[dict] = []
    audits: list[dict] = []
    samples: dict[str, list[tuple[float, float]]] = {}
    histograms: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.get("type")
        if kind == "span":
            spans.append(obj)
        elif kind == "audit":
            audits.append(obj)
        elif kind == "sample":
            samples.setdefault(obj["metric"], []).append(
                (obj["time"], obj["value"])
            )
        elif kind == "histogram":
            histograms[obj["metric"]] = {
                "bounds": obj["bounds"],
                "counts": obj["counts"],
                "total": obj["total"],
            }
    return {
        "spans": spans,
        "audits": audits,
        "samples": samples,
        "histograms": histograms,
    }


def _load_perfetto(doc: dict) -> dict:
    spans: list[dict] = []
    audits: list[dict] = []
    samples: dict[str, list[tuple[float, float]]] = {}
    histograms: dict[str, dict] = {}
    for event in doc.get("traceEvents", []):
        ph = event.get("ph")
        if ph == "M" and event.get("name") == "histogram":
            args = event.get("args", {})
            if "metric" in args:
                histograms[args["metric"]] = {
                    "bounds": args.get("bounds", []),
                    "counts": args.get("counts", []),
                    "total": args.get("total", 0.0),
                }
        elif ph == "X":
            args = dict(event.get("args", {}))
            request = args.pop("request", event.get("tid"))
            pid = event["pid"]
            spans.append(
                {
                    "type": "span",
                    "request": request,
                    "phase": event["name"],
                    "start": event["ts"] / _US,
                    "end": (event["ts"] + event.get("dur", 0)) / _US,
                    "replica": -1 if pid == CONTROL_PLANE_PID else pid,
                    "attrs": args,
                }
            )
        elif ph == "i":
            args = dict(event.get("args", {}))
            component = args.pop("component", "legacy")
            pid = event["pid"]
            audits.append(
                {
                    "type": "audit",
                    "time": event["ts"] / _US,
                    "kind": event["name"],
                    "component": component,
                    "replica": -1 if pid == CONTROL_PLANE_PID else pid,
                    "payload": args,
                }
            )
        elif ph == "C":
            metric = event["name"]
            value = event.get("args", {}).get(metric, 0.0)
            samples.setdefault(metric, []).append((event["ts"] / _US, value))
    spans.sort(key=lambda s: (s["start"], s["end"]))
    audits.sort(key=lambda a: a["time"])
    return {
        "spans": spans,
        "audits": audits,
        "samples": samples,
        "histograms": histograms,
    }
