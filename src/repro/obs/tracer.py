"""Request-lifecycle spans and the control-plane audit log.

The :class:`Tracer` is the single sink every component writes into:

* **Spans** — each request's life is a sequence of non-overlapping,
  typed phase spans (``queued`` → ``prefill`` → ``decode`` →
  ``preempted``/``migrating``/``failover`` → end).  Components call
  :meth:`Tracer.transition` at each lifecycle edge; the tracer closes
  the previous span and opens the next, so span context survives
  steals, migrations, and failovers across replicas.
* **Audit records** — structured control-plane decisions (router
  choices with per-replica scores, autoscaler verdicts with the
  pressure signals behind them, admission rejections, preemption
  victims, fault injections) via :meth:`Tracer.audit`.

Everything is gated on ``enabled``: call sites guard with
``if tracer.enabled:`` *before* building payload kwargs, so the
disabled tracer costs one attribute load per site and the default
off-path reproduces prior builds bit for bit.

This module is dependency-light on purpose (stdlib only): it is
imported by ``repro.sim.trace`` for back-compat and must not pull in
the simulator or server layers.
"""

from __future__ import annotations

from typing import Iterator

#: The span taxonomy.  ``queued`` covers arrival → prefill launch (and
#: re-queueing after a steal); ``preempted`` covers
#: preemption-by-recomputation waits; ``migrating`` covers in-flight
#: cross-replica KV handoffs (stolen requests with a priced delay);
#: ``failover`` covers the gap between a replica crash and the orphan's
#: re-dispatch landing somewhere new; ``disagg_handoff`` covers the
#: disaggregated two-stage pipeline on the *original* request — shadow
#: prefill on the prefill pool (``stage="prefill"``) and the priced
#: fabric transfer (``stage="transfer"``) — up to the decode-side
#: submission.
SPAN_PHASES = (
    "queued",
    "prefill",
    "decode",
    "preempted",
    "migrating",
    "failover",
    "disagg_handoff",
)

#: Request ids at or above this offset belong to internal *shadow*
#: requests (the disaggregated dispatcher's prefill clones), not to
#: arrivals.  Request-facing views — latency histograms, blame
#: attribution, ``explain`` request listings — filter them out.
#: ``repro.fleet.disagg.CLONE_ID_OFFSET`` aliases this constant.
SHADOW_REQUEST_OFFSET = 1 << 40


class AuditRecord:
    """One structured control-plane decision.

    Field names (``time``/``kind``/``payload``) match the old
    ``TraceRecord`` so legacy call sites and tests keep working;
    ``component`` and ``replica`` are the new structure.  A plain
    ``__slots__`` class rather than a dataclass: tracing-on runs mint
    one of these per control decision, and the slotted five-store
    ``__init__`` is a measurable cut over the generated dataclass one.
    """

    __slots__ = ("time", "kind", "payload", "component", "replica")

    def __init__(
        self,
        time: float,
        kind: str,
        payload: dict,
        component: str = "legacy",
        replica: int = -1,
    ) -> None:
        self.time = time
        self.kind = kind
        self.payload = payload
        self.component = component
        self.replica = replica

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AuditRecord(time={self.time!r}, kind={self.kind!r}, "
            f"payload={self.payload!r}, component={self.component!r}, "
            f"replica={self.replica})"
        )

    def __str__(self) -> str:
        args = " ".join(f"{k}={v}" for k, v in self.payload.items())
        return f"[{self.time:10.4f}] {self.kind:<18} {args}"


#: Back-compat alias: the old name for an audit record.
TraceRecord = AuditRecord


class Span:
    """One closed phase span of one request's lifecycle.

    Slotted like :class:`AuditRecord` and for the same reason: every
    lifecycle edge of every request closes one of these.
    """

    __slots__ = ("request_id", "phase", "start", "end", "replica", "attrs")

    def __init__(
        self,
        request_id: int,
        phase: str,
        start: float,
        end: float,
        replica: int = 0,
        attrs: dict | None = None,
    ) -> None:
        self.request_id = request_id
        self.phase = phase
        self.start = start
        self.end = end
        self.replica = replica
        self.attrs = {} if attrs is None else attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(request_id={self.request_id}, phase={self.phase!r}, "
            f"start={self.start!r}, end={self.end!r}, "
            f"replica={self.replica}, attrs={self.attrs!r})"
        )

    @property
    def duration(self) -> float:
        return self.end - self.start


class _OpenSpan:
    """Mutable scratch for a span that has started but not ended."""

    __slots__ = ("phase", "start", "replica", "attrs")

    def __init__(self, phase: str, start: float, replica: int, attrs: dict) -> None:
        self.phase = phase
        self.start = start
        self.replica = replica
        self.attrs = attrs


class Tracer:
    """Unified span + audit sink with a cheap ``enabled`` fast-path.

    All mutating methods are no-ops when ``enabled`` is False, but hot
    call sites must still guard *before* constructing payload kwargs —
    the guard is what keeps the off-path free.
    """

    __slots__ = ("enabled", "records", "spans", "_open")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list[AuditRecord] = []
        self.spans: list[Span] = []
        self._open: dict[int, _OpenSpan] = {}

    # ------------------------------------------------------------------
    # Audit log
    # ------------------------------------------------------------------

    def audit(
        self,
        time: float,
        kind: str,
        *,
        component: str = "server",
        replica: int = -1,
        **payload,
    ) -> None:
        """Append one structured control-plane decision."""
        if not self.enabled:
            return
        self.records.append(AuditRecord(time, kind, payload, component, replica))

    def record(self, time: float, kind: str, **payload) -> None:
        """Legacy ``TraceRecorder.record`` API (component "legacy")."""
        if not self.enabled:
            return
        self.records.append(AuditRecord(time, kind, payload))

    # ------------------------------------------------------------------
    # Request-lifecycle spans
    # ------------------------------------------------------------------

    def transition(
        self,
        request_id: int,
        phase: str,
        now: float,
        replica: int = 0,
        **attrs,
    ) -> None:
        """Close ``request_id``'s open span and start a ``phase`` one.

        A transition into the *same* phase on the *same* replica merges
        into the open span (its attrs are updated in place) rather than
        fragmenting the timeline; moving replicas always splits, so a
        stolen request's ``queued`` time is attributed to each host
        separately.
        """
        if not self.enabled:
            return
        open_span = self._open.get(request_id)
        if open_span is not None:
            if open_span.phase == phase and open_span.replica == replica:
                if attrs:
                    open_span.attrs.update(attrs)
                return
            self._close(request_id, open_span, now)
        self._open[request_id] = _OpenSpan(phase, now, replica, attrs)

    def end_span(self, request_id: int, now: float, **attrs) -> None:
        """Close the request's open span (request finished/aborted)."""
        if not self.enabled:
            return
        open_span = self._open.pop(request_id, None)
        if open_span is not None:
            if attrs:
                open_span.attrs.update(attrs)
            self._close(request_id, open_span, now)

    def _close(self, request_id: int, open_span: _OpenSpan, now: float) -> None:
        self.spans.append(
            Span(
                request_id,
                open_span.phase,
                open_span.start,
                now,
                open_span.replica,
                open_span.attrs,
            )
        )

    def finalize(self, now: float | None = None) -> None:
        """Close any still-open spans (e.g. requests alive at shutdown).

        Synthesised ends are tagged ``open=True`` so exports and
        invariant checks can tell them apart from real completions.
        """
        if not self._open:
            return
        if now is None:
            horizon = max(
                [s.start for s in self._open.values()]
                + [s.end for s in self.spans]
                + [r.time for r in self.records]
                or [0.0]
            )
        else:
            horizon = now
        for request_id, open_span in sorted(self._open.items()):
            open_span.attrs["open"] = True
            self._close(request_id, open_span, max(horizon, open_span.start))
        self._open.clear()

    # ------------------------------------------------------------------
    # Queries (superset of the old TraceRecorder API)
    # ------------------------------------------------------------------

    def of_kind(self, kind: str) -> list[AuditRecord]:
        return [r for r in self.records if r.kind == kind]

    def kinds(self) -> set[str]:
        return {r.kind for r in self.records}

    def between(self, start: float, end: float) -> list[AuditRecord]:
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r.time < end]

    def spans_for(self, request_id: int) -> list[Span]:
        """The request's closed spans, in timeline order."""
        spans = [s for s in self.spans if s.request_id == request_id]
        spans.sort(key=lambda s: (s.start, s.end))
        return spans

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def render(self, limit: int = 50) -> str:
        """Human-readable audit tail (legacy format, kept stable)."""
        lines = []
        for rec in self.records[-limit:]:
            args = " ".join(f"{k}={v}" for k, v in rec.payload.items())
            lines.append(f"[{rec.time:10.4f}] {rec.kind:<18} {args}")
        return "\n".join(lines)
