"""SLO burn-rate monitoring: is the fleet spending its error budget?

Attainment reports (``repro.metrics.slo``) answer *after* a run how many
requests met their deadline; an operator needs the live version — "at
the rate we are missing deadlines right now, how fast is the SLO's
error budget burning?".  :class:`SLOHealthMonitor` is that observer,
implemented in the multi-window burn-rate style the SRE literature
standardised: a **fast** window catches sharp regressions quickly and a
**slow** window keeps one transient miss from paging, and an alert
requires *both* to burn above threshold.

The monitor is a pure observer riding the existing telemetry sampling
path (fleet control ticks, or the standalone sampler): it reads the
servers' append-only ``finished``/``aborted`` ledgers through cursors,
maintains per-QoS-class rolling windows of deadline outcomes, publishes
``slo.attainment.<cls>`` / ``slo.burn_fast.<cls>`` /
``slo.burn_slow.<cls>`` gauges, and emits hysteresis-gated ``slo_alert``
audit records on state transitions.  It never schedules simulator
events and never touches serving state, so arming it cannot change a
single finish time — the same inertness guarantee the tracer carries
(asserted by the golden tests).

Burn rate is the error budget's consumption multiple: with a target
attainment ``t``, a window missing fraction ``m`` of its deadlines
burns at ``m / (1 - t)`` — 1.0 means "exactly on budget", the classic
page thresholds sit at small multiples above that.
"""

from __future__ import annotations

from collections import deque

#: (fast, slow) rolling windows, in simulated seconds.
DEFAULT_WINDOWS = (5.0, 30.0)
#: Target attainment per QoS class (fraction of requests in deadline).
DEFAULT_TARGET = 0.9
#: Error-budget consumption multiple that pages (on both windows).
DEFAULT_BURN_THRESHOLD = 2.0


class SLOHealthMonitor:
    """Multi-window, hysteresis-gated SLO burn-rate observer.

    ``hysteresis_up`` consecutive breaching ticks raise an alert;
    ``hysteresis_down`` consecutive clear ticks resolve it — a single
    noisy tick in either direction never flaps the state.  Requests
    without a deadline (no QoS policy armed) carry no SLO and are
    ignored; aborted requests with a deadline count as misses.
    """

    def __init__(
        self,
        windows: tuple[float, float] = DEFAULT_WINDOWS,
        target: float = DEFAULT_TARGET,
        burn_threshold: float = DEFAULT_BURN_THRESHOLD,
        hysteresis_up: int = 2,
        hysteresis_down: int = 3,
    ) -> None:
        fast, slow = windows
        if not 0.0 < fast <= slow:
            raise ValueError(
                f"windows must satisfy 0 < fast <= slow, got {windows}"
            )
        if not 0.0 < target < 1.0:
            raise ValueError(f"target attainment must be in (0, 1), got {target}")
        if burn_threshold <= 0.0:
            raise ValueError(f"burn threshold must be positive, got {burn_threshold}")
        if hysteresis_up < 1 or hysteresis_down < 1:
            raise ValueError("hysteresis counts must be >= 1")
        self.window_fast = fast
        self.window_slow = slow
        self.target = target
        self.burn_threshold = burn_threshold
        self.hysteresis_up = hysteresis_up
        self.hysteresis_down = hysteresis_down
        self.reset()

    def reset(self) -> None:
        """Clear cursors, windows, and alert state (one monitor = one run)."""
        # (time, met) outcome events per QoS class, time-ordered.
        self._events: dict[str, deque] = {}
        # High-water marks into the servers' append-only ledgers,
        # keyed by (id(server), ledger name).
        self._cursors: dict[tuple[int, str], int] = {}
        # Alert state machine per class: "ok" or "firing", plus the
        # consecutive-tick streaks feeding the hysteresis gates.
        self._state: dict[str, str] = {}
        self._breach_streak: dict[str, int] = {}
        self._clear_streak: dict[str, int] = {}

    # -- tick entry point ------------------------------------------------------

    def observe(self, servers, now: float, tracer=None, metrics=None) -> None:
        """One control-tick observation over the given server objects."""
        for server in servers:
            self._drain(server, now)
        horizon = now - self.window_slow
        for cls in sorted(self._events):
            events = self._events[cls]
            while events and events[0][0] < horizon:
                events.popleft()
            self._evaluate(cls, events, now, tracer, metrics)

    def state(self, cls: str) -> str:
        """Current alert state for one QoS class ("ok" / "firing")."""
        return self._state.get(cls, "ok")

    # -- internals -------------------------------------------------------------

    def _drain(self, server, now: float) -> None:
        """Pull newly finished/aborted requests into the class windows."""
        for ledger, met_of in (
            ("finished", self._finish_outcome),
            ("aborted", lambda r: False),
        ):
            requests = getattr(server, ledger, None)
            if requests is None:
                continue
            key = (id(server), ledger)
            start = self._cursors.get(key, 0)
            end = len(requests)
            for i in range(start, end):
                request = requests[i]
                if request.deadline is None:
                    continue  # no SLO attached: nothing to burn
                cls = request.effective_qos or "default"
                time = request.finish_time
                self._events.setdefault(cls, deque()).append(
                    (time if time is not None else now, met_of(request))
                )
            self._cursors[key] = end

    @staticmethod
    def _finish_outcome(request) -> bool:
        return request.finish_time is not None and (
            request.finish_time <= request.deadline + 1e-9
        )

    def _window_stats(self, events, now: float, window: float):
        """(total, misses) over the trailing ``window`` seconds."""
        cutoff = now - window
        total = 0
        misses = 0
        for time, met in events:
            if time >= cutoff:
                total += 1
                if not met:
                    misses += 1
        return total, misses

    def _burn(self, total: int, misses: int) -> float:
        if total == 0:
            return 0.0
        return (misses / total) / (1.0 - self.target)

    def _evaluate(self, cls, events, now, tracer, metrics) -> None:
        fast_total, fast_miss = self._window_stats(events, now, self.window_fast)
        slow_total, slow_miss = self._window_stats(events, now, self.window_slow)
        burn_fast = self._burn(fast_total, fast_miss)
        burn_slow = self._burn(slow_total, slow_miss)
        attainment = (
            (slow_total - slow_miss) / slow_total if slow_total else 1.0
        )
        if metrics is not None and slow_total:
            metrics.gauge(f"slo.attainment.{cls}").set(attainment)
            metrics.gauge(f"slo.burn_fast.{cls}").set(burn_fast)
            metrics.gauge(f"slo.burn_slow.{cls}").set(burn_slow)
        breaching = (
            fast_total > 0
            and burn_fast >= self.burn_threshold
            and burn_slow >= self.burn_threshold
        )
        state = self._state.get(cls, "ok")
        if state == "ok":
            self._breach_streak[cls] = (
                self._breach_streak.get(cls, 0) + 1 if breaching else 0
            )
            if self._breach_streak[cls] >= self.hysteresis_up:
                self._state[cls] = "firing"
                self._clear_streak[cls] = 0
                self._alert(
                    tracer, now, cls, "firing",
                    burn_fast, burn_slow, attainment, slow_total,
                )
        else:
            self._clear_streak[cls] = (
                self._clear_streak.get(cls, 0) + 1 if not breaching else 0
            )
            if self._clear_streak[cls] >= self.hysteresis_down:
                self._state[cls] = "ok"
                self._breach_streak[cls] = 0
                self._alert(
                    tracer, now, cls, "resolved",
                    burn_fast, burn_slow, attainment, slow_total,
                )

    def _alert(
        self, tracer, now, cls, state, burn_fast, burn_slow, attainment, total
    ) -> None:
        if tracer is None or not tracer.enabled:
            return
        tracer.audit(
            now, "slo_alert", component="health",
            cls=cls, state=state,
            burn_fast=round(burn_fast, 3), burn_slow=round(burn_slow, 3),
            attainment=round(attainment, 4), target=self.target,
            window_fast=self.window_fast, window_slow=self.window_slow,
            requests=total,
        )
