"""Post-hoc narration of exported traces.

``python -m repro.experiments explain`` drives these: given an export
written by :mod:`repro.obs.export`, :func:`request_story` reconstructs
one request's full lifecycle (spans interleaved with every control-
plane decision that touched it), and :func:`diff_telemetry` compares
two runs' sampled series side by side.
"""

from __future__ import annotations

from repro.obs.telemetry import Histogram
from repro.obs.tracer import SHADOW_REQUEST_OFFSET

#: Audit payload keys that name a request — used to pull the decisions
#: that touched a given request into its story.
_REQUEST_KEYS = ("request", "victim", "beneficiary")


def _mentions(audit: dict, request_id: int) -> bool:
    payload = audit.get("payload", {})
    return any(payload.get(key) == request_id for key in _REQUEST_KEYS)


def request_ids(data: dict) -> list[int]:
    """Every *served* request id with at least one span in the export.

    Shadow prefill clones are internal machinery, not arrivals, so they
    are filtered here; :func:`request_story` still narrates one if its
    offset id is asked for explicitly.
    """
    return sorted(
        {
            span["request"]
            for span in data["spans"]
            if span["request"] < SHADOW_REQUEST_OFFSET
        }
    )


def request_story(data: dict, request_id: int) -> str:
    """One request's lifecycle as a chronological timeline.

    ``data`` is :func:`repro.obs.export.load_export` output.  Spans and
    the audit records that mention the request are merged into one
    time-ordered narrative.
    """
    spans = [s for s in data["spans"] if s["request"] == request_id]
    audits = [a for a in data["audits"] if _mentions(a, request_id)]
    if not spans and not audits:
        known = request_ids(data)
        hint = (
            f" (export has requests {known[0]}..{known[-1]})" if known else ""
        )
        return f"request {request_id}: not found in export{hint}"

    events: list[tuple[float, int, str]] = []
    for span in sorted(spans, key=lambda s: (s["start"], s["end"])):
        attrs = {k: v for k, v in span.get("attrs", {}).items()}
        extra = (
            "  " + " ".join(f"{k}={v}" for k, v in attrs.items()) if attrs else ""
        )
        where = (
            f"replica-{span['replica']}"
            if span["replica"] >= 0
            else "control-plane"
        )
        events.append(
            (
                span["start"],
                1,
                f"[{span['start']:10.4f} → {span['end']:10.4f}] "
                f"{span['phase']:<10} @{where}"
                f"  ({span['end'] - span['start']:.4f}s){extra}",
            )
        )
    for audit in audits:
        payload = " ".join(
            f"{k}={v}" for k, v in audit.get("payload", {}).items()
        )
        where = (
            f"replica-{audit['replica']}" if audit["replica"] >= 0 else "fleet"
        )
        events.append(
            (
                audit["time"],
                0,
                f"[{audit['time']:10.4f}]              • "
                f"{audit['kind']:<16} {audit['component']}@{where}  {payload}",
            )
        )
    events.sort(key=lambda e: (e[0], e[1]))

    total = sum(s["end"] - s["start"] for s in spans)
    phases: dict[str, float] = {}
    for span in spans:
        phases[span["phase"]] = (
            phases.get(span["phase"], 0.0) + span["end"] - span["start"]
        )
    breakdown = "  ".join(f"{k}={v:.4f}s" for k, v in sorted(phases.items()))
    header = (
        f"request {request_id}: {len(spans)} spans over {total:.4f}s, "
        f"{len(audits)} control-plane decisions\n  {breakdown}"
    )
    return header + "\n" + "\n".join(f"  {line}" for _, _, line in events)


def _series_stats(points: list) -> tuple[float, float]:
    values = [v for _, v in points]
    if not values:
        return 0.0, 0.0
    return sum(values) / len(values), max(values)


def _snapshot_histogram(metric: str, snapshot: dict) -> Histogram:
    return Histogram(
        name=metric,
        bounds=tuple(snapshot["bounds"]),
        counts=list(snapshot["counts"]),
        total=snapshot["total"],
    )


def diff_telemetry(a: dict, b: dict, label_a: str = "A", label_b: str = "B") -> str:
    """Side-by-side comparison of two exports' telemetry series.

    Histogram-typed metrics (``server.ttft``, ``server.per_token_latency``,
    …) are compared from their exported snapshots — count, true mean,
    and tail quantiles — instead of the sampled series, whose points are
    *running means*: averaging those again produced a misleading
    mean-of-means that over-weighted the early, emptier samples.
    Exports without snapshots (pre-snapshot files) keep the series row.
    """
    hist_a = a.get("histograms") or {}
    hist_b = b.get("histograms") or {}
    hist_names = sorted(set(hist_a) & set(hist_b))
    metrics = sorted(
        (set(a["samples"]) | set(b["samples"])) - set(hist_names)
    )
    if not metrics and not hist_names:
        return "no telemetry series in either export"
    lines = []
    if metrics:
        width = max(len(m) for m in metrics)
        lines.append(
            f"{'metric':<{width}}  {label_a + ' mean':>12} {label_b + ' mean':>12} "
            f"{'Δ mean':>9}  {label_a + ' max':>12} {label_b + ' max':>12}"
        )
        for metric in metrics:
            mean_a, max_a = _series_stats(a["samples"].get(metric, []))
            mean_b, max_b = _series_stats(b["samples"].get(metric, []))
            if mean_a:
                delta = f"{(mean_b - mean_a) / abs(mean_a) * 100:+8.1f}%"
            else:
                delta = "     n/a"
            lines.append(
                f"{metric:<{width}}  {mean_a:>12.4g} {mean_b:>12.4g} {delta:>9}  "
                f"{max_a:>12.4g} {max_b:>12.4g}"
            )
    if hist_names:
        if metrics:
            lines.append("")
        width = max(len(m) for m in hist_names)
        lines.append(
            f"{'distribution':<{width}}  {'stat':<5} "
            f"{label_a:>12} {label_b:>12} {'Δ':>9}"
        )
        for metric in hist_names:
            ha = _snapshot_histogram(metric, hist_a[metric])
            hb = _snapshot_histogram(metric, hist_b[metric])
            stats = [
                ("count", float(ha.count), float(hb.count)),
                ("mean", ha.value, hb.value),
                ("p50", ha.quantile(0.5), hb.quantile(0.5)),
                ("p90", ha.quantile(0.9), hb.quantile(0.9)),
                ("p99", ha.quantile(0.99), hb.quantile(0.99)),
            ]
            for i, (stat, va, vb) in enumerate(stats):
                name = metric if i == 0 else ""
                if va and va == vb:
                    delta = "        ="
                elif va:
                    delta = f"{(vb - va) / abs(va) * 100:+8.1f}%"
                else:
                    delta = "     n/a"
                lines.append(
                    f"{name:<{width}}  {stat:<5} {va:>12.4g} {vb:>12.4g} {delta:>9}"
                )
    return "\n".join(lines)
