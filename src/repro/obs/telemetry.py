"""Time-series telemetry: counters, gauges, histograms, and a registry.

Metrics are sampled on control ticks (or a standalone timer when no
:class:`~repro.fleet.control.FleetController` is running): each
:meth:`MetricsRegistry.sample` call appends ``(now, value)`` points to
per-metric series that stay queryable post-run and render as an ASCII
timeline in experiment reports.

Histograms use fixed bucket bounds so two histograms over the same
bounds merge by adding counts — merge is associative and commutative,
which is what lets per-replica histograms roll up into fleet totals in
any order.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

#: Default histogram bucket upper bounds (seconds-ish scale); the last
#: implicit bucket is +inf.
DEFAULT_BOUNDS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

_SPARK = "▁▂▃▄▅▆▇█"


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Fixed-bound bucketed distribution.

    ``counts[i]`` holds observations with ``value <= bounds[i]``; the
    final slot is the +inf overflow bucket, so ``len(counts) ==
    len(bounds) + 1``.
    """

    name: str
    bounds: tuple[float, ...] = DEFAULT_BOUNDS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"histogram {self.name!r}: {len(self.counts)} counts "
                f"for {len(self.bounds)} bounds"
            )

    @property
    def count(self) -> int:
        return sum(self.counts)

    @property
    def value(self) -> float:
        """Sampled series value: the running mean."""
        n = self.count
        return self.total / n if n else 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two histograms over identical bounds (associative)."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        return Histogram(
            name=self.name,
            bounds=self.bounds,
            counts=[a + b for a, b in zip(self.counts, other.counts)],
            total=self.total + other.total,
        )

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        n = self.count
        if n == 0:
            return 0.0
        rank = q * n
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")


class MetricsRegistry:
    """Named metrics plus their sampled time series.

    ``series[name]`` is a list of ``(time, value)`` points appended by
    :meth:`sample`; instruments created after sampling has started just
    have shorter series.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self.series: dict[str, list[tuple[float, float]]] = {}
        self.sample_times: list[float] = []

    def _get(self, name: str, factory, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            self.series[name] = []
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> Histogram:
        return self._get(name, lambda: Histogram(name, bounds=bounds), Histogram)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def sample(self, now: float) -> None:
        """Append every instrument's current value to its series."""
        self.sample_times.append(now)
        for name, metric in self._metrics.items():
            self.series[name].append((now, metric.value))

    # ------------------------------------------------------------------
    # Post-run rendering
    # ------------------------------------------------------------------

    def render_timeline(self, width: int = 60, names: list[str] | None = None) -> str:
        """ASCII sparkline timeline of every sampled series."""
        names = names if names is not None else self.names()
        lines = []
        span = ""
        if self.sample_times:
            span = f"  [{self.sample_times[0]:.1f}s .. {self.sample_times[-1]:.1f}s]"
        lines.append(f"telemetry ({len(self.sample_times)} samples){span}")
        label_w = max((len(n) for n in names), default=0)
        for name in names:
            points = self.series.get(name, [])
            lines.append(
                f"  {name:<{label_w}}  {sparkline([v for _, v in points], width)}"
            )
        return "\n".join(lines)


def sparkline(values: list[float], width: int = 60) -> str:
    """Render values as a fixed-width unicode sparkline with min/max."""
    if not values:
        return "(no samples)"
    if len(values) > width:
        # Downsample by bucket-mean so bursts stay visible at any width.
        step = len(values) / width
        values = [
            sum(chunk) / len(chunk)
            for chunk in (
                values[int(i * step): max(int((i + 1) * step), int(i * step) + 1)]
                for i in range(width)
            )
        ]
    lo, hi = min(values), max(values)
    if hi <= lo:
        bar = _SPARK[0] * len(values)
    else:
        scale = (len(_SPARK) - 1) / (hi - lo)
        bar = "".join(_SPARK[int((v - lo) * scale)] for v in values)
    return f"{bar}  min={lo:.3g} max={hi:.3g}"
