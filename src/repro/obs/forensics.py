"""Critical-path blame attribution: *where did each request's time go?*

End-to-end latency percentiles say a run got slower; they never say
*why*.  This module decomposes every finished request's end-to-end time
into an **exact partition** of blame categories — the segments sum to
the measured latency, so no millisecond is double-counted or silently
dropped:

``queue_wait``
    Admission/scheduling wait (``queued`` spans, including limbo holds
    while nothing in the fleet can place the request).
``prefill_compute``
    Prefill execution, net of swap-in debt.
``tier_swap_in``
    Cold-tier KV swap-in latency priced into the prefill launch (the
    ``swap_s`` span attribute from the tiered prefix store).
``decode_ideal`` / ``decode_stretch``
    Decode time split against the cost model's contention-free recipe
    (the ``ideal_decode_s`` attribute stamped at finish): the ideal
    share is what an unloaded replica would have spent, the stretch is
    batching/interference/queueing inside decode.
``preempted``
    Preemption-by-recomputation waits.
``migration``
    Priced cross-replica KV handoffs (elastic steals with
    ``--migrate-kv``).
``disagg_prefill`` / ``disagg_transfer``
    The disaggregated two-stage pipeline: shadow prefill on the prefill
    pool, then the priced fabric handoff to the decode pool.
``failover``
    Crash-to-redispatch gaps (includes the re-prefill wait the orphan
    inherits).
``unattributed``
    Any residue the spans do not cover.  A correctly instrumented run
    attributes zero here; the category existing at all is what makes
    the partition *exact* rather than best-effort.

The decomposition consumes the span timeline (:class:`Tracer` spans are
contiguous by construction: each transition closes the previous span at
the instant it opens the next), works on a live
:class:`~repro.obs.observe.Observability`, a bare tracer, or a loaded
export, and feeds three consumers: aggregate blame tables (per QoS
class / replica / session), ASCII per-request blame timelines, and
run-to-run regression diffs (``explain --diff`` and ``python -m
repro.experiments forensics``).
"""

from __future__ import annotations

import math

from repro.obs.tracer import SHADOW_REQUEST_OFFSET

#: Blame categories in presentation order (chronological-ish).
CATEGORIES = (
    "queue_wait",
    "prefill_compute",
    "tier_swap_in",
    "decode_ideal",
    "decode_stretch",
    "preempted",
    "migration",
    "disagg_prefill",
    "disagg_transfer",
    "failover",
    "unattributed",
)

#: One-character glyph per category for ASCII blame timelines.
GLYPHS = {
    "queue_wait": "q",
    "prefill_compute": "P",
    "tier_swap_in": "s",
    "decode_ideal": "D",
    "decode_stretch": "~",
    "preempted": "p",
    "migration": "m",
    "disagg_prefill": "f",
    "disagg_transfer": "t",
    "failover": "x",
    "unattributed": "?",
}

#: Span phase -> blame category for the phases that map one-to-one.
_PHASE_CATEGORY = {
    "queued": "queue_wait",
    "preempted": "preempted",
    "migrating": "migration",
    "failover": "failover",
}

#: Max |sum(blame) - e2e| before :func:`verify_partition` flags a request.
PARTITION_TOLERANCE = 1e-9


class RequestBlame:
    """One request's exact latency partition.

    ``pieces`` is the chronological ``(category, seconds)`` sequence the
    timeline renders; ``segments`` is the per-category roll-up.  Both
    sum (via :func:`math.fsum`) to ``e2e = finish - start``.
    """

    __slots__ = (
        "request_id", "qos", "session", "replica",
        "start", "finish", "pieces", "segments",
    )

    def __init__(self, request_id, qos, session, replica, start, finish, pieces):
        self.request_id = request_id
        self.qos = qos
        self.session = session
        self.replica = replica
        self.start = start
        self.finish = finish
        self.pieces = pieces
        segments = {}
        for category in CATEGORIES:
            values = [sec for cat, sec in pieces if cat == category]
            if values:
                segments[category] = math.fsum(values)
        self.segments = segments

    @property
    def e2e(self) -> float:
        return self.finish - self.start

    @property
    def blame_total(self) -> float:
        return math.fsum(sec for _, sec in self.pieces)

    def dominant(self) -> str:
        """The category carrying the most blame (ties: category order)."""
        if not self.segments:
            return "unattributed"
        return max(
            self.segments,
            key=lambda c: (self.segments[c], -CATEGORIES.index(c)),
        )

    def timeline(self, width: int = 60) -> str:
        """Largest-remainder ASCII bar: one glyph column per time share."""
        total = self.e2e
        if total <= 0.0 or width <= 0 or not self.pieces:
            return ""
        quotas = [(sec / total) * width for _, sec in self.pieces]
        chars = [int(q) for q in quotas]
        short = width - sum(chars)
        order = sorted(
            range(len(quotas)), key=lambda i: (chars[i] - quotas[i], i)
        )
        for i in order[:short]:
            chars[i] += 1
        return "".join(
            GLYPHS.get(cat, "?") * n
            for (cat, _), n in zip(self.pieces, chars)
            if n
        )


class BlameReport:
    """The per-request partitions for one run, plus aggregation."""

    def __init__(self, requests: dict[int, RequestBlame]) -> None:
        self.requests = requests

    def __len__(self) -> int:
        return len(self.requests)

    def totals(self) -> dict[str, float]:
        """Fleet-wide seconds per category."""
        out: dict[str, float] = {}
        for category in CATEGORIES:
            values = [
                b.segments[category]
                for b in self.requests.values()
                if category in b.segments
            ]
            if values:
                out[category] = math.fsum(values)
        return out

    def aggregate(self, key: str = "qos") -> dict:
        """Blame totals grouped by ``qos``, ``replica``, or ``session``.

        Returns ``{group: {"count": n, "e2e": total_s, "segments":
        {category: total_s}}}``.  QoS groups use the effective (post-
        downgrade) class; requests without the key fall into a default
        bucket (``"default"`` / ``-1`` / ``None`` respectively).
        """
        if key not in ("qos", "replica", "session"):
            raise ValueError(f"unknown aggregation key {key!r}")
        default = {"qos": "default", "replica": -1, "session": None}[key]
        groups: dict = {}
        for blame in self.requests.values():
            group = getattr(blame, key)
            if group is None:
                group = default
            bucket = groups.setdefault(
                group, {"count": 0, "e2e": 0.0, "segments": {}}
            )
            bucket["count"] += 1
            bucket["e2e"] += blame.e2e
            for category, seconds in blame.segments.items():
                bucket["segments"][category] = (
                    bucket["segments"].get(category, 0.0) + seconds
                )
        return groups

    def slowest(self, top: int = 5) -> list[RequestBlame]:
        return sorted(
            self.requests.values(), key=lambda b: (-b.e2e, b.request_id)
        )[:top]


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------


def _normalize_spans(source) -> list[tuple]:
    """Coerce any span source into (request, phase, start, end, replica,
    attrs) tuples.

    Accepts an :class:`~repro.obs.observe.Observability`, a
    :class:`~repro.obs.tracer.Tracer`, a :func:`~repro.obs.export.load_export`
    dict, or a plain iterable of spans (objects or JSONL dicts).  Live
    tracers are finalized first so straggler spans carry their
    ``open`` tag instead of silently vanishing.
    """
    tracer = getattr(source, "tracer", None)
    if tracer is not None:
        source = tracer
    if hasattr(source, "finalize"):
        source.finalize()
    spans = getattr(source, "spans", None)
    if spans is None and isinstance(source, dict):
        spans = source.get("spans", [])
    if spans is None:
        spans = source
    out = []
    for span in spans:
        if isinstance(span, dict):
            out.append(
                (
                    span["request"], span["phase"],
                    span["start"], span["end"],
                    span.get("replica", 0), span.get("attrs") or {},
                )
            )
        else:
            out.append(
                (
                    span.request_id, span.phase,
                    span.start, span.end, span.replica, span.attrs,
                )
            )
    return out


def attribute(source, requests=None) -> BlameReport:
    """Build the exact blame partition for every finished request.

    ``source`` is any span source :func:`_normalize_spans` accepts.
    ``requests`` optionally supplies the served
    :class:`~repro.core.request.Request` objects: their
    ``arrival_time``/``finish_time`` become the authoritative
    end-to-end window (any lead/tail the spans miss lands in
    ``unattributed``) and their QoS/session fields backfill exports
    that predate the span attributes.

    Shadow prefill clones (disaggregated pipeline) and requests with
    synthesised span ends (``open=True`` — still in flight at shutdown)
    are excluded: blame is defined over completed lifecycles.
    """
    by_request: dict[int, list[tuple]] = {}
    skip: set[int] = set()
    for span in _normalize_spans(source):
        request_id = span[0]
        if request_id >= SHADOW_REQUEST_OFFSET:
            continue
        if span[5].get("open"):
            skip.add(request_id)
        by_request.setdefault(request_id, []).append(span)

    windows: dict[int, tuple] = {}
    if requests is not None:
        for request in requests:
            windows[request.request_id] = (
                request.arrival_time,
                request.finish_time,
                getattr(request, "effective_qos", None),
                getattr(request, "session_id", None),
            )

    blames: dict[int, RequestBlame] = {}
    for request_id, spans in by_request.items():
        if request_id in skip:
            continue
        spans.sort(key=lambda s: (s[2], s[3]))
        arrival, finish, qos, session = windows.get(
            request_id, (None, None, None, None)
        )
        if windows and request_id not in windows:
            continue  # spans for a request the caller says wasn't served
        if finish is None and windows:
            continue  # aborted: no end-to-end latency to partition
        start = spans[0][2] if arrival is None else min(arrival, spans[0][2])
        end = spans[-1][3] if finish is None else finish

        raw: list[tuple[str, float]] = []
        ideal_attr = 0.0
        cursor = start
        for _, phase, s_start, s_end, _, attrs in spans:
            if s_start > cursor:
                raw.append(("unattributed", s_start - cursor))
                cursor = s_start
            seg = s_end - cursor
            if seg <= 0.0:
                continue
            cursor = s_end
            if phase == "prefill":
                swap = min(max(attrs.get("swap_s", 0.0), 0.0), seg)
                if swap > 0.0:
                    raw.append(("tier_swap_in", swap))
                raw.append(("prefill_compute", seg - swap))
            elif phase == "decode":
                raw.append(("_decode", seg))
                ideal_attr = max(ideal_attr, attrs.get("ideal_decode_s", 0.0))
            elif phase == "disagg_handoff":
                stage = attrs.get("stage", "prefill")
                raw.append(
                    (
                        "disagg_transfer"
                        if stage == "transfer"
                        else "disagg_prefill",
                        seg,
                    )
                )
            else:
                raw.append((_PHASE_CATEGORY.get(phase, "unattributed"), seg))
            if qos is None:
                qos = attrs.get("qos")
            if session is None:
                session = attrs.get("session")
        if end > cursor:
            raw.append(("unattributed", end - cursor))

        # Split decode against the ideal recipe: the ideal budget is
        # consumed front-to-back, the excess is contention stretch.
        decode_total = math.fsum(sec for cat, sec in raw if cat == "_decode")
        remaining_ideal = min(ideal_attr, decode_total)
        pieces: list[tuple[str, float]] = []
        for category, seconds in raw:
            if category != "_decode":
                pieces.append((category, seconds))
                continue
            take = min(seconds, remaining_ideal)
            remaining_ideal -= take
            if take > 0.0:
                pieces.append(("decode_ideal", take))
            if seconds - take > 0.0:
                pieces.append(("decode_stretch", seconds - take))

        blames[request_id] = RequestBlame(
            request_id, qos, session, spans[-1][4], start, end, pieces
        )
    return BlameReport(blames)


def verify_partition(
    report: BlameReport, tolerance: float = PARTITION_TOLERANCE
) -> list[tuple[int, float]]:
    """Requests whose blame does **not** sum to their e2e latency.

    Returns ``(request_id, error)`` pairs; an empty list is the exact-
    partition invariant holding for the whole run.
    """
    bad = []
    for request_id in sorted(report.requests):
        blame = report.requests[request_id]
        error = abs(blame.blame_total - blame.e2e)
        if error > tolerance:
            bad.append((request_id, error))
    return bad


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _format_table(rows, headers) -> list[str]:
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
    ]
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            ).rstrip()
        )
    return lines


def render_report(
    report: BlameReport, top: int = 5, width: int = 60
) -> str:
    """The full forensics report: totals, per-QoS blame, slow-request
    timelines with a glyph legend."""
    if not report.requests:
        return "no finished requests to attribute"
    count = len(report.requests)
    total_e2e = math.fsum(b.e2e for b in report.requests.values())
    lines = [
        f"latency forensics: {count} requests, "
        f"{total_e2e:.4f}s end-to-end "
        f"(mean {total_e2e / count:.4f}s)",
        "",
        "blame by category",
    ]
    totals = report.totals()
    rows = [
        (
            category,
            f"{totals[category]:.4f}",
            f"{totals[category] / total_e2e * 100:5.1f}%",
            f"{totals[category] / count:.4f}",
        )
        for category in CATEGORIES
        if category in totals
    ]
    lines.extend(
        "  " + line
        for line in _format_table(
            rows, ("category", "total s", "share", "s/req")
        )
    )

    by_qos = report.aggregate("qos")
    if len(by_qos) > 1 or "default" not in by_qos:
        lines.extend(["", "blame by QoS class"])
        rows = []
        for cls in sorted(by_qos):
            bucket = by_qos[cls]
            dominant = max(
                bucket["segments"],
                key=lambda c: (bucket["segments"][c], -CATEGORIES.index(c)),
            )
            rows.append(
                (
                    str(cls),
                    str(bucket["count"]),
                    f"{bucket['e2e'] / bucket['count']:.4f}",
                    f"{dominant} "
                    f"({bucket['segments'][dominant] / bucket['e2e'] * 100:.0f}%)",
                )
            )
        lines.extend(
            "  " + line
            for line in _format_table(
                rows, ("class", "reqs", "mean e2e", "dominant blame")
            )
        )

    lines.extend(["", f"slowest {min(top, count)} requests"])
    for blame in report.slowest(top):
        tags = []
        if blame.qos is not None:
            tags.append(f"qos={blame.qos}")
        if blame.session is not None:
            tags.append(f"session={blame.session}")
        tags.append(f"replica={blame.replica}")
        lines.append(
            f"  #{blame.request_id}  e2e={blame.e2e:.4f}s  "
            f"dominant={blame.dominant()}  " + " ".join(tags)
        )
        lines.append(f"    |{blame.timeline(width)}|")
    legend = "  ".join(
        f"{GLYPHS[c]}={c}" for c in CATEGORIES
    )
    lines.extend(["", f"legend: {legend}"])
    return "\n".join(lines)


def diff_blame(
    base: BlameReport,
    new: BlameReport,
    label_a: str = "A",
    label_b: str = "B",
    top: int = 5,
) -> str:
    """Attribute a run-to-run latency delta to blame categories.

    Compares mean per-request seconds per category between two runs,
    then lists the top-K most-regressed individual requests (matched by
    request id) with the category that moved most for each.
    """
    if not base.requests or not new.requests:
        return "blame diff needs finished requests in both runs"
    n_a, n_b = len(base.requests), len(new.requests)
    mean_a = math.fsum(b.e2e for b in base.requests.values()) / n_a
    mean_b = math.fsum(b.e2e for b in new.requests.values()) / n_b
    lines = [
        f"blame diff: {label_a} ({n_a} reqs, mean e2e {mean_a:.4f}s) -> "
        f"{label_b} ({n_b} reqs, mean e2e {mean_b:.4f}s, "
        f"{mean_b - mean_a:+.4f}s)",
        "",
        "mean seconds per request by category",
    ]
    totals_a, totals_b = base.totals(), new.totals()
    rows = []
    for category in CATEGORIES:
        a = totals_a.get(category, 0.0) / n_a
        b = totals_b.get(category, 0.0) / n_b
        if a == 0.0 and b == 0.0:
            continue
        rows.append(
            (category, f"{a:.4f}", f"{b:.4f}", f"{b - a:+.4f}")
        )
    lines.extend(
        "  " + line
        for line in _format_table(
            rows, ("category", label_a, label_b, "delta")
        )
    )

    common = sorted(set(base.requests) & set(new.requests))
    regressed = sorted(
        (
            (
                new.requests[rid].e2e - base.requests[rid].e2e,
                rid,
            )
            for rid in common
        ),
        key=lambda t: (-t[0], t[1]),
    )
    regressed = [(delta, rid) for delta, rid in regressed if delta > 0.0][:top]
    if regressed:
        lines.extend(["", f"top {len(regressed)} regressed requests"])
        for delta, rid in regressed:
            seg_a = base.requests[rid].segments
            seg_b = new.requests[rid].segments
            moved = max(
                CATEGORIES,
                key=lambda c: abs(seg_b.get(c, 0.0) - seg_a.get(c, 0.0)),
            )
            lines.append(
                f"  #{rid}  e2e {base.requests[rid].e2e:.4f}s -> "
                f"{new.requests[rid].e2e:.4f}s ({delta:+.4f}s)  "
                f"biggest mover: {moved} "
                f"({seg_b.get(moved, 0.0) - seg_a.get(moved, 0.0):+.4f}s)"
            )
    elif common:
        lines.extend(["", "no regressed requests among matched ids"])
    return "\n".join(lines)
