"""Performance-layer elastic instances (§4).

Each elastic instance is the minimum independent execution unit: a fixed
TP group of GPUs holding a full replica of the model weights plus a KV
slot pool.  The global manager assigns instances to parallel groups every
iteration; this class tracks the assignment and busy state the scheduler
reads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.kvcache.pool import InstancePool


class InstanceRole(enum.Enum):
    IDLE = "idle"
    PREFILL = "prefill"
    DECODE = "decode"


@dataclass
class ElasticInstance:
    """Scheduler-visible state of one elastic instance."""

    instance_id: int
    pool: InstancePool
    role: InstanceRole = InstanceRole.IDLE
    group_id: int | None = None
    busy_until: float = 0.0

    @property
    def is_idle(self) -> bool:
        return self.role == InstanceRole.IDLE

    @property
    def free_slots(self) -> int:
        return self.pool.free

    @property
    def used_slots(self) -> int:
        return self.pool.used

    def assign(self, role: InstanceRole, group_id: int) -> None:
        if role == InstanceRole.IDLE:
            raise ValueError("use release() to idle an instance")
        self.role = role
        self.group_id = group_id

    def release(self) -> None:
        self.role = InstanceRole.IDLE
        self.group_id = None

    def __repr__(self) -> str:  # concise for traces
        return (
            f"Instance({self.instance_id}, {self.role.value}, "
            f"free={self.free_slots}, group={self.group_id})"
        )
