"""The LoongServe global manager (§5): the four-step scheduler.

Each invocation produces a :class:`SchedulePlan` from the current system
state: which pending requests prefill now (step 1, dispatching), on which
instances (step 2, allocation), split into which DoP-annotated batches
(step 3, batching DP), with which post-prefill KV placements and decode
scale-ups (step 4, scaling plans).  The manager *plans* with the fitted
analytical model from the SIB and never mutates server state except for
the migration bookkeeping allocation commits to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.config import SystemConfig
from repro.core.allocation import allocate_instances
from repro.core.batch import DecodeBatch, PrefillTask, next_batch_id
from repro.core.batching_dp import plan_batches
from repro.core.dispatching import select_prefill_requests
from repro.core.elastic_instance import ElasticInstance
from repro.core.scaling_plan import (
    PrefillScaleDown,
    ScaleUpDecision,
    plan_scale_down,
    plan_scale_up,
)
from repro.core.sib import ScalingInformationBase
from repro.costmodel.analytical import AnalyticalModel
from repro.costmodel.latency import RooflineCostModel
from repro.kvcache.unified import UnifiedKVPool
from repro.parallel.groups import ParallelGroup
from repro.parallel.strategy import strategies_for_gpus
from repro.types import Request


@dataclass
class PlannedPrefill:
    """One prefill iteration ready for the server to launch."""

    task: PrefillTask
    scale_down: PrefillScaleDown
    start_delay: float = 0.0


@dataclass
class SchedulePlan:
    """Everything the server must enact after one scheduling pass."""

    prefills: list[PlannedPrefill] = field(default_factory=list)
    scale_ups: list[tuple[DecodeBatch, ScaleUpDecision]] = field(default_factory=list)
    admitted: list[Request] = field(default_factory=list)
    coopted_batches: list[DecodeBatch] = field(default_factory=list)
    decode_scale_downs: list[tuple[DecodeBatch, int]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.prefills and not self.scale_ups


class GlobalManager:
    """Stateless-per-tick planner over the server's shared state."""

    def __init__(
        self,
        config: SystemConfig,
        cost_model: RooflineCostModel,
        sib: ScalingInformationBase | None = None,
    ) -> None:
        self.config = config
        self.cost_model = cost_model
        self.sib = sib or ScalingInformationBase()
        self.predictor: AnalyticalModel = self._bootstrap_predictor()

    def _bootstrap_predictor(self) -> AnalyticalModel:
        """Profile every available SP degree into the SIB and fit (§5.5)."""
        strategies = strategies_for_gpus(
            self.config.num_instances * self.config.tensor_parallel,
            self.config.tensor_parallel,
        )
        strategies = [
            s for s in strategies if s.sequence_parallel <= self.config.max_sequence_parallel
        ]
        return self.sib.profile_strategies(
            self.cost_model,
            strategies,
            max_len=min(self.config.model.context_window, 500_000),
        )

    # -- the four steps ------------------------------------------------------

    def schedule(
        self,
        now: float,
        pending: Sequence[Request],
        instances: dict[int, ElasticInstance],
        pool: UnifiedKVPool,
        decode_batches: list[DecodeBatch],
        avg_decode_latency: float,
        prefilling_requests: Sequence[Request] = (),
    ) -> SchedulePlan:
        """Run dispatching, allocation, batching, and scaling generation."""
        plan = SchedulePlan()
        idle = [i for i, inst in instances.items() if inst.is_idle]
        free_slots = pool.free_map()

        # Step 1 — dispatching.
        dispatch = select_prefill_requests(
            pending=pending,
            idle_instances=idle,
            free_slots=free_slots,
            decode_batches=decode_batches,
            predictor=self.predictor,
            tensor_parallel=self.config.tensor_parallel,
            config=self.config.scheduler,
            avg_decode_latency=avg_decode_latency,
            now=now,
            prefilling_requests=prefilling_requests,
        )

        if not dispatch.is_empty:
            # Step 2 — elastic instance allocation (may commit migrations).
            allocation = allocate_instances(
                requests=dispatch.requests,
                base_instances=dispatch.instances,
                pool=pool,
                decode_batches=[
                    b for b in decode_batches if b not in dispatch.coopted_batches
                ],
                predictor=self.predictor,
                collectives=self.cost_model.collectives,
                model=self.config.model,
                tensor_parallel=self.config.tensor_parallel,
            )
            free_slots = pool.free_map()  # migrations may have moved KV
            plan.decode_scale_downs = list(allocation.shrunk)

            # Step 3 — batching DP.  The dispatch memory gate is optimistic
            # (allocation may fail to obtain every preemptable slot), so on
            # infeasibility trim R_p from the tail until the DP places it.
            candidates = list(dispatch.requests)
            batch_plan = plan_batches(
                requests=candidates,
                instance_ids=allocation.instances,
                free_slots=free_slots,
                predictor=self.predictor,
                tensor_parallel=self.config.tensor_parallel,
            )
            while batch_plan.is_empty and len(candidates) > 1:
                candidates = candidates[:-1]
                batch_plan = plan_batches(
                    requests=candidates,
                    instance_ids=allocation.instances,
                    free_slots=free_slots,
                    predictor=self.predictor,
                    tensor_parallel=self.config.tensor_parallel,
                )

            # Step 4a — proactive scale-down placement per batch.
            decode_instances = {
                i for b in decode_batches for i in b.instance_ids
            }
            for planned in batch_plan.batches:
                scale_down = plan_scale_down(
                    requests=planned.requests,
                    group_instances=planned.instance_ids,
                    pool=pool,
                    decode_instances=decode_instances,
                    config=self.config.scheduler,
                )
                group = ParallelGroup(
                    instance_ids=tuple(sorted(planned.instance_ids)),
                    tensor_parallel=self.config.tensor_parallel,
                )
                task = PrefillTask(
                    batch_id=next_batch_id(),
                    requests=list(planned.requests),
                    group=group,
                )
                plan.prefills.append(
                    PlannedPrefill(
                        task=task,
                        scale_down=scale_down,
                        start_delay=allocation.migration_time,
                    )
                )
                plan.admitted.extend(planned.requests)
            plan.coopted_batches = list(dispatch.coopted_batches)

        # Step 4b — decode scale-up for batches under pressure.
        busy_prefill = {
            i for planned in plan.prefills for i in planned.task.group.instance_ids
        }
        idle_after = [
            i
            for i, inst in instances.items()
            if inst.is_idle and i not in busy_prefill
        ]
        for batch in decode_batches:
            if batch.running or batch in plan.coopted_batches or not batch.requests:
                continue
            decision = plan_scale_up(batch, idle_after, pool, self.config.scheduler)
            if decision is not None:
                plan.scale_ups.append((batch, decision))
                idle_after = [
                    i for i in idle_after if i not in decision.add_instances
                ]

        return plan
