"""LoongServe core: elastic instances, the SIB, the four-step global
scheduling algorithm (§5), and the serving loop that ties them together."""

from repro.core.batch import DecodeBatch, PrefillTask
from repro.core.elastic_instance import ElasticInstance, InstanceRole
from repro.core.global_manager import GlobalManager
from repro.core.server import LoongServeServer
from repro.core.sib import ScalingInformationBase

__all__ = [
    "DecodeBatch",
    "ElasticInstance",
    "GlobalManager",
    "InstanceRole",
    "LoongServeServer",
    "PrefillTask",
    "ScalingInformationBase",
]
