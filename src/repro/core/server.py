"""The LoongServe serving loop on the discrete-event simulator.

``LoongServeServer.run`` replays a workload trace: arrivals enqueue
requests, the global manager re-plans on every arrival and iteration
completion, prefill tasks and decode iterations advance the virtual
clock by their roofline durations, and the unified KV pool tracks every
token.  The server enacts the manager's plans — it owns no policy of its
own beyond decode preemption-by-recomputation when a batch truly runs
out of memory (the same last-resort rule vLLM uses).
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.core.batch import DecodeBatch, next_batch_id
from repro.core.elastic_instance import ElasticInstance, InstanceRole
from repro.core.global_manager import GlobalManager, PlannedPrefill, SchedulePlan
from repro.core.scaling_plan import assign_masters, pick_append_instance
from repro.costmodel.latency import RooflineCostModel
from repro.kvcache.unified import UnifiedKVPool
from repro.metrics.qos import QoSLedger
from repro.qos.classes import resolve_qos_class
from repro.qos.policy import QoSPolicy
from repro.sessions.prefix_cache import PrefixKVCache
from repro.sim.engine import Simulator
from repro.sim.fluid import FluidStepper
from repro.sim.trace import TraceRecorder
from repro.types import (
    BatchStats,
    Phase,
    Request,
    RequestState,
    ScalingEvent,
    ServeResult,
)

_TICK_PRIORITY = 5  # ticks run after same-timestamp completions


class LoongServeServer:
    """LoongServe: ESP scheduling over elastic instances."""

    name = "LoongServe"

    def __init__(
        self,
        config: SystemConfig,
        cost_model: RooflineCostModel | None = None,
        manager: GlobalManager | None = None,
        trace: TraceRecorder | None = None,
        qos: QoSPolicy | None = None,
    ) -> None:
        self.config = config
        self.cost_model = cost_model or RooflineCostModel(
            cluster=config.cluster, model=config.model
        )
        self.manager = manager or GlobalManager(config, self.cost_model)
        self.trace = trace or TraceRecorder(enabled=False)
        # Observability (repro.obs): :meth:`observe` swaps in a shared
        # Tracer and arms telemetry sampling.  ``obs_replica`` labels
        # this server's spans/audits in fleet runs.  The default (no
        # bundle, disabled tracer) is the bit-identical baseline.
        self._obs = None
        self.obs_replica = 0
        # QoS (repro.qos): with a policy armed the scheduler admits by
        # deadline feasibility, orders dispatch earliest-slack-first
        # within tier priority, and preempts batch-tier decodes for
        # at-risk top-tier prefills.  None = pre-QoS behaviour, bit-
        # identical (asserted by the golden-signature gates).
        self.qos = qos
        self._reset()

    def _reset(self) -> None:
        config = self.config
        self.sim = Simulator()
        self.pool = UnifiedKVPool.create(
            num_instances=config.num_instances,
            slots_per_instance=config.kv_slots_per_instance,
        )
        self.instances: dict[int, ElasticInstance] = {
            i: ElasticInstance(instance_id=i, pool=self.pool.pools[i])
            for i in range(config.num_instances)
        }
        self.prefix_cache: PrefixKVCache | None = (
            PrefixKVCache(
                self.pool,
                max_cached_tokens=config.scheduler.max_cached_tokens,
                tiers=self._make_tiers(),
            )
            if config.scheduler.enable_prefix_cache
            else None
        )
        self.pending: list[Request] = []
        self.decode_batches: list[DecodeBatch] = []
        self.finished: list[Request] = []
        self.aborted: list[Request] = []
        self.scaling_events: list[ScalingEvent] = []
        self.iteration_stats: list[BatchStats] = []
        self._decode_latency_sum = 0.0
        self._decode_latency_count = 0
        self._tick_pending = False
        self._all_requests: list[Request] = []
        # Exact running sum of ``generated`` over ``_all_requests``,
        # maintained at every token-credit site so telemetry samplers
        # read throughput in O(1) instead of scanning the whole trace
        # each control tick (the dominant tracing-on overhead pre-PR 8).
        self._generated_total = 0
        # Hot-path caches: request ids already proven to fit the cluster
        # (capacity is fixed, so the per-tick feasibility scan memoises),
        # and the requests currently in the PREFILLING state (maintained
        # incrementally so a tick never scans ``_all_requests``, which
        # grows with the whole trace).
        self._fits_capacity: set[int] = set()
        self._unvetted: list[Request] = []
        self._prefilling: dict[int, Request] = {}
        # Hybrid fluid-flow mode (repro.sim.fluid): steady-state decode
        # stretches advance in closed form.  None in the default
        # "discrete" mode keeps that path bit-identical.
        self._fluid = (
            FluidStepper(
                self,
                min_iterations=config.scheduler.fluid_min_iterations,
                max_window_s=config.scheduler.fluid_max_window_s,
            )
            if config.scheduler.sim_mode == "hybrid"
            else None
        )
        self.qos_ledger: QoSLedger | None = (
            QoSLedger() if self.qos is not None else None
        )
        # Bumped by crash(): scheduled callbacks from before the crash
        # must never touch the rebuilt state (see _guarded).
        self._epoch = 0
        # Interference-free decode price per finished (input_len,
        # generated) shape — stamped on the final span for latency
        # forensics (repro.obs.forensics splits decode into ideal vs
        # stretch).  Memoised: traces repeat shapes constantly.
        self._ideal_decode_memo: dict[tuple[int, int], float] = {}

    def _make_tiers(self):
        """Host/SSD offload tiers for the prefix cache, when configured."""
        scheduler = self.config.scheduler
        if scheduler.kv_tier_policy is None:
            return None
        from repro.kvcache.tiers import TieredKVStore

        store = TieredKVStore(
            policy=scheduler.kv_tier_policy,
            host_capacity_tokens=scheduler.kv_host_tokens,
            ssd_capacity_tokens=scheduler.kv_ssd_tokens,
            bytes_per_token=self.config.model.kv_bytes_per_token,
        )
        if self._obs is not None:
            # Standalone runs _reset() inside run(), after observe():
            # re-arm the fresh store's sinks here (fleet runs arm them
            # in observe(), which follows prepare()'s _reset).
            store.observe(
                self._obs.tracer, self._obs.metrics, replica=self.obs_replica
            )
        return store

    # -- public API -----------------------------------------------------------

    def run(
        self, requests: list[Request], max_events: int | None = None
    ) -> ServeResult:
        """Serve a trace to completion and return per-request outcomes.

        ``max_events`` bounds the number of simulator events processed —
        benchmarks use it to time a fixed-work prefix of a large trace;
        the partial result still reports whatever finished by the cut.
        """
        self._reset()
        self._all_requests = list(requests)
        self._generated_total = sum(r.generated for r in requests)
        # Consecutive requests sharing a timestamp arrive as one event.
        # Behaviour is identical to per-request events — same pending
        # order, and the coalesced tick already ran once per timestamp —
        # but batched front-end traces (many arrivals per tick) stop
        # paying the event machinery per request.
        idx = 0
        total = len(requests)
        while idx < total:
            time = requests[idx].arrival_time
            end = idx + 1
            while end < total and requests[end].arrival_time == time:
                end += 1
            if end - idx == 1:
                self.sim.call_at(time, self._make_arrival(requests[idx]), label="arrival")
            else:
                self.sim.call_at(
                    time, self._make_group_arrival(requests[idx:end]), label="arrival"
                )
            idx = end
        if self._obs is not None:
            obs = self._obs
            obs.arm_standalone_sampler(
                self.sim, (lambda now: obs.sample_server(self, now))
            )
        if max_events is None:
            self.sim.run_until_idle()
        else:
            self.sim.run(max_events=max_events)
        if self._obs is not None:
            self._obs.tracer.finalize(self.sim.now)
        return self._collect_result()

    def run_driven(self, driver) -> ServeResult:
        """Serve a closed-loop workload driver to completion.

        The driver (e.g. :class:`repro.sessions.ClosedLoopDriver`)
        schedules its own submissions on the server's clock — arrival
        times become run outcomes instead of trace inputs.
        """
        self._reset()
        driver.install(self.sim, self.submit)
        if self._obs is not None:
            obs = self._obs
            obs.arm_standalone_sampler(
                self.sim, (lambda now: obs.sample_server(self, now))
            )
        self.sim.run_until_idle()
        if self._obs is not None:
            self._obs.tracer.finalize(self.sim.now)
        return self._collect_result()

    def _collect_result(self) -> ServeResult:
        return ServeResult(
            system=self.name,
            requests=[r for r in self._all_requests if r not in self.aborted],
            scaling_events=self.scaling_events,
            iteration_stats=self.iteration_stats,
            makespan=self.sim.now,
            aborted=self.aborted,
            cache_stats=(
                self.prefix_cache.stats_dict()
                if self.prefix_cache is not None
                else None
            ),
            qos_stats=(
                self.qos_ledger.as_dict() if self.qos_ledger is not None else None
            ),
            obs=self._obs,
        )

    def use_simulator(self, sim: Simulator) -> None:
        """Attach to a shared virtual clock (fleet / multi-system runs).

        Call after :meth:`_reset`; external drivers then enqueue work via
        :meth:`submit` instead of :meth:`run`.
        """
        self.sim = sim

    def observe(self, obs, replica: int = 0) -> None:
        """Attach an :class:`~repro.obs.observe.Observability` bundle.

        Spans and audits from this server land in the bundle's tracer;
        :meth:`run`/:meth:`run_driven` arm its telemetry sampler.
        Survives :meth:`_reset` — the bundle covers the whole run.
        """
        self._obs = obs
        self.trace = obs.tracer
        self.obs_replica = replica
        if self.prefix_cache is not None and self.prefix_cache.tiers is not None:
            self.prefix_cache.tiers.observe(
                obs.tracer, obs.metrics, replica=replica
            )

    def submit(self, request: Request) -> None:
        """External enqueue from a dispatcher (e.g. a fleet router)."""
        self._all_requests.append(request)
        self._generated_total += request.generated
        self.pending.append(request)
        self._unvetted.append(request)
        if self.trace.enabled:
            now = self.sim.now
            self.trace.audit(
                now, "arrival", component="server", replica=self.obs_replica,
                request=request.request_id,
            )
            self.trace.transition(
                request.request_id, "queued", now, replica=self.obs_replica
            )
        self._request_tick()

    def crash(self) -> tuple[list[Request], int]:
        """Kill the replica atomically (fleet failure injection).

        Everything volatile dies at once: queued requests, running
        prefill tasks and decode batches, and every KV slot — live
        request state and cached prefix extents alike.  Returns the
        orphaned (unfinished) requests for the fleet's failover path to
        re-dispatch, plus the KV tokens lost.

        The epoch bump invalidates every callback the dead server had
        scheduled (in-flight prefill/decode completions, pending ticks);
        the rebuilt state is a cold, empty server on the same shared
        clock, ready to be recovered.  Finished/aborted history and the
        prefix-cache hit/miss ledger survive — that work happened.
        """
        lost_tokens = self.pool.total_used
        orphans = [r for r in self._all_requests if not r.finished]
        self._all_requests = [r for r in self._all_requests if r.finished]
        self._generated_total -= sum(r.generated for r in orphans)
        if self.trace.enabled:
            now = self.sim.now
            for request in orphans:
                self.trace.audit(
                    now, "crash_orphan", component="server",
                    replica=self.obs_replica, request=request.request_id,
                )
        self._epoch += 1
        self._tick_pending = False
        self._prefilling.clear()
        config = self.config
        self.pool = UnifiedKVPool.create(
            num_instances=config.num_instances,
            slots_per_instance=config.kv_slots_per_instance,
        )
        self.instances = {
            i: ElasticInstance(instance_id=i, pool=self.pool.pools[i])
            for i in range(config.num_instances)
        }
        if self.prefix_cache is not None:
            # The offload tiers survive the crash with the ledger: host
            # memory is node-pinned and the SSD is durable, so demoted
            # extents outlive the GPU process that wrote them.
            self.prefix_cache = PrefixKVCache(
                self.pool,
                stats=self.prefix_cache.stats,
                max_cached_tokens=self.prefix_cache.max_cached_tokens,
                tiers=self.prefix_cache.tiers,
            )
        self.pending = []
        self._unvetted.clear()
        self.decode_batches = []
        return orphans, lost_tokens

    # -- event handlers ----------------------------------------------------------

    def _make_arrival(self, request: Request):
        def _on_arrival() -> None:
            self.pending.append(request)
            self._unvetted.append(request)
            if self.trace.enabled:
                now = self.sim.now
                self.trace.audit(
                    now, "arrival", component="server",
                    replica=self.obs_replica, request=request.request_id,
                )
                self.trace.transition(
                    request.request_id, "queued", now, replica=self.obs_replica
                )
            self._request_tick()

        return _on_arrival

    def _make_group_arrival(self, group: list[Request]):
        def _on_group_arrival() -> None:
            now = self.sim.now
            pending = self.pending
            unvetted = self._unvetted
            trace = self.trace
            if trace.enabled:
                replica = self.obs_replica
                for request in group:
                    pending.append(request)
                    unvetted.append(request)
                    trace.audit(
                        now, "arrival", component="server", replica=replica,
                        request=request.request_id,
                    )
                    trace.transition(
                        request.request_id, "queued", now, replica=replica
                    )
            else:
                for request in group:
                    pending.append(request)
                    unvetted.append(request)
            self._request_tick()

        return _on_group_arrival

    def _guarded(self, action):
        """Wrap a scheduled callback so it dies with the current epoch.

        A crash rebuilds the server's state in place; completions and
        ticks scheduled against the old state must become no-ops rather
        than corrupt the rebuilt one.
        """
        epoch = self._epoch

        def _run() -> None:
            if self._epoch == epoch:
                action()

        return _run

    def _request_tick(self) -> None:
        if self._tick_pending:
            return
        self._tick_pending = True
        self.sim.call_at(
            self.sim.now, self._guarded(self._tick),
            priority=_TICK_PRIORITY, label="tick",
        )

    def _tick(self) -> None:
        self._tick_pending = False
        self._drop_impossible_requests()
        self._match_prefixes()
        if self.qos is not None:
            # QoS pipeline: price and admit new arrivals (prefix matches
            # just ran, so the admission bias sees hot prefixes), preempt
            # batch-tier decodes for at-risk top-tier prefills, then
            # order the queue earliest-slack-first within tier priority
            # — dispatching scans FCFS, so queue order *is* the policy.
            self._qos_admit()
            self._qos_preempt_for_deadlines()
            now = self.sim.now
            self.pending.sort(key=lambda r: self.qos.dispatch_key(r, now))
        prefilling = list(self._prefilling.values())
        plan = self.manager.schedule(
            now=self.sim.now,
            pending=self.pending,
            instances=self.instances,
            pool=self.pool,
            decode_batches=self.decode_batches,
            avg_decode_latency=self._avg_decode_latency(),
            prefilling_requests=prefilling,
        )
        self._enact(plan)
        self._start_decode_iterations()

    def _drop_impossible_requests(self) -> None:
        """Abort requests that could never fit even on an empty cluster.

        Cluster capacity is fixed for the life of a run, so only the
        arrivals since the last tick (``_unvetted``) need checking:
        queue residents were vetted on a prior tick, and preemption
        re-queues only requests that were already scheduled once (which
        implies a past vet).  The common case is an O(new arrivals)
        no-op rather than an O(queue) rebuild — on a backlogged
        million-request trace that rebuild dominated the whole run.
        """
        if not self._unvetted:
            return
        capacity = self.pool.total_capacity
        fits = self._fits_capacity
        dropped = False
        for request in self._unvetted:
            if request.max_total_len + 1 > capacity:
                self._abort_request(request)
                if self.trace.enabled:
                    self.trace.audit(
                        self.sim.now, "abort", component="server",
                        replica=self.obs_replica, request=request.request_id,
                        needed=request.max_total_len, capacity=capacity,
                    )
                dropped = True
            else:
                fits.add(request.request_id)
        self._unvetted.clear()
        if dropped:
            self.pending = [r for r in self.pending if r.request_id in fits]

    def _abort_request(self, request: Request) -> None:
        """Terminal-abort a queued request (impossible or QoS-rejected)."""
        request.state = RequestState.FINISHED  # terminal, but flagged
        self.aborted.append(request)
        if self.trace.enabled:
            self.trace.end_span(request.request_id, self.sim.now, aborted=True)
        if self.qos_ledger is not None and request.deadline is None:
            # Capacity-impossible drops abort before admission ever
            # prices them (a stamped deadline marks evaluation — the
            # admission path stamps it even on rejection), yet the
            # ledger must still reconcile with the trace: count them
            # submitted-and-rejected here.
            self.qos_ledger.note(request.qos, "submitted")
            self.qos_ledger.note(request.qos, "rejected")
        if self.prefix_cache is not None:
            self.prefix_cache.release(request.request_id)
        self._fire_terminal_hook(request)

    def _fire_terminal_hook(self, request: Request) -> None:
        """Run a request's completion hook exactly once (closed-loop
        drivers chain the session's next turn off it; an abort counts —
        the client gives up on the turn, the conversation goes on)."""
        hook, request.on_finish = request.on_finish, None
        if hook is not None:
            hook(self.sim.now)

    # -- QoS scheduling (repro.qos; self.qos is None = everything off) ---------

    def _qos_backlog_tokens(self) -> int:
        """Prefill tokens committed ahead of any new arrival: in-flight
        prefills plus the already-admitted queue."""
        inflight = sum(r.prefill_tokens for r in self._prefilling.values())
        queued = sum(
            r.prefill_tokens for r in self.pending if r.deadline is not None
        )
        return inflight + queued

    def _qos_admit(self) -> None:
        """Price and admit pending requests that have no deadline yet.

        A stamped ``deadline`` marks a request as evaluated, so
        preempted requests returning to the queue are not re-admitted
        (their contract was set on arrival).
        """
        qos = self.qos
        fresh = [r for r in self.pending if r.deadline is None]
        if not fresh:
            return
        now = self.sim.now
        backlog = self._qos_backlog_tokens()
        rejected: list[Request] = []
        for request in sorted(
            fresh, key=lambda r: (r.arrival_time, r.request_id)
        ):
            self.qos_ledger.note(request.qos, "submitted")
            if qos.admission is None:
                request.deadline = qos.deadline_for(request)
                self.qos_ledger.note(request.qos, "admitted")
                backlog += request.prefill_tokens
                continue
            wait_s = backlog / qos.token_rate if qos.token_rate > 0 else 0.0
            decision = qos.admission.decide(request, now, wait_s, qos)
            if decision.admitted:
                workload_class = resolve_qos_class(request.qos, qos.classes)
                if decision.qos_class.name != workload_class.name:
                    request.downgraded_to = decision.qos_class.name
                    self.qos_ledger.note(request.qos, "downgraded")
                request.deadline = decision.deadline
                self.qos_ledger.note(request.qos, "admitted")
                backlog += request.prefill_tokens
                if self.trace.enabled:
                    self.trace.audit(
                        now, "qos_admit", component="qos",
                        replica=self.obs_replica, request=request.request_id,
                        cls=decision.qos_class.name,
                    )
            else:
                rejected.append(request)
                # Stamp the failed deadline: terminal state either way,
                # and it marks the request as ledger-counted so
                # _abort_request does not count it again.
                request.deadline = decision.deadline
                self.qos_ledger.note(request.qos, "rejected")
                if self.trace.enabled:
                    self.trace.audit(
                        now, "qos_reject", component="qos",
                        replica=self.obs_replica, request=request.request_id,
                        cls=decision.qos_class.name,
                        predicted=round(decision.predicted_completion, 4),
                        deadline=round(decision.deadline, 4),
                    )
        if rejected:
            dropped = set(map(id, rejected))
            self.pending = [r for r in self.pending if id(r) not in dropped]
            for request in rejected:
                self._abort_request(request)

    def _qos_preempt_for_deadlines(self) -> None:
        """Free KV for at-risk top-tier prefills by preempting batch-tier
        decodes (the existing preemption-by-recomputation path).

        Triggered only when both hold: the pool cannot host the prefill,
        and the request's slack has burned below the policy's fraction
        of its deadline budget — a purely memory-blocked request with
        plenty of slack just waits for decodes to finish naturally.
        """
        qos = self.qos
        if not qos.preemption:
            return
        top = min(c.priority for c in qos.classes.values())
        now = self.sim.now
        urgent = [
            r for r in self.pending
            if r.deadline is not None and qos.qos_class(r).priority == top
        ]
        if not urgent:
            return
        urgent.sort(key=lambda r: qos.dispatch_key(r, now))
        victims = [
            (batch, r)
            for batch in self.decode_batches
            for r in batch.requests
            if qos.qos_class(r).preemptible and qos.qos_class(r).priority > top
        ]
        # Cheapest sacrifice first: lowest tier, least decode progress
        # lost, youngest arrival.
        victims.sort(
            key=lambda pair: (
                -qos.qos_class(pair[1]).priority,
                pair[1].generated,
                -pair[1].arrival_time,
            )
        )
        budget = qos.max_preemptions_per_tick
        reserved = 0
        for request in urgent:
            demand = request.kv_demand
            free = self.pool.total_free - reserved
            if free >= demand:
                reserved += demand
                continue
            deadline = request.deadline
            slack = qos.slack(request, now)
            if slack >= qos.preempt_slack_fraction * (
                deadline - request.arrival_time
            ):
                continue  # plenty of slack left: wait, don't preempt
            while free < demand and victims and budget > 0:
                batch, victim = victims.pop(0)
                if victim not in batch.requests:
                    continue  # already finished/preempted this tick
                self._preempt_request(victim, batch)
                if self.trace.enabled:
                    self.trace.audit(
                        now, "qos_preempt", component="qos",
                        replica=self.obs_replica, victim=victim.request_id,
                        beneficiary=request.request_id,
                    )
                budget -= 1
                free = self.pool.total_free - reserved
            if free >= demand:
                reserved += demand
            if budget <= 0:
                break

    def _match_prefixes(self) -> None:
        """Match pending prompts against the prefix cache and make room.

        Every tick re-matches (earlier turns may have finished since the
        last one, growing the tree) and pins the matched paths; then LRU
        cache extents are evicted until the pending batch's *uncached*
        KV demand fits the pool — the cache only ever occupies memory no
        live request wants.
        """
        if self.prefix_cache is None:
            return
        for request in self.pending:
            request.cached_prefix_len = self.prefix_cache.match_and_lock(
                request, now=self.sim.now
            )
        demand = sum(r.kv_demand for r in self.pending)
        shortfall = demand - self.pool.total_free
        if shortfall > 0:
            self.prefix_cache.evict(shortfall)

    def _enact(self, plan: SchedulePlan) -> None:
        for batch, instance_id in plan.decode_scale_downs:
            self.scaling_events.append(
                ScalingEvent(
                    time=self.sim.now,
                    kind="scale_down",
                    group_before=batch.instance_ids + (instance_id,),
                    group_after=batch.instance_ids,
                    batch_size=batch.batch_size,
                )
            )
            self.instances[instance_id].release()
            if not batch.instance_ids:
                self._adopt_orphans(batch)
        for planned in plan.prefills:
            self._launch_prefill(planned)
        for batch, decision in plan.scale_ups:
            self._apply_scale_up(batch, decision)

    def _adopt_orphans(self, drained: DecodeBatch) -> None:
        """Re-home requests whose batch lost its last instance.

        Allocation migrated their KV onto other decode instances; each
        request joins the batch hosting (most of) its KV.
        """
        if drained in self.decode_batches:
            self.decode_batches.remove(drained)
        for request in list(drained.requests):
            placement = self.pool.placement_of(request.request_id)
            if not placement:
                # KV vanished (should not happen); recompute from scratch.
                request.state = RequestState.PREEMPTED
                request.preemptions += 1
                if self.prefix_cache is not None:
                    self.prefix_cache.release(request.request_id)
                    request.cached_prefix_len = 0
                self.pending.append(request)
                self.pending.sort(key=lambda r: r.arrival_time)
                if self.trace.enabled:
                    self.trace.transition(
                        request.request_id, "preempted", self.sim.now,
                        replica=self.obs_replica,
                    )
                continue
            home = max(placement, key=placement.get)
            host = next(
                (b for b in self.decode_batches if home in b.instance_ids), None
            )
            if host is None:
                host = DecodeBatch(batch_id=next_batch_id())
                host.group = self._make_group((home,))
                self.decode_batches.append(host)
                self.instances[home].assign(InstanceRole.DECODE, host.batch_id)
            host.admit([request])
        drained.requests = []

    def _launch_prefill(self, planned: PlannedPrefill) -> None:
        task = planned.task
        admitted_ids = {r.request_id for r in task.requests}
        self.pending = [r for r in self.pending if r.request_id not in admitted_ids]

        for request in task.requests:
            request.state = RequestState.PREFILLING
            self._prefilling[request.request_id] = request
            if request.prefill_start is None:
                request.prefill_start = self.sim.now
            self.pool.place(
                request.request_id, planned.scale_down.per_request[request.request_id]
            )
            if self.prefix_cache is not None:
                self.prefix_cache.note_prefill(request)

        # Only the uncached suffix is computed (and was allocated); a
        # matched prefix re-uses its resident KV at zero prefill cost.
        duration = self.cost_model.prefill_time(
            [r.prefill_tokens for r in task.requests],
            task.group.instance_ids,
            self.config.tensor_parallel,
        )
        duration += self.config.scheduler.scheduling_overhead_s
        swap_debts: list[float] = []
        if self.prefix_cache is not None and self.prefix_cache.tiers is not None:
            # Swap-in debt: extents fetched up from the host/SSD tiers for
            # these requests ride the PCIe/NVMe path before the prefill
            # can read them; the transfers serialise on the local bus.
            swap_debts = [
                self.prefix_cache.take_swap_debt(r.request_id)
                for r in task.requests
            ]
            swap_s = sum(swap_debts)
            if swap_s > 0.0:
                duration += swap_s
                if self.trace.enabled:
                    for request, debt in zip(task.requests, swap_debts):
                        if debt > 0.0:
                            self.trace.audit(
                                self.sim.now, "kv_swap_in",
                                component="kvcache",
                                replica=self.obs_replica,
                                request=request.request_id,
                                seconds=round(debt, 9),
                            )
        task.started_at = self.sim.now
        task.duration = duration

        for instance_id in task.group.instance_ids:
            instance = self.instances[instance_id]
            instance.assign(InstanceRole.PREFILL, task.batch_id)
            instance.busy_until = self.sim.now + planned.start_delay + duration

        self.iteration_stats.append(
            BatchStats(
                iteration=len(self.iteration_stats),
                phase=Phase.PREFILL,
                batch_size=len(task.requests),
                total_tokens=task.total_tokens,
                dop=task.dop,
                duration=duration,
                start_time=self.sim.now,
            )
        )
        if self.trace.enabled:
            now = self.sim.now
            replica = self.obs_replica
            self.trace.audit(
                now, "prefill_start", component="scheduler", replica=replica,
                batch=task.batch_id, size=len(task.requests),
                tokens=task.total_tokens, dop=task.dop,
                group=list(task.group.instance_ids),
                duration=round(duration, 4),
            )
            for idx, request in enumerate(task.requests):
                attrs = dict(
                    batch=task.batch_id, dop=task.dop,
                    group=list(task.group.instance_ids),
                )
                if idx < len(swap_debts) and swap_debts[idx] > 0.0:
                    # Tier swap-in debt folded into this prefill's
                    # duration — forensics carves it back out of the
                    # span as its own blame category.
                    attrs["swap_s"] = round(swap_debts[idx], 9)
                self.trace.transition(
                    request.request_id, "prefill", now, replica=replica,
                    **attrs,
                )
        self.sim.call_after(
            planned.start_delay + duration,
            self._guarded(lambda: self._on_prefill_done(planned)),
            label="prefill_done",
        )

    def _on_prefill_done(self, planned: PlannedPrefill) -> None:
        task = planned.task
        now = self.sim.now
        survivors: list[Request] = []
        for request in task.requests:
            self._prefilling.pop(request.request_id, None)
            request.generated += 1  # the prefill emits the first output token
            self._generated_total += 1
            request.prefill_end = now
            request.record_first_token(now)
            if request.generated >= request.output_len:
                self._finish_request(request)
            else:
                request.state = RequestState.DECODING
                survivors.append(request)

        # Proactive scale-down: released instances go idle, kept ones host
        # the decode phase; the KV is already in place (allocated at launch
        # per the retention placement) — zero migration.
        kept = set(planned.scale_down.kept_instances)
        for instance_id in task.group.instance_ids:
            self.instances[instance_id].release()
        if kept != set(task.group.instance_ids):
            self.scaling_events.append(
                ScalingEvent(
                    time=now,
                    kind="scale_down",
                    group_before=task.group.instance_ids,
                    group_after=tuple(sorted(kept)),
                    batch_size=len(task.requests),
                )
            )
        self._restore_decode_roles()
        if survivors:
            self._join_decode(survivors, sorted(kept))
        if self.trace.enabled:
            replica = self.obs_replica
            self.trace.audit(
                now, "prefill_done", component="scheduler", replica=replica,
                batch=task.batch_id, kept=sorted(kept),
                survivors=len(survivors),
            )
            for request in survivors:
                self.trace.transition(
                    request.request_id, "decode", now, replica=replica,
                )
        self._request_tick()

    def _restore_decode_roles(self) -> None:
        """Re-assert decode roles for batches whose instances were co-opted."""
        for batch in self.decode_batches:
            for instance_id in batch.instance_ids:
                instance = self.instances[instance_id]
                if instance.role != InstanceRole.PREFILL:
                    instance.assign(InstanceRole.DECODE, batch.batch_id)

    def _join_decode(self, requests: list[Request], kept: list[int]) -> None:
        """Merge prefilled requests into the decode batch on ``kept``."""
        touching = [
            b for b in self.decode_batches if set(b.instance_ids) & set(kept)
        ]
        if not touching:
            batch = DecodeBatch(batch_id=next_batch_id())
            batch.group = self._make_group(tuple(sorted(kept)))
            self.decode_batches.append(batch)
        else:
            batch = touching[0]
            merged_instances = set(batch.instance_ids) | set(kept)
            for other in touching[1:]:
                merged_instances |= set(other.instance_ids)
                batch.admit(other.requests)
                self.decode_batches.remove(other)
            batch.group = self._make_group(tuple(sorted(merged_instances)))
        batch.admit(requests)
        for instance_id in batch.instance_ids:
            if self.instances[instance_id].role != InstanceRole.PREFILL:
                self.instances[instance_id].assign(InstanceRole.DECODE, batch.batch_id)

    def _make_group(self, instance_ids: tuple[int, ...]):
        from repro.parallel.groups import ParallelGroup

        return ParallelGroup(
            instance_ids=instance_ids, tensor_parallel=self.config.tensor_parallel
        )

    def _apply_scale_up(self, batch: DecodeBatch, decision) -> None:
        if batch.group is None:
            return
        before = batch.group.instance_ids
        batch.group = batch.group.expanded(decision.add_instances)
        for instance_id in decision.add_instances:
            self.instances[instance_id].assign(InstanceRole.DECODE, batch.batch_id)
        self.scaling_events.append(
            ScalingEvent(
                time=self.sim.now,
                kind="scale_up",
                group_before=before,
                group_after=batch.group.instance_ids,
                batch_size=batch.batch_size,
            )
        )
        if self.trace.enabled:
            self.trace.audit(
                self.sim.now, "scale_up", component="scheduler",
                replica=self.obs_replica, batch=batch.batch_id,
                added=list(decision.add_instances), reason=decision.reason,
            )

    # -- decode execution -------------------------------------------------------

    def _start_decode_iterations(self) -> None:
        if self._fluid is not None and self._fluid.try_window():
            return  # fluid window scheduled (or holding for quiescence)
        for batch in list(self.decode_batches):
            if batch.running or batch.group is None:
                continue
            if not batch.requests:
                self._remove_batch(batch)
                continue
            if any(
                self.instances[i].role == InstanceRole.PREFILL
                for i in batch.instance_ids
            ):
                continue  # paused: instances co-opted by a prefill
            self._run_decode_iteration(batch)

    def _run_decode_iteration(self, batch: DecodeBatch) -> None:
        masters = self._ensure_decode_memory(batch)
        if masters is None:
            return  # batch drained by preemption
        duration = self.cost_model.decode_time(
            batch.context_lens,
            batch.instance_ids,
            self.config.tensor_parallel,
            num_masters=len(masters),
        )
        batch.running = True
        batch.iteration += 1
        if batch.exec_started_at == 0.0:
            batch.exec_started_at = self.sim.now
        self.iteration_stats.append(
            BatchStats(
                iteration=len(self.iteration_stats),
                phase=Phase.DECODE,
                batch_size=batch.batch_size,
                total_tokens=batch.total_context,
                dop=batch.group.dop if batch.group else 1,
                duration=duration,
                start_time=self.sim.now,
            )
        )
        self.sim.call_after(
            duration,
            self._guarded(lambda: self._on_decode_done(batch, masters)),
            label="decode_done",
        )

    def _ensure_decode_memory(self, batch: DecodeBatch) -> tuple[int, ...] | None:
        """Pick masters; merge with a sibling batch or preempt if short.

        When the group's own slots run out, spare capacity may live on
        instances held by *other* decode batches — the unified pool can
        use it by merging the two batches into one larger group (scale-up
        across batch boundaries).  Preemption by recomputation is the
        last resort.
        """
        while batch.requests:
            masters = assign_masters(
                batch.instance_ids, self.pool, batch.batch_size,
                self.config.scheduler,
            )
            master_free = sum(self.pool.pools[i].free for i in masters)
            if master_free >= batch.batch_size:
                return masters
            if self.config.scheduler.enable_scale_up and self._merge_sibling(batch):
                continue
            if self._reclaim_cached(batch.batch_size - master_free, list(masters)):
                continue  # cache extents freed; retry the capacity check
            victim = self._pick_preemption_victim(batch)
            self._preempt_request(victim, batch)
        self._remove_batch(batch)
        return None

    def _merge_sibling(self, batch: DecodeBatch) -> bool:
        """Absorb another idle decode batch whose instances have spare
        slots; returns True when a merge happened."""
        candidates = [
            other
            for other in self.decode_batches
            if other is not batch
            and not other.running
            and other.group is not None
            and all(
                self.instances[i].role != InstanceRole.PREFILL
                for i in other.instance_ids
            )
            and sum(self.pool.pools[i].free for i in other.instance_ids) > 0
        ]
        if not candidates:
            return False
        donor = max(
            candidates,
            key=lambda b: sum(self.pool.pools[i].free for i in b.instance_ids),
        )
        merged = tuple(sorted(set(batch.instance_ids) | set(donor.instance_ids)))
        before = batch.instance_ids
        batch.admit(donor.requests)
        donor.requests = []
        self.decode_batches.remove(donor)
        batch.group = self._make_group(merged)
        for instance_id in merged:
            self.instances[instance_id].assign(InstanceRole.DECODE, batch.batch_id)
        self.scaling_events.append(
            ScalingEvent(
                time=self.sim.now,
                kind="scale_up",
                group_before=before,
                group_after=merged,
                batch_size=batch.batch_size,
            )
        )
        if self.trace.enabled:
            self.trace.audit(
                self.sim.now, "merge_batches", component="scheduler",
                replica=self.obs_replica, into=batch.batch_id,
                donor=donor.batch_id, group=list(merged),
            )
        return True

    def _pick_preemption_victim(self, batch: DecodeBatch) -> Request:
        """Last-resort memory preemption victim.

        Historically the youngest arrival (least FCFS disruption); with
        QoS armed, lower tiers and preemptible contracts go first, the
        arrival order breaking ties within a tier.
        """
        if self.qos is None:
            return max(batch.requests, key=lambda r: r.arrival_time)
        return max(
            batch.requests,
            key=lambda r: (
                self.qos.qos_class(r).priority,
                self.qos.qos_class(r).preemptible,
                r.arrival_time,
            ),
        )

    def _preempt_request(self, request: Request, batch: DecodeBatch) -> None:
        self.pool.evict(request.request_id)
        batch.remove(request)
        request.state = RequestState.PREEMPTED
        request.preemptions += 1
        if self.qos_ledger is not None:
            self.qos_ledger.note(request.qos, "preempted")
        if self.prefix_cache is not None:
            # Unpin the matched prefix; recomputation re-matches whatever
            # is still cached when the request is re-dispatched.
            self.prefix_cache.release(request.request_id)
            request.cached_prefix_len = 0
        self.pending.append(request)
        self.pending.sort(key=lambda r: r.arrival_time)
        if self.trace.enabled:
            now = self.sim.now
            self.trace.audit(
                now, "preempt", component="scheduler",
                replica=self.obs_replica, request=request.request_id,
            )
            self.trace.transition(
                request.request_id, "preempted", now, replica=self.obs_replica
            )

    def _on_decode_done(self, batch: DecodeBatch, masters: tuple[int, ...]) -> None:
        now = self.sim.now
        # The group may have been shrunk mid-iteration by the allocation
        # step; appends must land on instances the batch still owns.
        masters = tuple(i for i in masters if i in batch.instance_ids)
        if not masters and batch.instance_ids:
            masters = assign_masters(
                batch.instance_ids, self.pool, batch.batch_size,
                self.config.scheduler,
            )
        if not masters:
            # Batch lost every instance; orphans are re-homed by the tick.
            batch.running = False
            self._adopt_orphans(batch)
            self._request_tick()
            return
        for request in list(batch.requests):
            request.generated += 1
            self._generated_total += 1
            if request.generated >= request.output_len:
                self._finish_request(request)
                continue
            # The capacity pre-check ran at iteration start; migrations may
            # have filled the masters since, so fall back to any group
            # instance with space, then to preemption.
            candidates = [i for i in masters if self.pool.pools[i].free > 0]
            if not candidates:
                candidates = [
                    i for i in batch.instance_ids if self.pool.pools[i].free > 0
                ]
            if not candidates and self._reclaim_cached(1, list(batch.instance_ids)):
                candidates = [
                    i for i in batch.instance_ids if self.pool.pools[i].free > 0
                ]
            if candidates:
                target = pick_append_instance(tuple(candidates), self.pool)
                self.pool.extend(request.request_id, target, 1)
            else:
                request.generated -= 1  # token could not be retained
                self._generated_total -= 1
                self._preempt_request(request, batch)
        batch.remove_finished()
        batch.running = False
        if not batch.requests:
            self._remove_batch(batch)
        self._request_tick()

    def _finish_request(self, request: Request) -> None:
        request.state = RequestState.FINISHED
        request.finish_time = self.sim.now
        if self.prefix_cache is not None and request.token_ids is not None:
            # Donate the KV to the prefix cache: the full sequence (prompt
            # + generated answer) is the prefix of the conversation's next
            # turn.  The cache takes ownership of the slots in place.
            generated = (request.output_token_ids or ())[: request.generated]
            full_tokens = request.token_ids + tuple(generated)
            self.prefix_cache.adopt_finished(request, full_tokens, now=self.sim.now)
        else:
            self.pool.evict(request.request_id)
            if self.prefix_cache is not None:
                self.prefix_cache.release(request.request_id)
        self.finished.append(request)
        if request.prefill_end is not None:
            self._decode_latency_sum += self.sim.now - request.prefill_end
            self._decode_latency_count += 1
        self._fire_terminal_hook(request)
        if self.trace.enabled:
            now = self.sim.now
            self.trace.audit(
                now, "finish", component="server", replica=self.obs_replica,
                request=request.request_id,
            )
            # Stamp the final span with what forensics needs to read a
            # story without the Request object: the QoS class / session
            # for aggregation, and the interference-free decode price
            # for the ideal-vs-stretch split.
            attrs: dict = {}
            if request.effective_qos is not None:
                attrs["qos"] = request.effective_qos
            if request.session_id is not None:
                attrs["session"] = request.session_id
            ideal = self._ideal_decode_s(request)
            if ideal > 0.0:
                attrs["ideal_decode_s"] = round(ideal, 9)
            self.trace.end_span(request.request_id, now, **attrs)

    def _ideal_decode_s(self, request: Request) -> float:
        """Interference-free decode seconds for a finished request: the
        :class:`~repro.metrics.slo.IdealLatencyModel` decode recipe
        (single instance, mean context), priced over the tokens actually
        generated."""
        steps = request.generated - 1
        if steps <= 0:
            return 0.0
        key = (request.input_len, request.generated)
        cached = self._ideal_decode_memo.get(key)
        if cached is None:
            per_step = self.cost_model.decode_time(
                [request.input_len + request.generated // 2],
                [0],
                self.config.tensor_parallel,
            )
            cached = steps * per_step
            self._ideal_decode_memo[key] = cached
        return cached

    def _reclaim_cached(self, num_tokens: int, instance_ids: list[int]) -> bool:
        """Evict unlocked cache extents on ``instance_ids``; True when any
        slots were freed (decode pressure prefers dropping cached prefixes
        over preempting live requests)."""
        if self.prefix_cache is None:
            return False
        return self.prefix_cache.evict(num_tokens, instance_ids=instance_ids) > 0

    def _remove_batch(self, batch: DecodeBatch) -> None:
        if batch in self.decode_batches:
            self.decode_batches.remove(batch)
        for instance_id in batch.instance_ids:
            instance = self.instances[instance_id]
            if instance.group_id == batch.batch_id:
                instance.release()

    def _avg_decode_latency(self) -> float:
        if self._decode_latency_count == 0:
            return self._seed_decode_latency()
        return self._decode_latency_sum / self._decode_latency_count

    def _seed_decode_latency(self) -> float:
        """Cold-start estimate of AvgLat_d (Eq. 2) from the cost model.

        Before the first request finishes its decode phase, a measured
        average does not exist; returning 0.0 would zero the dispatch gain
        and disable co-opting for the entire warm-up of every run.  Seed
        the estimate instead with the resident requests' predicted
        remaining decode time (per-step roofline time x declared remaining
        output tokens).
        """
        total = 0.0
        count = 0
        for batch in self.decode_batches:
            if not batch.requests or batch.group is None:
                continue
            step = self.cost_model.decode_time(
                batch.context_lens, list(batch.instance_ids), self.config.tensor_parallel
            )
            for request in batch.requests:
                remaining = max(1, request.max_total_len - request.current_len)
                total += step * remaining
                count += 1
        return total / count if count else 0.0
