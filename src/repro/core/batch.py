"""Batch abstractions the global manager schedules.

``PrefillTask`` — one prefill iteration: a set of requests executed on a
parallel group, carrying the proactive scale-down placement that takes
effect when the iteration completes (§4.1).

``DecodeBatch`` — a long-lived decoding batch bound to a parallel group;
it runs one iteration per output token and is the unit of elastic
scale-up (§4.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.parallel.esp import ScaleDownPlan
from repro.parallel.groups import ParallelGroup
from repro.types import Request

_batch_ids = itertools.count()


def next_batch_id() -> int:
    return next(_batch_ids)


@dataclass(slots=True)
class PrefillTask:
    """One scheduled prefill iteration."""

    batch_id: int
    requests: list[Request]
    group: ParallelGroup
    scale_down: ScaleDownPlan | None = None
    started_at: float = 0.0
    duration: float = 0.0

    @property
    def total_tokens(self) -> int:
        return sum(r.input_len for r in self.requests)

    @property
    def dop(self) -> int:
        return self.group.dop


@dataclass(slots=True)
class DecodeBatch:
    """A decoding batch bound to an ESP parallel group."""

    batch_id: int
    requests: list[Request] = field(default_factory=list)
    group: ParallelGroup | None = None
    iteration: int = 0
    running: bool = False
    exec_started_at: float = 0.0

    @property
    def batch_size(self) -> int:
        return len(self.requests)

    @property
    def context_lens(self) -> list[int]:
        return [r.current_len for r in self.requests]

    @property
    def total_context(self) -> int:
        return sum(r.current_len for r in self.requests)

    @property
    def instance_ids(self) -> tuple[int, ...]:
        return self.group.instance_ids if self.group else ()

    def min_exec_time(self, now: float) -> float:
        """Shortest elapsed decode time among member requests.

        ``min(B.exec_time)`` in the dispatch gain estimate (Eq. 2): how
        long the youngest request has been decoding.
        """
        times = [now - r.prefill_end for r in self.requests if r.prefill_end is not None]
        return min(times, default=0.0)

    def tokens_per_iteration(self) -> int:
        """New KV slots consumed by one decode iteration."""
        return self.batch_size

    def admit(self, requests: list[Request]) -> None:
        existing = {r.request_id for r in self.requests}
        for request in requests:
            if request.request_id in existing:
                raise ValueError(f"request {request.request_id} already in batch")
            self.requests.append(request)

    def remove_finished(self) -> list[Request]:
        """Drop finished requests; return them."""
        done = [r for r in self.requests if r.finished]
        self.requests = [r for r in self.requests if not r.finished]
        return done

    def remove(self, request: Request) -> None:
        self.requests = [r for r in self.requests if r.request_id != request.request_id]
