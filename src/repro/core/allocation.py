"""Step 2 — elastic instance allocation (§5.2).

Given ``R_p``, pick the final instance set ``E_p`` in three moves:

1. **Idle first** — ``E_p`` starts from the idle (and co-opted)
   instances the dispatch step collected.
2. **Preempt for memory** — while ``R_p``'s KV need exceeds the free
   slots on ``E_p``, take the decode instance with the *most* unused
   slots; its resident KV migrates to other active decode instances when
   they can absorb it (consolidating decode), otherwise the instance is
   skipped.
3. **Grow for compute (Eqs. 3-4)** — repeatedly consider draining the
   decode instance with the *fewest* used slots (``e_min``): take it only
   while the prefill speedup per input token (Eq. 3) exceeds the
   migration volume over average bandwidth per input token (Eq. 4).

Migration bookkeeping is committed against the unified pool immediately;
the serving loop charges the wall-clock migration time as a prefill start
delay and re-homes requests whose batch lost its last instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.batch import DecodeBatch
from repro.costmodel.comm import CollectiveModel
from repro.costmodel.latency import IterationCostModel
from repro.kvcache.migration import MigrationPlan, plan_eviction_migration
from repro.kvcache.unified import UnifiedKVPool
from repro.model.spec import ModelSpec
from repro.types import Request


@dataclass
class AllocationDecision:
    """Final instance set for the prefill, plus any migration it required."""

    instances: list[int] = field(default_factory=list)
    migrations: list[MigrationPlan] = field(default_factory=list)
    migration_time: float = 0.0
    drained_batches: list[DecodeBatch] = field(default_factory=list)
    shrunk: list[tuple[DecodeBatch, int]] = field(default_factory=list)


def allocate_instances(
    requests: Sequence[Request],
    base_instances: list[int],
    pool: UnifiedKVPool,
    decode_batches: list[DecodeBatch],
    predictor: IterationCostModel,
    collectives: CollectiveModel,
    model: ModelSpec,
    tensor_parallel: int,
) -> AllocationDecision:
    """Run the allocation step for ``R_p`` = ``requests``."""
    decision = AllocationDecision(instances=sorted(set(base_instances)))
    if not requests:
        return decision

    input_lens = [r.prefill_tokens for r in requests]
    need = sum(r.kv_demand for r in requests)
    # Running batches are preemptable too: the drain takes effect at their
    # iteration boundary, one decode step (~10 ms) away.
    stable_batches = list(decode_batches)

    # Move 2: preempt decode instances (most unused slots first) until the
    # prefill's KV fits.
    while pool.free_on(decision.instances) < need:
        candidates = _preemption_candidates(pool, stable_batches, decision.instances)
        if not candidates:
            break
        taken = False
        for target in candidates:
            if _drain_instance(target, decision, pool, stable_batches,
                               collectives, model, tensor_parallel):
                taken = True
                break
        if not taken:
            break

    # Move 3: grow for compute while Eq. 3 gain exceeds Eq. 4 cost.
    while True:
        drainable = _drainable_instances(pool, stable_batches, decision.instances)
        if not drainable:
            break
        e_min = drainable[0]
        current = predictor.prefill_time(input_lens, decision.instances, tensor_parallel)
        expanded = predictor.prefill_time(
            input_lens, decision.instances + [e_min], tensor_parallel
        )
        speedup = max(0.0, current - expanded)
        gain = sum(speedup / n for n in input_lens)

        held_tokens = pool.pools[e_min].used
        cost = 0.0
        if held_tokens > 0:
            targets = _migration_targets(e_min, decision.instances, stable_batches)
            bandwidth = _avg_bandwidth(e_min, targets, collectives, tensor_parallel)
            if bandwidth <= 0:
                break
            volume_bytes = held_tokens * model.kv_bytes_per_token
            cost = sum((volume_bytes / bandwidth) / n for n in input_lens)

        if gain <= cost:
            break
        if not _drain_instance(
            e_min, decision, pool, stable_batches, collectives, model, tensor_parallel
        ):
            break

    return decision


def _preemption_candidates(
    pool: UnifiedKVPool,
    decode_batches: list[DecodeBatch],
    taken: list[int],
) -> list[int]:
    """Decode instances by most unused slots (the §5.2 preemption order)."""
    taken_set = set(taken)
    candidates = {i for b in decode_batches for i in b.instance_ids} - taken_set
    return sorted(candidates, key=lambda i: -pool.pools[i].free)


def _drainable_instances(
    pool: UnifiedKVPool,
    decode_batches: list[DecodeBatch],
    taken: list[int],
) -> list[int]:
    """Decode instances by fewest *used* slots (the Eq. 3/4 growth order)."""
    taken_set = set(taken)
    candidates = {i for b in decode_batches for i in b.instance_ids} - taken_set
    return sorted(candidates, key=lambda i: pool.pools[i].used)


def _migration_targets(
    instance_id: int, taken: list[int], decode_batches: list[DecodeBatch]
) -> list[int]:
    """Other active decode instances that could absorb the drained KV."""
    taken_set = set(taken)
    targets = {
        i
        for b in decode_batches
        for i in b.instance_ids
        if i != instance_id and i not in taken_set
    }
    return sorted(targets)


def _drain_instance(
    instance_id: int,
    decision: AllocationDecision,
    pool: UnifiedKVPool,
    decode_batches: list[DecodeBatch],
    collectives: CollectiveModel,
    model: ModelSpec,
    tensor_parallel: int,
) -> bool:
    """Take ``instance_id`` for the prefill, migrating its KV away.

    Returns False (no state change) when the instance holds KV that no
    other decode instance can absorb.
    """
    held = pool.pools[instance_id].used
    if held > 0:
        targets = _migration_targets(instance_id, decision.instances, decode_batches)
        migration = plan_eviction_migration(pool, instance_id, targets)
        if migration is None:
            return False
        if not migration.is_empty():
            migration.apply(pool)
            decision.migrations.append(migration)
            decision.migration_time += migration.cost(
                collectives, model, tensor_parallel
            )
    batch = _batch_of(instance_id, decode_batches)
    if batch is not None:
        _shrink_batch_group(batch, instance_id)
        decision.shrunk.append((batch, instance_id))
        if not batch.instance_ids:
            decision.drained_batches.append(batch)
    decision.instances = sorted(decision.instances + [instance_id])
    return True


def _batch_of(instance_id: int, decode_batches: list[DecodeBatch]) -> DecodeBatch | None:
    for batch in decode_batches:
        if instance_id in batch.instance_ids:
            return batch
    return None


def _shrink_batch_group(batch: DecodeBatch, instance_id: int) -> None:
    if batch.group is None:
        return
    keep = tuple(i for i in batch.group.instance_ids if i != instance_id)
    if keep:
        batch.group = batch.group.shrunk(keep)
    else:
        batch.group = None


def _avg_bandwidth(
    src: int,
    targets: Sequence[int],
    collectives: CollectiveModel,
    tensor_parallel: int,
) -> float:
    """Eq. 4's avg_bandwidth between ``e_min`` and its migration targets."""
    if not targets:
        return 0.0
    bws = [
        collectives.instance_bandwidth(src, dst, tensor_parallel) for dst in targets
    ]
    return sum(bws) / len(bws)
