"""Step 4 — elastic scaling plan generation (§5.4).

* **Proactive scale-down** after prefill: the decode phase scales poorly,
  so the target DoP is the *minimum* number of instances whose free KV
  slots fit the batch — preferring instances that already host a decode
  batch (merging avoids extra groups) and instances with the most free
  slots.  The placement is token-granular and balanced by availability,
  which proactive migration makes free (§4.1).
* **Scale-up** during decode: triggered when the group's free slots run
  low (memory pressure) or the batch crosses the compute-bound batch-size
  threshold (profiled in advance; ``SchedulerConfig``).  New instances
  simply join — no KV moves.
* **Master assignment**: multi-master decoding spreads newly generated KV
  and the linear layers across every group instance that has capacity,
  "as uniform as possible".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SchedulerConfig
from repro.core.batch import DecodeBatch
from repro.kvcache.unified import Placement, UnifiedKVPool
from repro.types import Request

# Lookahead (iterations) of decode KV growth when sizing scale-down
# targets and scale-up triggers.
DECODE_HEADROOM_ITERATIONS = 32


@dataclass
class PrefillScaleDown:
    """Placement of a prefill batch's KV for its decoding phase."""

    kept_instances: tuple[int, ...]
    per_request: dict[int, Placement] = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return sum(sum(p.values()) for p in self.per_request.values())


def plan_scale_down(
    requests: list[Request],
    group_instances: list[int],
    pool: UnifiedKVPool,
    decode_instances: set[int],
    config: SchedulerConfig,
) -> PrefillScaleDown:
    """Choose the decode-phase placement for a prefill batch.

    ``group_instances`` is the prefill ESP group; the kept subset must be
    inside it (proactive retention can only keep KV on instances the ring
    passes through).  When scale-down is disabled the whole group is kept
    with a balanced split.
    """
    tokens_needed = sum(r.kv_demand for r in requests)
    headroom = DECODE_HEADROOM_ITERATIONS * len(requests)

    if not config.enable_scale_down:
        kept = list(group_instances)
    else:
        # Preference: decode-hosting instances first (merge-friendly),
        # then most free slots; take the minimum prefix that fits.
        ranked = sorted(
            group_instances,
            key=lambda i: (i not in decode_instances, -pool.pools[i].free),
        )
        kept = []
        capacity = 0
        for instance_id in ranked:
            kept.append(instance_id)
            capacity += pool.pools[instance_id].free
            if capacity >= tokens_needed + headroom:
                break
        if capacity < tokens_needed:
            # Headroom is best-effort; the hard requirement is fitting the
            # prefill KV itself, for which dispatch already checked the
            # whole group.
            kept = list(group_instances)

    return _place_requests(requests, kept, pool)


def _place_requests(
    requests: list[Request], kept: list[int], pool: UnifiedKVPool
) -> PrefillScaleDown:
    """Balanced token-granularity placement of each request on ``kept``.

    Requests are placed longest-first onto the instance with the most
    remaining free slots, splitting across instances when no single one
    fits — allowed because the unified pool has no locality constraint.
    """
    free = {i: pool.pools[i].free for i in kept}
    per_request: dict[int, Placement] = {}
    for request in sorted(requests, key=lambda r: -r.prefill_tokens):
        tokens = request.kv_demand
        placement: Placement = {}
        for instance_id in sorted(free, key=lambda i: -free[i]):
            if tokens == 0:
                break
            take = min(free[instance_id], tokens)
            if take > 0:
                placement[instance_id] = take
                free[instance_id] -= take
                tokens -= take
        if tokens > 0:
            raise ValueError(
                f"request {request.request_id} does not fit on instances {kept}"
            )
        per_request[request.request_id] = placement
    return PrefillScaleDown(kept_instances=tuple(sorted(kept)), per_request=per_request)


@dataclass
class ScaleUpDecision:
    """Instances to add to a decode batch's group this iteration."""

    add_instances: tuple[int, ...]
    reason: str  # "memory" | "compute"


def plan_scale_up(
    batch: DecodeBatch,
    idle_instances: list[int],
    pool: UnifiedKVPool,
    config: SchedulerConfig,
) -> ScaleUpDecision | None:
    """Decide whether (and how far) to scale a decode batch up."""
    if not config.enable_scale_up or not idle_instances or batch.group is None:
        return None

    group_free = sum(pool.pools[i].free for i in batch.instance_ids)
    per_iteration = max(1, batch.tokens_per_iteration())
    memory_pressure = group_free < DECODE_HEADROOM_ITERATIONS * per_iteration
    compute_pressure = batch.batch_size >= config.decode_compute_bound_bs

    if not memory_pressure and not compute_pressure:
        return None

    candidates = sorted(idle_instances, key=lambda i: -pool.pools[i].free)
    if memory_pressure:
        added: list[int] = []
        capacity = group_free
        for instance_id in candidates:
            added.append(instance_id)
            capacity += pool.pools[instance_id].free
            if capacity >= 2 * DECODE_HEADROOM_ITERATIONS * per_iteration:
                break
        return ScaleUpDecision(add_instances=tuple(added), reason="memory")
    return ScaleUpDecision(add_instances=(candidates[0],), reason="compute")


def assign_masters(
    group_instances: tuple[int, ...],
    pool: UnifiedKVPool,
    batch_size: int,
    config: SchedulerConfig,
) -> tuple[int, ...]:
    """Pick master instances for a decode group.

    Masters must absorb ``batch_size`` new KV tokens per iteration; with
    multi-master enabled every instance with spare slots masters a share,
    keeping new-KV growth "as uniform as possible" (§5.4).
    """
    if not group_instances:
        raise ValueError("cannot assign masters to an empty group")
    ranked = sorted(group_instances, key=lambda i: -pool.pools[i].free)
    if not config.enable_multi_master:
        return (ranked[0],)
    share = max(1, -(-batch_size // len(group_instances)))
    masters = tuple(i for i in ranked if pool.pools[i].free >= share)
    return masters or (ranked[0],)


def pick_append_instance(
    masters: tuple[int, ...], pool: UnifiedKVPool
) -> int:
    """Instance receiving the next generated token's KV: most-free master."""
    if not masters:
        raise ValueError("no masters to append to")
    return max(masters, key=lambda i: pool.pools[i].free)
