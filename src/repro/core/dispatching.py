"""Step 1 — dispatching (§5.1).

Chooses the subset ``R_p`` of pending requests to prefill this iteration,
scanning FCFS under two families of constraints:

* **GPU memory** — a request joins only while ``R_p``'s total KV need fits
  the slots the allocation step could actually obtain: free slots on idle
  instances plus free slots on preemptable (non-running) decode
  instances.  The conservative eviction-avoidance check also reserves the
  request's declared maximum footprint.
* **GPU computing** — stop at the memory→compute tipping point, past
  which batching more prefill work only extends the iteration (profiled
  per instance; the budget scales with the instances executing the
  prefill, starting from the idle base group); and co-opt a decode
  batch's instances — raising the compute budget by the group's share —
  only when the Eq. 2 gain (input latency saved for the extra requests)
  exceeds the Eq. 1 cost (output latency inflicted on the paused decode
  batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.config import SchedulerConfig
from repro.core.batch import DecodeBatch
from repro.costmodel.latency import IterationCostModel
from repro.types import Request


@dataclass
class DispatchDecision:
    """Output of the dispatching step."""

    requests: list[Request] = field(default_factory=list)
    base_instances: list[int] = field(default_factory=list)
    coopted_batches: list[DecodeBatch] = field(default_factory=list)

    @property
    def instances(self) -> list[int]:
        ids = list(self.base_instances)
        for batch in self.coopted_batches:
            ids.extend(batch.instance_ids)
        return sorted(set(ids))

    @property
    def is_empty(self) -> bool:
        return not self.requests


def select_prefill_requests(
    pending: Sequence[Request],
    idle_instances: list[int],
    free_slots: dict[int, int],
    decode_batches: list[DecodeBatch],
    predictor: IterationCostModel,
    tensor_parallel: int,
    config: SchedulerConfig,
    avg_decode_latency: float,
    now: float,
    prefilling_requests: Sequence[Request] = (),
) -> DispatchDecision:
    """Run the dispatching step and return ``R_p`` plus co-opted groups."""
    decision = DispatchDecision(base_instances=list(idle_instances))
    if not pending:
        return decision

    # Decode batches mid-iteration count too: plans take effect at the
    # iteration boundary (~one decode step away, negligible vs. prefill).
    stable_batches = list(decode_batches)
    preemptable = sorted(
        {i for b in stable_batches for i in b.instance_ids} - set(idle_instances)
    )
    # Memory obtainable by allocation: idle slots plus the free slots of
    # preemptable decode instances (their resident KV migrates or stays).
    memory_budget = sum(free_slots.get(i, 0) for i in idle_instances)
    memory_budget += sum(free_slots.get(i, 0) for i in preemptable)
    # Compute budget: the tipping point scales with the instances that
    # will actually execute the prefill — the idle base group.  Decode
    # instances contribute their compute only once co-opted (phase 2),
    # each successful co-opt raising the budget by its group's share.
    token_budget = config.prefill_tipping_tokens * max(1, len(idle_instances))

    # Eviction avoidance (§5.1): resident decoding requests (and requests
    # whose prefill is still in flight) will grow to their declared caps;
    # that future consumption is reserved before admitting new work, so
    # admissions are unlikely to force a recomputation later.
    resident_growth = sum(
        max(0, r.max_total_len + 1 - r.current_len)
        for batch in stable_batches
        for r in batch.requests
    )
    resident_growth += sum(
        max(0, r.max_total_len + 1 - r.current_len) for r in prefilling_requests
    )
    future_budget = memory_budget - resident_growth
    # With an empty system something must be admissible or nothing ever
    # runs; the conservative gate then defers to the hard capacity check.
    system_empty = resident_growth == 0

    committed_slots = 0
    committed_future = 0
    committed_tokens = 0
    queue = list(pending)
    index = 0
    # Phase 1: admit FCFS under the memory budgets and the tipping point.
    while index < len(queue) and len(decision.requests) < config.max_batch_size:
        request = queue[index]
        needed = _slots_needed(request)
        future = request.future_kv_demand
        if committed_slots + needed > memory_budget:
            break
        exempt = system_empty and not decision.requests
        if not exempt and committed_future + future > future_budget:
            break  # would risk a future eviction
        if decision.requests and committed_tokens + request.prefill_tokens > token_budget:
            break
        decision.requests.append(request)
        committed_slots += needed
        committed_future += future
        committed_tokens += request.prefill_tokens
        index += 1

    if index >= len(queue):
        return decision

    # Phase 2: consider co-opting decode groups' compute for more
    # requests (the paper's worst-case preemption analysis, Eqs. 1-2).
    # Memory is NOT what a co-opt contributes — the decode instances' free
    # slots are already inside ``memory_budget``/``future_budget``, so the
    # hard memory and eviction-avoidance gates stay unchanged; what the
    # paused group adds is its instances' compute, which raises the
    # tipping-point budget by the group's share.
    for batch in sorted(stable_batches, key=lambda b: -_group_free(b, free_slots)):
        if index >= len(queue):
            break
        coopt_token_budget = token_budget + config.prefill_tipping_tokens * len(
            batch.instance_ids
        )
        extra: list[Request] = []
        extra_slots = 0
        extra_tokens = 0
        extra_future = 0
        while index < len(queue) and (
            len(decision.requests) + len(extra) < config.max_batch_size
        ):
            request = queue[index]
            needed = _slots_needed(request)
            future = request.future_kv_demand
            if committed_slots + extra_slots + needed > memory_budget:
                break
            if committed_future + extra_future + future > future_budget:
                break  # would risk a future eviction
            if (
                decision.requests or extra
            ) and committed_tokens + extra_tokens + request.prefill_tokens > coopt_token_budget:
                break  # past the enlarged tipping point
            extra.append(request)
            extra_slots += needed
            extra_tokens += request.prefill_tokens
            extra_future += future
            index += 1
        if not extra:
            continue

        combined_instances = decision.instances + list(batch.instance_ids)
        combined_lens = [r.prefill_tokens for r in decision.requests + extra]
        iter_time = predictor.prefill_time(combined_lens, combined_instances, tensor_parallel)

        cost = _preemption_cost(batch, iter_time)
        gain = _dispatch_gain(extra, batch, avg_decode_latency, now)
        if gain > cost:
            decision.requests.extend(extra)
            decision.coopted_batches.append(batch)
            # All three commitment counters advance, so the next co-opt
            # candidate is gated against what this round actually admitted
            # (stale token/future counts would let successive co-opts push
            # the joint batch past the tipping point and the eviction-
            # avoidance reserve).
            committed_slots += extra_slots
            committed_tokens += extra_tokens
            committed_future += extra_future
            token_budget = coopt_token_budget  # the group's compute now counts
        else:
            index -= len(extra)  # put them back; FCFS order preserved
            break

    return decision


def _slots_needed(request: Request) -> int:
    """KV slots a prefill allocates: the uncached tokens to process plus
    the first generated token.  ``prefill_tokens`` covers preempted
    requests (recomputation re-prefills their generated tokens too) and
    nets out any prefix the KV cache already holds."""
    return request.kv_demand


def _group_free(batch: DecodeBatch, free_slots: dict[int, int]) -> int:
    spare = sum(free_slots.get(i, 0) for i in batch.instance_ids)
    # Keep headroom for the batch's own next iterations so co-opting does
    # not immediately trigger a decode eviction.
    return max(0, spare - 4 * batch.batch_size)


def _preemption_cost(batch: DecodeBatch, iteration_time: float) -> float:
    """Eq. 1: output-latency impact of pausing ``batch`` for the prefill.

    The iteration time is amortised over each paused request's existing
    output tokens (requests with more produced tokens are hurt less per
    token).
    """
    cost = 0.0
    for request in batch.requests:
        produced = max(1, request.generated)
        cost += iteration_time / produced
    return cost


def _dispatch_gain(
    extra: list[Request],
    batch: DecodeBatch,
    avg_decode_latency: float,
    now: float,
) -> float:
    """Eq. 2: input-latency saved by not waiting for ``batch`` to drain.

    ``avg_decode_latency`` is the mean decode-phase time of finished
    requests (AvgLat_d); the youngest request's elapsed decode time is how
    much of that wait has already passed.
    """
    wait_estimate = max(0.0, avg_decode_latency - batch.min_exec_time(now))
    gain = 0.0
    for request in extra:
        gain += wait_estimate / request.prefill_tokens
    return gain
