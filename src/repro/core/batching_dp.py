"""Step 3 — batching via dynamic programming (§5.3, Eq. 5).

Requests (sorted by length, descending) and instances (sorted by free
slots, ascending) are both split into contiguous intervals; interval pair
(requests j+1..i, instances l+1..k) forms one batch executed at DoP
``k - l``.  ``f[i][k]`` is the minimum summed input latency of the first
``i`` requests using the first ``k`` instances:

    f[i][k] = min over j<i, l<k, D(j,i) <= V(l,k) of
              f[j][l] + (i-j) * T(R[j+1..i], E[l+1..k])

with ``D``/``V`` token/slot interval sums from prefix arrays and ``T``
answered in O(1) by the analytical model's Σlen/Σlen² form.  An extra
``f[i][k-1]`` transition lets an instance sit idle.

The paper accelerates the DP with the quadrangle-inequality split-point
monotonicity (Eq. 6): ``split_req[i][k]`` is non-decreasing in ``k`` and
``split_ins[i][k]`` non-decreasing in ``i``, so a forward fill can lower-
bound both inner loops by previously computed split points.  That pruned
variant is the default.  Note: with a fitted cost model whose constant
term α grows with SP, the quadrangle-inequality premise can be violated
on rare inputs, making the pruned optimum marginally worse than the
exhaustive one (observed <1%; the test suite bounds it).  The exhaustive
variant remains available via ``optimized=False``.  The paper implements
this loop in C++ for constant factors; pure Python is fine at simulation
scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.costmodel.analytical import AnalyticalModel
from repro.parallel.strategy import ParallelismStrategy
from repro.types import Request


@dataclass
class PlannedBatch:
    """One prefill batch: requests plus their ESP group's instances."""

    requests: list[Request]
    instance_ids: list[int]

    @property
    def dop(self) -> int:
        return len(self.instance_ids)

    @property
    def total_tokens(self) -> int:
        return sum(r.input_len for r in self.requests)


@dataclass
class BatchPlan:
    """DP outcome: the batches and the objective value reached."""

    batches: list[PlannedBatch] = field(default_factory=list)
    objective: float = math.inf

    @property
    def is_empty(self) -> bool:
        return not self.batches


@dataclass
class _Tables:
    """DP state: values, split points, and the skip-instance marker."""

    f: list[list[float]]
    split_req: list[list[int]]
    split_ins: list[list[int]]
    skip: list[list[bool]]


def plan_batches(
    requests: Sequence[Request],
    instance_ids: Sequence[int],
    free_slots: dict[int, int],
    predictor: AnalyticalModel,
    tensor_parallel: int,
    optimized: bool = True,
) -> BatchPlan:
    """Split ``requests`` over ``instance_ids`` into DoP-annotated batches."""
    reqs = sorted(requests, key=lambda r: -r.prefill_tokens)
    insts = sorted(instance_ids, key=lambda i: free_slots.get(i, 0))
    n, m = len(reqs), len(insts)
    if n == 0:
        return BatchPlan(batches=[], objective=0.0)
    if m == 0:
        return BatchPlan(batches=[], objective=math.inf)

    need = [0] * (n + 1)
    length_sum = [0.0] * (n + 1)
    length_sq_sum = [0.0] * (n + 1)
    for idx, request in enumerate(reqs, start=1):
        need[idx] = need[idx - 1] + request.kv_demand
        length_sum[idx] = length_sum[idx - 1] + request.prefill_tokens
        length_sq_sum[idx] = length_sq_sum[idx - 1] + request.prefill_tokens**2
    slots = [0] * (m + 1)
    for idx, instance_id in enumerate(insts, start=1):
        slots[idx] = slots[idx - 1] + free_slots.get(instance_id, 0)

    strategies: dict[int, ParallelismStrategy] = {}
    for sp in range(1, m + 1):
        strategy = ParallelismStrategy(tensor_parallel=tensor_parallel, sequence_parallel=sp)
        if predictor.has_strategy(strategy):
            strategies[sp] = strategy
    if not strategies:
        raise ValueError("analytical model has no fitted strategies for this TP degree")

    # Hoisted (α, β, γ) per DoP: the DP calls batch_time O(n²m²) times,
    # and the attribute/method hops of predict_sums dominated the fill.
    # The expression below is predict_sums' own, same float-op order, so
    # the table values are bit-identical.
    coeffs: dict[int, tuple[float, float, float]] = {}
    for sp, strategy in strategies.items():
        fitted = predictor.coefficients(strategy)
        coeffs[sp] = (fitted.alpha, fitted.beta, fitted.gamma)

    def batch_time(j: int, i: int, l: int, k: int) -> float:
        """T(R[j+1..i], E[l+1..k]); inf when infeasible."""
        abc = coeffs.get(k - l)
        if abc is None:
            return math.inf
        if need[i] - need[j] > slots[k] - slots[l]:
            return math.inf
        total = length_sum[i] - length_sum[j]
        total_sq = length_sq_sum[i] - length_sq_sum[j]
        return abc[0] + abc[1] * total + abc[2] * total_sq

    # Small tables are solved exhaustively (exact and still fast); the
    # monotone pruning only engages where the O(n^2 m^2) cost would bite.
    use_pruning = optimized and n * n * m * m > 4_096
    tables = _fill_tables(n, m, batch_time, use_pruning)
    f = tables.f
    best_k = min(range(1, m + 1), key=lambda k: f[n][k])
    if math.isinf(f[n][best_k]):
        return BatchPlan(batches=[], objective=math.inf)

    batches: list[PlannedBatch] = []
    i, k = n, best_k
    while i > 0:
        if tables.skip[i][k]:
            k -= 1
            continue
        j, l = tables.split_req[i][k], tables.split_ins[i][k]
        batches.append(
            PlannedBatch(requests=list(reqs[j:i]), instance_ids=list(insts[l:k]))
        )
        i, k = j, l
    batches.reverse()
    return BatchPlan(batches=batches, objective=f[n][best_k])


def _fill_tables(n: int, m: int, batch_time, optimized: bool) -> _Tables:
    """Forward DP fill, optionally pruned by split-point monotonicity."""
    inf = math.inf
    f = [[inf] * (m + 1) for _ in range(n + 1)]
    split_req = [[0] * (m + 1) for _ in range(n + 1)]
    split_ins = [[0] * (m + 1) for _ in range(n + 1)]
    skip = [[False] * (m + 1) for _ in range(n + 1)]
    for k in range(m + 1):
        f[0][k] = 0.0

    for i in range(1, n + 1):
        for k in range(1, m + 1):
            best = inf
            best_j = best_l = 0
            best_skip = False
            if f[i][k - 1] < best:
                best = f[i][k - 1]
                best_skip = True
                # Inherit the split point so monotone bounds stay valid.
                best_j = split_req[i][k - 1]
                best_l = split_ins[i][k - 1]

            j_lo = 0
            l_lo = 0
            if optimized:
                # Eq. 6: split_req monotone in k, split_ins monotone in i.
                j_lo = split_req[i][k - 1]
                l_lo = split_ins[i - 1][k]
            for j in range(j_lo, i):
                row = f[j]
                for l in range(l_lo, k):
                    base = row[l]
                    if base == inf:
                        continue
                    t = batch_time(j, i, l, k)
                    if t == inf:
                        continue
                    candidate = base + (i - j) * t
                    if candidate < best:
                        best = candidate
                        best_j, best_l = j, l
                        best_skip = False
            f[i][k] = best
            split_req[i][k] = best_j
            split_ins[i][k] = best_l
            skip[i][k] = best_skip

    return _Tables(f=f, split_req=split_req, split_ins=split_ins, skip=skip)
