"""Scaling Information Base (SIB, §5.5, §6).

The paper stores profiling results in a SQLite database and trains the
analytical model's coefficients by least squares on demand.  This module
does the same: ``record`` inserts profiling samples, ``fit`` selects the
samples for each strategy and returns a fitted :class:`AnalyticalModel`.
``profile_strategies`` runs the default profiling grid against a
ground-truth cost model (the roofline model stands in for real kernels).
"""

from __future__ import annotations

import json
import sqlite3
from typing import Sequence

from repro.costmodel.analytical import AnalyticalModel
from repro.costmodel.fitting import default_profile_grid, fit_quadratic
from repro.costmodel.latency import RooflineCostModel
from repro.parallel.strategy import ParallelismStrategy


class ScalingInformationBase:
    """SQLite-backed store of profiling samples, one row per measurement."""

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS profiles (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                tensor_parallel INTEGER NOT NULL,
                sequence_parallel INTEGER NOT NULL,
                input_lens TEXT NOT NULL,
                total_len INTEGER NOT NULL,
                total_len_sq INTEGER NOT NULL,
                iteration_time REAL NOT NULL
            )
            """
        )
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def record(
        self,
        strategy: ParallelismStrategy,
        input_lens: Sequence[int],
        iteration_time: float,
    ) -> None:
        """Insert one profiling sample."""
        lens = list(int(n) for n in input_lens)
        self._conn.execute(
            "INSERT INTO profiles (tensor_parallel, sequence_parallel, input_lens,"
            " total_len, total_len_sq, iteration_time) VALUES (?, ?, ?, ?, ?, ?)",
            (
                strategy.tensor_parallel,
                strategy.sequence_parallel,
                json.dumps(lens),
                sum(lens),
                sum(n * n for n in lens),
                iteration_time,
            ),
        )
        self._conn.commit()

    def samples(
        self, strategy: ParallelismStrategy
    ) -> list[tuple[list[int], float]]:
        """All samples recorded for one strategy."""
        rows = self._conn.execute(
            "SELECT input_lens, iteration_time FROM profiles"
            " WHERE tensor_parallel = ? AND sequence_parallel = ?",
            (strategy.tensor_parallel, strategy.sequence_parallel),
        ).fetchall()
        return [(json.loads(lens), time) for lens, time in rows]

    def sample_count(self, strategy: ParallelismStrategy | None = None) -> int:
        if strategy is None:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM profiles").fetchone()
        else:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM profiles"
                " WHERE tensor_parallel = ? AND sequence_parallel = ?",
                (strategy.tensor_parallel, strategy.sequence_parallel),
            ).fetchone()
        return int(count)

    def strategies(self) -> list[ParallelismStrategy]:
        rows = self._conn.execute(
            "SELECT DISTINCT tensor_parallel, sequence_parallel FROM profiles"
        ).fetchall()
        return [
            ParallelismStrategy(tensor_parallel=tp, sequence_parallel=sp)
            for tp, sp in sorted(rows)
        ]

    def fit(self) -> AnalyticalModel:
        """Fit the α/β/γ model for every strategy with recorded samples."""
        model = AnalyticalModel()
        for strategy in self.strategies():
            model.set_coefficients(strategy, fit_quadratic(self.samples(strategy)))
        return model

    def profile_strategies(
        self,
        cost_model: RooflineCostModel,
        strategies: Sequence[ParallelismStrategy],
        max_len: int | None = None,
    ) -> AnalyticalModel:
        """Run the default profiling grid against ``cost_model`` and fit.

        Mirrors the paper's offline profiling tool: sweep the grid once per
        strategy, store each measurement, then train from the database.
        """
        limit = max_len if max_len is not None else cost_model.model.context_window // 2
        grid = default_profile_grid(max_len=min(limit, 500_000))
        for strategy in strategies:
            for workload in grid:
                measured = cost_model.prefill_time(
                    workload,
                    instances=strategy.sequence_parallel,
                    tensor_parallel=strategy.tensor_parallel,
                )
                self.record(strategy, workload, measured)
        return self.fit()
