#!/usr/bin/env python3
"""Anatomy of the four-step global scheduler (§5) on a crafted scenario.

Builds the global manager directly, feeds it a hand-made system state —
one decode batch camping on two instances, a queue mixing a 180K-token
book prompt with a burst of chat prompts — and prints what each step
decides: which requests dispatch, which instances are allocated (and
what migrates), how the batching DP splits request and instance
intervals, and where the proactive scale-down will leave every KV token.

Run:  python examples/scheduling_anatomy.py
"""

from repro import Request, default_config
from repro.core.batch import DecodeBatch, next_batch_id
from repro.core.elastic_instance import ElasticInstance, InstanceRole
from repro.core.global_manager import GlobalManager
from repro.costmodel.latency import RooflineCostModel
from repro.kvcache.unified import UnifiedKVPool
from repro.parallel.groups import ParallelGroup
from repro.types import next_request_id


def request(input_len: int, output_len: int = 50) -> Request:
    return Request(
        request_id=next_request_id(), input_len=input_len, output_len=output_len
    )


def main() -> None:
    config = default_config()
    cost_model = RooflineCostModel(cluster=config.cluster, model=config.model)
    manager = GlobalManager(config, cost_model)
    print("fitted analytical model (Eq. 7) per strategy:")
    for strategy in manager.predictor.strategies:
        c = manager.predictor.coefficients(strategy)
        print(f"  {strategy.label}: alpha={c.alpha:.4f}s "
              f"beta={c.beta:.3e} gamma={c.gamma:.3e}")

    # System state: instances 0,1 host a decode batch; 2,3 idle.
    pool = UnifiedKVPool.create(config.num_instances, config.kv_slots_per_instance)
    instances = {
        i: ElasticInstance(instance_id=i, pool=pool.pools[i])
        for i in range(config.num_instances)
    }
    batch = DecodeBatch(batch_id=next_batch_id())
    batch.group = ParallelGroup(instance_ids=(0, 1), tensor_parallel=2)
    for _ in range(6):
        resident = request(input_len=4_000, output_len=200)
        resident.generated = 40
        resident.prefill_end = 0.0
        batch.requests.append(resident)
        pool.place(resident.request_id, {0: resident.current_len // 2,
                                         1: resident.current_len - resident.current_len // 2})
    for i in (0, 1):
        instances[i].assign(InstanceRole.DECODE, batch.batch_id)

    pending = [request(180_000)] + [request(900) for _ in range(5)]
    print("\npending queue: 1 x 180K-token prompt + 5 x 900-token prompts")
    print(f"decode batch on instances (0, 1): {batch.batch_size} requests, "
          f"{batch.total_context:,} KV tokens resident")

    plan = manager.schedule(
        now=10.0,
        pending=pending,
        instances=instances,
        pool=pool,
        decode_batches=[batch],
        avg_decode_latency=2.0,
    )

    print(f"\nscheduler output: {len(plan.prefills)} prefill batch(es)")
    for planned in plan.prefills:
        task = planned.task
        lens = sorted((r.input_len for r in task.requests), reverse=True)
        print(f"  batch {task.batch_id}: {len(task.requests)} requests "
              f"{lens} -> DoP {task.dop} on instances {task.group.instance_ids}")
        kept = planned.scale_down.kept_instances
        print(f"    proactive scale-down keeps instances {kept}; placements:")
        for rid, placement in sorted(planned.scale_down.per_request.items()):
            print(f"      request {rid}: {placement}")
        if planned.start_delay:
            print(f"    start delayed {planned.start_delay * 1000:.1f} ms by KV migration")
    if plan.decode_scale_downs:
        for shrunk_batch, instance in plan.decode_scale_downs:
            print(f"  decode batch {shrunk_batch.batch_id} released instance "
                  f"{instance} (KV migrated to peers)")
    for scaled, decision in plan.scale_ups:
        print(f"  decode batch {scaled.batch_id} scales up by "
              f"{decision.add_instances} ({decision.reason})")
    if plan.coopted_batches:
        print("  co-opted decode batches: "
              f"{[b.batch_id for b in plan.coopted_batches]}")


if __name__ == "__main__":
    main()
