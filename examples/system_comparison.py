#!/usr/bin/env python3
"""Compare LoongServe against every baseline on the Mixed workload.

Reproduces the qualitative Figure 10 story at example scale: on a
workload mixing chat-length and book-length prompts, static parallelism
either wastes GPUs on short requests (vLLM TP=8), lets long prefills
starve decoding (vLLM, static hybrid), chunks prefills into inefficiency
(SplitFuse), or walls off half the cluster (DistServe).

Run:  python examples/system_comparison.py
"""

from repro import clone_requests, make_trace, summarize_latency
from repro.experiments.systems import make_system
from repro.workloads.datasets import MIXED

SYSTEMS = [
    "loongserve",
    "vllm",
    "splitfuse",
    "distserve",
    "static-sp",
    "replicated-tp2",
]


def main() -> None:
    trace = make_trace(MIXED, rate=0.6, num_requests=80, seed=7)
    total_tokens = sum(r.input_len + r.output_len for r in trace)
    print(f"workload: {len(trace)} Mixed requests, {total_tokens:,} tokens, "
          "0.6 req/s Poisson\n")
    header = (
        f"{'system':34s} {'tok (ms/t)':>11s} {'input':>9s} {'output':>9s} "
        f"{'finished':>9s} {'aborted':>8s}"
    )
    print(header)
    print("-" * len(header))
    for name in SYSTEMS:
        system = make_system(name, requests=trace)
        result = system.run(clone_requests(trace))
        summary = summarize_latency(result)
        label = getattr(system, "name", name)
        print(
            f"{label:34s} {summary.per_token * 1000:11.2f} "
            f"{summary.input_token * 1000:9.2f} {summary.output_token * 1000:9.2f} "
            f"{summary.finished:>6d}/{summary.total:<3d} {len(result.aborted):8d}"
        )
    print(
        "\nLoongServe should lead per-token latency: prefills run at high DoP\n"
        "on instances the decode phase is not using, decode batches scale\n"
        "down to the fewest instances their KV fits, and the unified pool\n"
        "never fragments a long request across replica boundaries."
    )


if __name__ == "__main__":
    main()
