#!/usr/bin/env python3
"""Elastic sequence parallelism, executed for real (numpy).

Walks the paper's §4 mechanisms on the functional engine and verifies
each against a serial reference transformer:

1. striped-attention sequence-parallel prefill across 4 instances,
2. proactive scale-down 4 -> 2 during that prefill (zero extra sends),
3. single-master distributed decoding on the scaled-down group,
4. elastic scale-up mid-generation (no KV migration),
5. multi-master decoding of a two-request batch.

Run:  python examples/esp_mechanisms.py
"""

import numpy as np

from repro.engine import (
    DistributedDecoder,
    FunctionalInstance,
    ReferenceTransformer,
    TransformerWeights,
    striped_prefill,
)
from repro.engine.reference import next_token_embedding


def check(label: str, got: np.ndarray, want: np.ndarray) -> None:
    error = float(np.abs(got - want).max())
    status = "ok" if error < 1e-9 else "MISMATCH"
    print(f"  [{status}] {label}: max |err| = {error:.2e}")


def main() -> None:
    weights = TransformerWeights.random(
        hidden_size=64, num_heads=8, num_kv_heads=4, num_layers=3, seed=11
    )
    reference = ReferenceTransformer(weights)
    rng = np.random.default_rng(0)
    prompt = rng.standard_normal((24, weights.hidden_size))

    print("1) striped-attention SP prefill, DoP=4")
    instances = [
        FunctionalInstance(i, weights.num_layers, weights.num_kv_heads, weights.head_dim)
        for i in range(4)
    ]
    expected_hidden, expected_cache = reference.prefill(prompt)

    print("2) ... with proactive scale-down 4 -> 2 fused into the prefill")
    retention = {0: np.arange(0, 10), 1: np.arange(10, 24)}
    run = striped_prefill(
        weights, prompt, instances, request_id=0, retention_plan=retention
    )
    check("prefill output vs reference", run.hidden, expected_hidden)
    print(f"  retained KV placement: {run.retained} (instances 2,3 hold nothing)")
    print(f"  ring sends: {run.ring_sends} — identical to a prefill with no "
          "scale-down (zero-overhead migration)")

    print("3) decoding on the scaled-down group (DoP=2, single master)")
    group = [instances[0], instances[1]]
    decoder = DistributedDecoder(weights=weights, instances=group)
    outputs = [run.last_hidden]
    ref_outputs = [expected_hidden[-1]]
    for _ in range(4):
        result = decoder.decode_step(
            {0: next_token_embedding(outputs[-1])}, masters={0: 0}
        )
        outputs.append(result.hidden[0])
        ref_outputs.append(
            reference.decode_step(next_token_embedding(ref_outputs[-1]), expected_cache)
        )
    check("4 decode steps vs reference", np.stack(outputs), np.stack(ref_outputs))

    print("4) elastic scale-up mid-generation: a third instance joins")
    newcomer = FunctionalInstance(
        9, weights.num_layers, weights.num_kv_heads, weights.head_dim
    )
    decoder.scale_up([newcomer])
    for _ in range(3):
        x_t = next_token_embedding(outputs[-1])
        result = decoder.decode_step({0: x_t}, masters={0: 9})
        outputs.append(result.hidden[0])
        ref_outputs.append(
            reference.decode_step(next_token_embedding(ref_outputs[-1]), expected_cache)
        )
    check("3 more steps after scale-up", np.stack(outputs), np.stack(ref_outputs))
    print(f"  KV placement now: {decoder.placement_of(0)} — old shards never moved")

    print("5) multi-master decoding of a 2-request batch")
    insts = [
        FunctionalInstance(i, weights.num_layers, weights.num_kv_heads, weights.head_dim)
        for i in range(2)
    ]
    xa = rng.standard_normal((9, weights.hidden_size))
    xb = rng.standard_normal((13, weights.hidden_size))
    ra, ca = reference.prefill(xa)
    rb, cb = reference.prefill(xb)
    run_a = striped_prefill(weights, xa, insts, request_id=1)
    run_b = striped_prefill(weights, xb, insts, request_id=2)
    batch_decoder = DistributedDecoder(weights=weights, instances=insts)
    result = batch_decoder.decode_step(
        {
            1: next_token_embedding(run_a.last_hidden),
            2: next_token_embedding(run_b.last_hidden),
        },
        masters={1: 0, 2: 1},  # two masters, one per request
    )
    check(
        "request A (master=0)",
        result.hidden[1],
        reference.decode_step(next_token_embedding(ra[-1]), ca),
    )
    check(
        "request B (master=1)",
        result.hidden[2],
        reference.decode_step(next_token_embedding(rb[-1]), cb),
    )
    print(f"  query messages exchanged: {result.query_messages}; "
          f"KV tokens migrated: {result.kv_migrated_tokens}")


if __name__ == "__main__":
    main()
