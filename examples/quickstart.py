#!/usr/bin/env python3
"""Quickstart: serve a ShareGPT-like trace with LoongServe and read the
paper's three metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    LoongServeServer,
    SHAREGPT,
    default_config,
    make_trace,
    summarize_latency,
)


def main() -> None:
    # The paper's testbed: one node, 8x A800-80GB, LWM-1M-Text (7B),
    # tensor parallelism 2 => four elastic instances, ESP degree up to 4.
    config = default_config(num_gpus=8, tensor_parallel=2)
    print(f"elastic instances: {config.num_instances}")
    print(f"KV slots per instance: {config.kv_slots_per_instance:,} tokens")

    server = LoongServeServer(config)

    # A Poisson trace of chat-style requests (4-2.3K input tokens).
    trace = make_trace(SHAREGPT, rate=10.0, num_requests=200, seed=42)
    result = server.run(trace)

    summary = summarize_latency(result)
    print(f"\nserved {summary.finished}/{summary.total} requests "
          f"in {result.makespan:.1f} simulated seconds")
    print(f"normalized per-token latency: {summary.per_token * 1000:.2f} ms/token")
    print(f"normalized input latency:     {summary.input_token * 1000:.2f} ms/token")
    print(f"normalized output latency:    {summary.output_token * 1000:.2f} ms/token")

    ups = sum(1 for e in result.scaling_events if e.kind == "scale_up")
    downs = sum(1 for e in result.scaling_events if e.kind == "scale_down")
    print(f"elastic scaling actions: {ups} scale-ups, {downs} scale-downs")


if __name__ == "__main__":
    main()
