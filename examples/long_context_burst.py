#!/usr/bin/env python3
"""The paper's motivating scenario: a 1M-class context hits a busy server.

A steady stream of chat traffic is interrupted by book-length prompts
(200K-400K tokens, LV-Eval scale).  Watch LoongServe's lifecycle from
Figure 6 play out in the iteration trace: the long prefill grabs every
instance the allocation step can justify, proactively scales down to the
fewest instances its KV fits, and the chat decode batches keep producing
tokens on the other instances the whole time.

Run:  python examples/long_context_burst.py
"""

from repro import (
    LoongServeServer,
    Request,
    default_config,
    make_trace,
    summarize_latency,
)
from repro.sim.trace import TraceRecorder
from repro.types import Phase, next_request_id
from repro.workloads.datasets import SHAREGPT


def main() -> None:
    config = default_config()
    server = LoongServeServer(config, trace=TraceRecorder(enabled=True))

    chat = make_trace(SHAREGPT, rate=8.0, num_requests=120, seed=3)
    bursts = [
        Request(request_id=next_request_id(), input_len=250_000, output_len=40,
                arrival_time=3.0),
        Request(request_id=next_request_id(), input_len=400_000, output_len=40,
                arrival_time=6.0),
    ]
    result = server.run(chat + bursts)
    summary = summarize_latency(result)

    print(f"served {summary.finished}/{summary.total} requests "
          f"in {result.makespan:.1f}s simulated")
    for burst in bursts:
        print(f"\nburst request ({burst.input_len:,} tokens):")
        print(f"  queued {burst.prefill_start - burst.arrival_time:.2f}s, "
              f"prefilled in {burst.prefill_end - burst.prefill_start:.2f}s, "
              f"finished at t={burst.finish_time:.1f}s")

    prefill_stats = [s for s in result.iteration_stats if s.phase == Phase.PREFILL]
    big = [s for s in prefill_stats if s.total_tokens >= 250_000]
    print(f"\nlong prefills ran at DoP {[s.dop for s in big]} "
          f"(cluster max is {config.num_instances})")

    chat_decode = [
        r for r in result.finished_requests if r.input_len <= 2_300 and r.output_len > 1
    ]
    worst = max(chat_decode, key=lambda r: r.normalized_output_latency)
    print(f"chat requests finished: {len(chat_decode)}; worst normalized output "
          f"latency {worst.normalized_output_latency * 1000:.1f} ms/token")

    downs = [e for e in result.scaling_events if e.kind == "scale_down"]
    ups = [e for e in result.scaling_events if e.kind == "scale_up"]
    print(f"scaling actions: {len(downs)} scale-downs, {len(ups)} scale-ups")

    from repro.viz.timeline import occupancy_timeline

    print("\ninstance occupancy (P=prefill, d=decode):")
    print(occupancy_timeline(result, config.num_instances))


if __name__ == "__main__":
    main()
