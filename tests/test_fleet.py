"""Tests for fleet-scale serving: routers, replica handles, FleetServer."""

import pytest

from repro.experiments.systems import make_fleet, make_system
from repro.fleet import (
    LONG_INPUT_THRESHOLD,
    ROUTERS,
    CacheAffinityRouter,
    FleetServer,
    LeastKVRouter,
    LeastOutstandingRouter,
    LengthAwareRouter,
    ReplicaHandle,
    RoundRobinRouter,
    make_router,
)
from repro.metrics.fleet import fleet_load_report, merge_serve_results
from repro.metrics.latency import summarize_latency
from repro.types import Request, RequestState, ServeResult
from repro.workloads.datasets import MIXED, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace, shard_trace
from tests.conftest import StubReplica, make_request


class TestRouters:
    def test_registry_has_six_policies(self):
        assert set(ROUTERS) == {
            "round-robin", "least-outstanding", "least-kv", "length-aware",
            "affinity", "slo",
        }
        for name in ROUTERS:
            assert make_router(name).name == name

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("magic")

    def test_round_robin_cycles(self):
        replicas = [StubReplica(i) for i in range(3)]
        router = RoundRobinRouter()
        chosen = [
            router.route(make_request(), replicas, 0.0).replica_id for _ in range(6)
        ]
        assert chosen == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_picks_idle_replica(self):
        replicas = [
            StubReplica(0, outstanding=5),
            StubReplica(1, outstanding=1),
            StubReplica(2, outstanding=3),
        ]
        chosen = LeastOutstandingRouter().route(make_request(), replicas, 0.0)
        assert chosen.replica_id == 1

    def test_least_kv_picks_most_free(self):
        replicas = [
            StubReplica(0, free=100),
            StubReplica(1, free=900),
            StubReplica(2, free=400),
        ]
        chosen = LeastKVRouter().route(make_request(), replicas, 0.0)
        assert chosen.replica_id == 1

    def test_least_kv_tie_breaks_by_outstanding(self):
        replicas = [
            StubReplica(0, free=500, outstanding=4),
            StubReplica(1, free=500, outstanding=1),
        ]
        chosen = LeastKVRouter().route(make_request(), replicas, 0.0)
        assert chosen.replica_id == 1

    def test_length_aware_separates_populations(self):
        replicas = [StubReplica(i) for i in range(4)]
        router = LengthAwareRouter()
        long_request = make_request(input_len=LONG_INPUT_THRESHOLD + 1)
        short_request = make_request(input_len=100)
        assert router.route(long_request, replicas, 0.0).replica_id in (0, 1)
        assert router.route(short_request, replicas, 0.0).replica_id in (2, 3)

    def test_length_aware_balances_within_pool(self):
        replicas = [
            StubReplica(0), StubReplica(1),
            StubReplica(2, tokens=5_000), StubReplica(3, tokens=10),
        ]
        chosen = LengthAwareRouter().route(make_request(input_len=50), replicas, 0.0)
        assert chosen.replica_id == 3

    def test_length_aware_single_replica_degenerates(self):
        replicas = [StubReplica(0)]
        router = LengthAwareRouter()
        for input_len in (10, 100_000):
            assert router.route(
                make_request(input_len=input_len), replicas, 0.0
            ).replica_id == 0

    def test_length_aware_validates_fraction(self):
        with pytest.raises(ValueError):
            LengthAwareRouter(long_fraction=1.5)

    def test_length_aware_custom_threshold(self):
        """--long-threshold must move the long/short boundary."""
        replicas = [StubReplica(i) for i in range(4)]
        router = LengthAwareRouter(long_threshold=500)
        assert router.route(make_request(input_len=600), replicas, 0.0).replica_id in (0, 1)
        assert router.route(make_request(input_len=400), replicas, 0.0).replica_id in (2, 3)

    def test_affinity_prefers_longest_match(self):
        replicas = [
            StubReplica(0, match=10, free=100),
            StubReplica(1, match=500, free=1),
            StubReplica(2, match=90, free=900),
        ]
        chosen = CacheAffinityRouter().route(make_request(), replicas, 0.0)
        assert chosen.replica_id == 1

    def test_affinity_falls_back_to_least_kv(self):
        replicas = [
            StubReplica(0, match=0, free=100),
            StubReplica(1, match=0, free=900),
        ]
        chosen = CacheAffinityRouter().route(make_request(), replicas, 0.0)
        assert chosen.replica_id == 1

    def test_affinity_handles_probe_less_replicas(self):
        """Replicas without a prefix cache probe score a zero match."""

        class BareStub:
            def __init__(self, replica_id, free):
                self.replica_id = replica_id
                self._free = free

            def kv_free(self):
                return self._free

            def outstanding_requests(self):
                return 0

        replicas = [BareStub(0, free=10), BareStub(1, free=50)]
        chosen = CacheAffinityRouter().route(make_request(), replicas, 0.0)
        assert chosen.replica_id == 1


class TestReplicaHandle:
    def test_kv_probe_across_server_shapes(self):
        shapes = {
            "loongserve": 4,      # UnifiedKVPool: one entry per instance
            "vllm": 1,            # single engine pool
            "distserve": 2,       # prefill + decode engines
            "replicated-tp2": 4,  # four TP=2 engines
        }
        for name, expected_entries in shapes.items():
            handle = ReplicaHandle(0, make_system(name))
            free = handle.kv_free_map()
            assert len(free) == expected_entries, name
            assert handle.kv_free() == sum(free.values())
            assert handle.kv_free() > 0

    def test_outstanding_tracks_routed_lifecycle(self):
        handle = ReplicaHandle(0, make_system("loongserve"))
        request = make_request(input_len=100, output_len=4)
        handle.submit(request)
        assert handle.outstanding_requests() == 1
        assert handle.outstanding_tokens() == request.current_len
        request.state = RequestState.FINISHED
        assert handle.outstanding_requests() == 0
        # The live set lazily pruned the finished request; the routed
        # ledger (the fleet's result surface) still remembers it.
        assert handle._active == []
        assert handle.routed == [request]


class TestFleetServer:
    @pytest.mark.parametrize("system", ["loongserve", "vllm", "distserve"])
    def test_fleet_serves_trace_on_any_system(self, system):
        trace = make_trace(SHAREGPT, rate=8.0, num_requests=24, seed=21)
        fleet = make_fleet(system, replicas=2, router="round-robin", requests=trace)
        result = fleet.run(clone_requests(trace))
        assert len(result.finished_requests) == 24
        assert len(result.per_replica) == 2
        assert result.makespan > 0

    def test_every_request_served_exactly_once(self):
        trace = make_trace(MIXED, rate=5.0, num_requests=30, seed=22)
        fleet = make_fleet("loongserve", replicas=3, router="least-kv",
                           requests=trace)
        result = fleet.run(clone_requests(trace))
        served = [
            r.request_id
            for replica in result.per_replica
            for r in replica.requests + replica.aborted
        ]
        assert sorted(served) == sorted(r.request_id for r in trace)
        assert len(set(served)) == len(served)

    def test_shared_clock_and_global_makespan(self):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=20, seed=23)
        fleet = make_fleet("loongserve", replicas=2, requests=trace)
        result = fleet.run(clone_requests(trace))
        finish_times = [r.finish_time for r in result.finished_requests]
        assert result.makespan >= max(finish_times) - 1e-9
        for replica in result.per_replica:
            assert replica.makespan == result.makespan

    def test_length_aware_fleet_isolates_long_requests(self):
        trace = make_trace(MIXED, rate=6.0, num_requests=40, seed=24)
        fleet = make_fleet("loongserve", replicas=4, router="length-aware",
                           requests=trace)
        result = fleet.run(clone_requests(trace))
        long_pool = {0, 1}
        for replica_id, replica in enumerate(result.per_replica):
            for request in replica.requests + replica.aborted:
                expected = replica_id in long_pool
                assert (request.input_len >= LONG_INPUT_THRESHOLD) == expected

    def test_fleet_rerun_is_clean(self):
        """A second run must not inherit the first run's state."""
        trace = make_trace(SHAREGPT, rate=8.0, num_requests=15, seed=25)
        fleet = make_fleet("loongserve", replicas=2, requests=trace)
        first = fleet.run(clone_requests(trace))
        second = fleet.run(clone_requests(trace))
        assert len(second.requests) == len(first.requests)
        lat_a = sorted(r.normalized_latency for r in first.finished_requests)
        lat_b = sorted(r.normalized_latency for r in second.finished_requests)
        assert lat_a == pytest.approx(lat_b)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            FleetServer([], make_router("round-robin"))
        with pytest.raises(ValueError):
            make_fleet(replicas=0)


class TestFleetMetrics:
    def _results(self):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=30, seed=26)
        fleet = make_fleet("loongserve", replicas=3, requests=trace)
        return fleet.run(clone_requests(trace))

    def test_merge_preserves_counts_and_makespan(self):
        result = self._results()
        merged = merge_serve_results(result.per_replica, system="fleet")
        assert len(merged.requests) == len(result.requests)
        assert merged.makespan == result.makespan
        starts = [s.start_time for s in merged.iteration_stats]
        assert starts == sorted(starts)

    def test_merge_requires_results(self):
        with pytest.raises(ValueError):
            merge_serve_results([])

    def test_latency_summary_over_merged_result(self):
        result = self._results()
        summary = summarize_latency(result)
        assert summary.finished == 30
        assert summary.per_token > 0

    def test_load_report_accounts_every_request(self):
        result = self._results()
        report = fleet_load_report(result.per_replica)
        assert len(report.replicas) == 3
        assert sum(load.routed for load in report.replicas) == 30
        assert report.token_imbalance >= 1.0
        assert report.request_cv >= 0.0
        rendered = report.render()
        assert "token imbalance" in rendered
        assert "LoongServe" in rendered

    def test_perfectly_balanced_report(self):
        def result_with(tokens):
            request = Request(request_id=tokens, input_len=tokens, output_len=1)
            return ServeResult(system="stub", requests=[request])

        report = fleet_load_report([result_with(100), result_with(100)])
        assert report.token_imbalance == pytest.approx(1.0)
        assert report.request_cv == pytest.approx(0.0)


class TestShardTrace:
    def test_round_robin_shards_evenly(self):
        trace = make_trace(SHAREGPT, rate=5.0, num_requests=10, seed=27)
        shards = shard_trace(trace, 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        recombined = sorted(r.request_id for shard in shards for r in shard)
        assert recombined == sorted(r.request_id for r in trace)

    def test_length_aware_shards_split_populations(self):
        trace = [
            make_request(input_len=10_000, arrival=0.1 * i) for i in range(4)
        ] + [make_request(input_len=50, arrival=0.1 * i) for i in range(8)]
        shards = shard_trace(trace, 4, policy="length-aware")
        for request in shards[0] + shards[1]:
            assert request.input_len >= 2_600
        for request in shards[2] + shards[3]:
            assert request.input_len < 2_600

    def test_preserves_arrival_order_within_shard(self):
        trace = make_trace(SHAREGPT, rate=5.0, num_requests=12, seed=28)
        for shard in shard_trace(trace, 3, policy="length-aware"):
            arrivals = [r.arrival_time for r in shard]
            assert arrivals == sorted(arrivals)

    def test_invalid_args_rejected(self):
        trace = [make_request()]
        with pytest.raises(ValueError):
            shard_trace(trace, 0)
        with pytest.raises(ValueError):
            shard_trace(trace, 2, policy="magic")
