"""Deterministic chaos harness: property tests over random crash plans.

Hypothesis drives the crash schedules — scripted lists of
(time, replica, downtime) triples and seeded Poisson draws — against
small but fully real fleet runs, asserting the failover invariants that
must hold under *any* schedule:

* **Exactly-once**: every request of the trace appears on exactly one
  replica's ledger, finished — crashes neither lose nor duplicate work.
* **Token conservation**: every finished request generated exactly its
  declared output; recomputed prefills never leak partial generations.
* **Pool-occupancy consistency**: after the run every replica's KV pool
  holds exactly its prefix cache's resident tokens (zero without a
  cache) — KV loss and failover leak no slots.
* **Ledger coherence**: the flight recorder's crash count matches the
  injector's, and the capacity timeline never leaves [0, fleet size].

The ``CI=1`` profile (tests/conftest.py) derandomizes all of this for
bit-reproducible CI runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.systems import make_fleet
from repro.fleet import FaultPlan, ReplicaFault
from repro.sessions import make_session_trace
from repro.workloads.datasets import SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace

# Small-but-real workloads, generated once: every example clones them.
MIXED_FLEET_REPLICAS = 3
MIXED_TRACE = make_trace(SHAREGPT, rate=8.0, num_requests=14, seed=21)
SESSION_FLEET_REPLICAS = 2
SESSION_TRACE = make_session_trace(rate=4.0, num_sessions=5, seed=22)

fault_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=MIXED_FLEET_REPLICAS - 1),
        st.floats(min_value=0.5, max_value=6.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=6,
)


def scripted_plan(specs) -> FaultPlan:
    return FaultPlan(
        [ReplicaFault(time=t, replica_id=r, downtime_s=d) for t, r, d in specs]
    )


def assert_fault_invariants(trace, fleet, result) -> None:
    served = [
        r.request_id
        for replica in result.per_replica
        for r in replica.requests + replica.aborted
    ]
    # Exactly-once: nothing lost, nothing duplicated.
    assert sorted(served) == sorted(r.request_id for r in trace)
    assert len(set(served)) == len(served)
    assert not result.aborted
    # Token conservation: all work completed, exactly as declared.
    assert len(result.finished_requests) == len(trace)
    for request in result.finished_requests:
        assert request.generated == request.output_len
    # Pool occupancy: no slot leaked through crash, failover, or
    # migration — whatever remains resident belongs to a prefix cache.
    for handle in fleet.replicas:
        server = handle.server
        cache = getattr(server, "prefix_cache", None)
        expected = cache.resident_tokens if cache is not None else 0
        assert server.pool.total_used == expected
    # Ledger coherence.
    elastic = result.elastic
    if elastic is not None:
        injector = fleet.policy.injector
        assert elastic.crashes == len(injector.injected)
        assert elastic.crashes + len(injector.skipped) <= len(injector.plan)
        assert all(
            0 <= online <= len(fleet.replicas)
            for _, online in elastic.capacity_timeline
        )
        assert elastic.lost_kv_tokens >= 0
        assert elastic.failovers >= 0


class TestChaosInvariants:
    @given(specs=fault_specs)
    @settings(max_examples=12, deadline=None)
    def test_fleet_survives_any_scripted_crash_schedule(self, specs):
        """Work stealing + failover under arbitrary crash schedules,
        including overlapping crashes and whole-fleet outages."""
        plan = scripted_plan(specs)
        fleet = make_fleet(
            "loongserve", replicas=MIXED_FLEET_REPLICAS, router="round-robin",
            requests=MIXED_TRACE, num_gpus=4, steal=True, faults=plan,
        )
        result = fleet.run(clone_requests(MIXED_TRACE))
        assert_fault_invariants(MIXED_TRACE, fleet, result)

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=8, deadline=None)
    def test_session_fleet_with_poisson_faults(self, seed):
        """The full stack — affinity routing, prefix caches, stealing,
        KV migration, autoscaling — under seeded stochastic crashes."""
        horizon = max(r.arrival_time for r in SESSION_TRACE)
        plan = FaultPlan.poisson(
            num_replicas=SESSION_FLEET_REPLICAS, horizon_s=horizon,
            mtbf_s=horizon / 1.5, seed=seed, downtime_s=3.0,
        )
        fleet = make_fleet(
            "loongserve", replicas=SESSION_FLEET_REPLICAS, router="affinity",
            requests=SESSION_TRACE, num_gpus=4, prefix_cache=True,
            autoscale=True, steal=True, migrate_kv=True,
            faults=plan if plan else None,
        )
        result = fleet.run(clone_requests(SESSION_TRACE))
        if plan:
            assert_fault_invariants(SESSION_TRACE, fleet, result)
        else:
            assert len(result.finished_requests) == len(SESSION_TRACE)

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=6, deadline=None)
    def test_crash_schedules_replay_deterministically(self, seed):
        """One seed, two runs, identical outcomes — the chaos harness
        itself must be deterministic or its counterexamples are noise."""
        plan = FaultPlan.poisson(
            num_replicas=MIXED_FLEET_REPLICAS, horizon_s=5.0, mtbf_s=4.0,
            seed=seed, downtime_s=2.0,
        )
        if not plan:
            return
        outcomes = []
        for _ in range(2):
            fleet = make_fleet(
                "loongserve", replicas=MIXED_FLEET_REPLICAS,
                router="round-robin", requests=MIXED_TRACE, num_gpus=4,
                steal=True, faults=plan,
            )
            result = fleet.run(clone_requests(MIXED_TRACE))
            outcomes.append(
                sorted(
                    (r.request_id, round(r.finish_time, 12))
                    for r in result.finished_requests
                )
            )
        assert outcomes[0] == outcomes[1]
