"""Tests for the analytical model (Eq. 7) and its least-squares fitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.costmodel.analytical import AnalyticalModel, StrategyCoefficients
from repro.costmodel.fitting import default_profile_grid, fit_quadratic, profile_and_fit
from repro.costmodel.latency import RooflineCostModel
from repro.model.spec import LWM_7B_1M
from repro.parallel.strategy import ParallelismStrategy

SP4TP2 = ParallelismStrategy(tensor_parallel=2, sequence_parallel=4)
SP2TP4 = ParallelismStrategy(tensor_parallel=4, sequence_parallel=2)


class TestFitQuadratic:
    def test_recovers_exact_quadratic(self):
        truth = StrategyCoefficients(alpha=0.01, beta=2e-6, gamma=3e-12)
        samples = []
        for lens in [[100], [1_000], [10_000], [500, 500], [2_000, 8_000]]:
            total = sum(lens)
            total_sq = sum(n * n for n in lens)
            samples.append((lens, truth.predict(total, total_sq)))
        fitted = fit_quadratic(samples)
        assert fitted.alpha == pytest.approx(truth.alpha, rel=1e-6)
        assert fitted.beta == pytest.approx(truth.beta, rel=1e-6)
        assert fitted.gamma == pytest.approx(truth.gamma, rel=1e-6)

    def test_requires_three_samples(self):
        with pytest.raises(ValueError):
            fit_quadratic([([100], 0.1), ([200], 0.2)])

    def test_rejects_degenerate_samples(self):
        with pytest.raises(ValueError):
            fit_quadratic([([100], 0.1)] * 5)

    def test_clamps_negative_alpha(self):
        truth = StrategyCoefficients(alpha=0.0, beta=1e-6, gamma=0.0)
        samples = [
            ([n], truth.predict(n, n * n) - 1e-9) for n in (10, 100, 1000, 10000)
        ]
        fitted = fit_quadratic(samples)
        assert fitted.alpha >= 0.0
        assert fitted.gamma >= 0.0

    @given(
        alpha=st.floats(min_value=0.001, max_value=0.1),
        beta=st.floats(min_value=1e-8, max_value=1e-5),
        gamma=st.floats(min_value=1e-14, max_value=1e-10),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, alpha, beta, gamma):
        """Fitting noiseless quadratic data recovers the coefficients."""
        truth = StrategyCoefficients(alpha=alpha, beta=beta, gamma=gamma)
        grid = default_profile_grid(max_len=200_000)
        samples = [
            (lens, truth.predict(sum(lens), sum(n * n for n in lens)))
            for lens in grid
        ]
        fitted = fit_quadratic(samples)
        for lens in ([123], [4_567], [100, 90_000]):
            total, total_sq = sum(lens), sum(n * n for n in lens)
            assert fitted.predict(total, total_sq) == pytest.approx(
                truth.predict(total, total_sq), rel=1e-3, abs=1e-9
            )


class TestAnalyticalModel:
    def test_unknown_strategy_raises(self):
        model = AnalyticalModel()
        with pytest.raises(KeyError):
            model.predict(SP4TP2, [100])

    def test_set_and_predict(self):
        model = AnalyticalModel()
        model.set_coefficients(SP4TP2, StrategyCoefficients(0.01, 1e-6, 0.0))
        assert model.predict(SP4TP2, [1000]) == pytest.approx(0.011)

    def test_predict_sums_matches_predict(self):
        model = AnalyticalModel()
        model.set_coefficients(SP4TP2, StrategyCoefficients(0.01, 1e-6, 1e-12))
        lens = [100, 5000]
        by_list = model.predict(SP4TP2, lens)
        by_sums = model.predict_sums(SP4TP2, sum(lens), sum(n * n for n in lens))
        assert by_list == pytest.approx(by_sums)

    def test_prefill_time_interface(self):
        model = AnalyticalModel()
        model.set_coefficients(SP4TP2, StrategyCoefficients(0.01, 1e-6, 0.0))
        assert model.prefill_time([1000], instances=4, tensor_parallel=2) > 0

    def test_strategies_sorted(self):
        model = AnalyticalModel()
        model.set_coefficients(SP4TP2, StrategyCoefficients(0.01, 1e-6, 0.0))
        model.set_coefficients(SP2TP4, StrategyCoefficients(0.01, 1e-6, 0.0))
        assert model.strategies[0].sequence_parallel == 2


class TestProfileAndFit:
    def test_fits_roofline_within_ten_percent(self):
        """The Figure 15 claim: fitted model within 10% of ground truth."""
        cost = RooflineCostModel(cluster=Cluster.homogeneous(8), model=LWM_7B_1M)

        def measure(strategy, lens):
            return cost.prefill_time(
                lens, strategy.sequence_parallel, strategy.tensor_parallel
            )

        fitted = profile_and_fit(measure, [SP4TP2, SP2TP4])
        deviations = []
        for strategy in (SP4TP2, SP2TP4):
            for lens in ([2_000], [30_000], [300_000], [8_000] * 4):
                real = measure(strategy, lens)
                pred = fitted.predict(strategy, lens)
                deviations.append(abs(pred - real) / real)
        assert max(deviations) < 0.10

    def test_profile_grid_is_diverse(self):
        grid = default_profile_grid()
        totals = {sum(w) for w in grid}
        assert len(totals) >= 5
