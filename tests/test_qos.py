"""QoS subsystem tests: classes, admission, scheduling, routing,
predictive autoscaling, ledgers, closed-loop sessions, and the
golden-signature off gates."""

import hashlib
from dataclasses import replace

import pytest

from repro.baselines.no_scaleup import build_loongserve
from repro.config import default_config
from repro.experiments.endtoend import reference_ideal_model
from repro.experiments.systems import make_fleet, make_system
from repro.fleet import PredictiveAutoscaler, PredictiveConfig, SLORouter
from repro.metrics.qos import QoSLedger, merge_qos_stats, per_class_report
from repro.qos import (
    BATCH,
    INTERACTIVE,
    QOS_CLASSES,
    STANDARD,
    AdmissionController,
    QoSClass,
    QoSPolicy,
    assign_qos,
    parse_qos_mix,
    resolve_qos_class,
)
from repro.sessions import (
    ClosedLoopDriver,
    make_session_trace,
    plan_sessions,
    tag_session_plans,
)
from repro.types import ServeResult
from repro.workloads.datasets import MIXED, SHAREGPT
from repro.workloads.serialization import records_to_trace, trace_to_records
from repro.workloads.trace_gen import clone_requests, make_trace
from tests.conftest import StubReplica, make_request

QOS_MIX = {"interactive": 0.4, "standard": 0.4, "batch": 0.2}


@pytest.fixture(scope="module")
def policy() -> QoSPolicy:
    config = default_config(num_gpus=4, tensor_parallel=2)
    from repro.costmodel.latency import RooflineCostModel

    cost = RooflineCostModel(cluster=config.cluster, model=config.model)
    return QoSPolicy.for_config(config, cost, admission=True)


class TestClasses:
    def test_standard_registry(self):
        assert set(QOS_CLASSES) == {"interactive", "standard", "batch"}
        assert INTERACTIVE.priority < STANDARD.priority < BATCH.priority
        assert INTERACTIVE.deadline_scale < STANDARD.deadline_scale
        assert BATCH.preemptible and not INTERACTIVE.preemptible

    def test_resolve_defaults_untagged_to_standard(self):
        assert resolve_qos_class(None) is STANDARD
        assert resolve_qos_class("batch") is BATCH
        with pytest.raises(ValueError, match="unknown QoS class"):
            resolve_qos_class("platinum")

    def test_parse_qos_mix_normalises(self):
        mix = parse_qos_mix("interactive:1,batch:3")
        assert mix == {"interactive": 0.25, "batch": 0.75}

    def test_parse_qos_mix_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_qos_mix("interactive:nope")
        with pytest.raises(ValueError):
            parse_qos_mix("platinum:1")
        with pytest.raises(ValueError):
            parse_qos_mix("")
        with pytest.raises(ValueError):
            parse_qos_mix("batch:-1")

    def test_invalid_class_definitions_rejected(self):
        with pytest.raises(ValueError):
            QoSClass(name="x", priority=0, deadline_scale=0.0)
        with pytest.raises(ValueError):
            QoSClass(name="x", priority=0, deadline_scale=1.0, admission="maybe")
        with pytest.raises(ValueError):
            QoSClass(
                name="x", priority=0, deadline_scale=1.0, admission="downgrade"
            )

    def test_assign_qos_is_deterministic_and_session_consistent(self):
        trace = make_session_trace(rate=2.0, num_sessions=8, seed=3)
        assign_qos(trace, QOS_MIX, seed=7)
        by_session = {}
        for request in trace:
            assert request.qos in QOS_MIX
            by_session.setdefault(request.session_id, set()).add(request.qos)
        assert all(len(classes) == 1 for classes in by_session.values())
        again = make_session_trace(rate=2.0, num_sessions=8, seed=3)
        assign_qos(again, QOS_MIX, seed=7)
        # Same sampled conversations in both traces => same tags per
        # position (ids differ across process-global counters).
        assert [r.qos for r in trace] == [r.qos for r in again]

    def test_tagging_never_perturbs_the_workload(self):
        plain = make_trace(MIXED, rate=3.0, num_requests=40, seed=9)
        tagged = make_trace(
            MIXED, rate=3.0, num_requests=40, seed=9, qos_mix=QOS_MIX
        )
        assert [
            (r.input_len, r.output_len, r.arrival_time) for r in plain
        ] == [(r.input_len, r.output_len, r.arrival_time) for r in tagged]
        assert all(r.qos is None for r in plain)
        assert all(r.qos is not None for r in tagged)

    def test_session_tagging_never_perturbs_the_workload(self):
        plain = make_session_trace(rate=1.0, num_sessions=6, seed=4)
        tagged = make_session_trace(
            rate=1.0, num_sessions=6, seed=4, qos_mix=QOS_MIX
        )
        assert [
            (r.input_len, r.output_len, r.arrival_time, r.turn) for r in plain
        ] == [(r.input_len, r.output_len, r.arrival_time, r.turn) for r in tagged]


class TestSerialization:
    def test_qos_round_trips_through_jsonl_records(self):
        trace = make_trace(
            SHAREGPT, rate=5.0, num_requests=10, seed=2, qos_mix=QOS_MIX
        )
        restored = records_to_trace(trace_to_records(trace))
        assert [r.qos for r in sorted(restored, key=lambda r: r.request_id)] == [
            r.qos for r in sorted(trace, key=lambda r: r.request_id)
        ]

    def test_untagged_records_stay_unchanged(self):
        trace = make_trace(SHAREGPT, rate=5.0, num_requests=4, seed=2)
        records = trace_to_records(trace)
        assert all("qos" not in record for record in records)

    def test_clone_copies_the_tag(self):
        trace = make_trace(
            SHAREGPT, rate=5.0, num_requests=5, seed=2, qos_mix=QOS_MIX
        )
        clones = clone_requests(trace)
        assert [r.qos for r in clones] == [r.qos for r in trace]
        # Runtime QoS state is never cloned — it belongs to one run.
        assert all(r.deadline is None and r.downgraded_to is None for r in clones)


class TestAdmission:
    def test_feasible_request_admitted_at_its_tier(self, policy):
        request = make_request(input_len=1_000, output_len=20)
        request.qos = "interactive"
        decision = policy.admission.decide(request, now=0.0, wait_s=0.0, policy=policy)
        assert decision.admitted
        assert decision.qos_class.name == "interactive"
        assert decision.deadline == pytest.approx(
            10.0 * policy.ideal_latency(request)
        )

    def test_infeasible_interactive_downgrades_then_rejects(self, policy):
        request = make_request(input_len=1_000, output_len=20)
        request.qos = "interactive"
        ideal = policy.ideal_latency(request)
        # Wait long enough to bust the 10x interactive budget but not
        # the 25x standard one: downgrade.
        decision = policy.admission.decide(
            request, now=0.0, wait_s=15.0 * ideal, policy=policy
        )
        assert decision.admitted
        assert decision.qos_class.name == "standard"
        # Bust the standard budget too: reject (standard does not chain).
        decision = policy.admission.decide(
            request, now=0.0, wait_s=40.0 * ideal, policy=policy
        )
        assert not decision.admitted
        assert decision.action == "reject"

    def test_batch_always_admitted(self, policy):
        request = make_request(input_len=1_000, output_len=20)
        request.qos = "batch"
        ideal = policy.ideal_latency(request)
        decision = policy.admission.decide(
            request, now=0.0, wait_s=1e4 * ideal, policy=policy
        )
        assert decision.admitted
        assert decision.qos_class.name == "batch"

    def test_prefix_bias_admits_hot_prefix_under_contention(self, policy):
        cold = make_request(input_len=2_000, output_len=20)
        cold.qos = "standard"
        ideal = policy.ideal_latency(cold)
        wait = 24.5 * ideal  # just past the 25x budget net of service time
        assert not policy.admission.decide(
            cold, now=0.0, wait_s=wait, policy=policy
        ).admitted
        hot = make_request(input_len=2_000, output_len=20)
        hot.qos = "standard"
        hot.cached_prefix_len = 1_900  # ~95% resident
        assert policy.admission.decide(
            hot, now=0.0, wait_s=wait, policy=policy
        ).admitted

    def test_non_lowering_downgrade_chain_raises(self, policy):
        classes = dict(QOS_CLASSES)
        classes["interactive"] = replace(
            INTERACTIVE, downgrade_to="interactive"
        )
        bad = QoSPolicy(
            ideal=policy.ideal,
            classes=classes,
            admission=AdmissionController(),
        )
        request = make_request(input_len=1_000, output_len=20)
        request.qos = "interactive"
        with pytest.raises(ValueError, match="does not lower"):
            bad.admission.decide(
                request,
                now=0.0,
                wait_s=1e3 * policy.ideal_latency(request),
                policy=bad,
            )


class TestPolicy:
    def test_dispatch_key_orders_by_tier_then_slack(self, policy):
        now = 0.0
        interactive = make_request(input_len=1_000, output_len=20)
        interactive.qos = "interactive"
        batch_early = make_request(input_len=1_000, output_len=20, arrival=0.0)
        batch_early.qos = "batch"
        tight = make_request(input_len=50_000, output_len=20)
        tight.qos = "interactive"
        order = sorted(
            [batch_early, tight, interactive],
            key=lambda r: policy.dispatch_key(r, now),
        )
        # Interactive before batch regardless of arrival; within the
        # tier... both interactive requests sort by slack.
        assert order[-1] is batch_early
        assert {order[0].request_id, order[1].request_id} == {
            interactive.request_id, tight.request_id,
        }

    def test_slack_uses_stamped_deadline_when_present(self, policy):
        request = make_request(input_len=1_000, output_len=20)
        request.qos = "interactive"
        free = policy.slack(request, now=0.0)
        request.deadline = 1e6
        assert policy.slack(request, now=0.0) > free

    def test_downgrade_moves_the_effective_class(self, policy):
        request = make_request(input_len=1_000, output_len=20)
        request.qos = "interactive"
        assert policy.qos_class(request) is policy.classes["interactive"]
        request.downgraded_to = "standard"
        assert policy.qos_class(request) is policy.classes["standard"]
        assert request.qos == "interactive"  # the workload tag survives


class TestServerScheduling:
    def _qos_server(self, num_gpus=4, admission=True, **kwargs):
        server = build_loongserve(num_gpus=num_gpus)
        server.qos = QoSPolicy.for_config(
            server.config, server.cost_model, admission=admission, **kwargs
        )
        return server

    def test_interactive_overtakes_queued_batch_work(self):
        # One long batch prefill arrives first, then a burst of
        # interactive turns; with QoS armed the interactive requests
        # reach their first token ahead of later batch work.
        requests = []
        for i in range(4):
            r = make_request(input_len=20_000, output_len=30, arrival=0.01 * i)
            r.qos = "batch"
            requests.append(r)
        for i in range(4):
            r = make_request(input_len=500, output_len=20, arrival=0.05 + 0.01 * i)
            r.qos = "interactive"
            requests.append(r)
        server = self._qos_server(admission=False)
        result = server.run(requests)
        finished = {r.request_id: r for r in result.finished_requests}
        assert len(finished) == len(requests)
        interactive_first = max(
            finished[r.request_id].first_token_time
            for r in requests
            if r.qos == "interactive"
        )
        batch_last = max(
            finished[r.request_id].first_token_time
            for r in requests
            if r.qos == "batch"
        )
        assert interactive_first <= batch_last

    def test_admission_rejects_and_ledger_reconciles(self):
        trace = make_trace(
            MIXED, rate=40.0, num_requests=60, seed=5, max_input_len=30_000,
            qos_mix={"interactive": 0.5, "standard": 0.5},
        )
        server = self._qos_server()
        result = server.run(clone_requests(trace))
        ledger = result.qos_stats
        assert ledger is not None
        total_submitted = sum(
            int(c.get("submitted", 0)) for c in ledger.values()
        )
        total_admitted = sum(int(c.get("admitted", 0)) for c in ledger.values())
        total_rejected = sum(int(c.get("rejected", 0)) for c in ledger.values())
        assert total_submitted == total_admitted + total_rejected
        # Exactly-once: every trace request is finished or aborted.
        assert len(result.finished_requests) + len(result.aborted) == len(trace)
        assert total_rejected == len(
            [r for r in result.aborted if r.max_total_len < 1e9]
        )

    @staticmethod
    def _memory_pressure_run(preemption: bool):
        # A deliberately tiny KV pool: two long-decoding batch requests
        # occupy nearly everything when the interactive request arrives,
        # so only preempting a batch decode frees the slots in time.
        config = replace(
            default_config(num_gpus=4, tensor_parallel=2),
            kv_memory_fraction=0.002,
        )
        from repro.core.server import LoongServeServer

        server = LoongServeServer(config)
        server.qos = QoSPolicy.for_config(
            server.config, server.cost_model,
            admission=False, preemption=preemption,
        )
        pool_slots = config.kv_slots_per_instance * config.num_instances
        batch_output = 300
        batch_input = int(pool_slots * 0.45) - batch_output
        assert batch_input > 0
        batch_a = make_request(
            input_len=batch_input, output_len=batch_output, arrival=0.0
        )
        batch_a.qos = "batch"
        batch_b = make_request(
            input_len=batch_input, output_len=batch_output, arrival=0.0
        )
        batch_b.qos = "batch"
        interactive = make_request(
            input_len=int(pool_slots * 0.25), output_len=4, arrival=1.0
        )
        interactive.qos = "interactive"
        result = server.run([batch_a, batch_b, interactive])
        assert not result.aborted
        return result, interactive

    def test_deadline_preemption_saves_the_interactive_prefill(self):
        protected, interactive = self._memory_pressure_run(preemption=True)
        assert int(protected.qos_stats["batch"].get("preempted", 0)) >= 1
        assert interactive.finished
        protected_ttft = interactive.first_token_time

        starved, interactive = self._memory_pressure_run(preemption=False)
        assert "preempted" not in starved.qos_stats.get("batch", {})
        assert interactive.finished
        # The memory-blocked interactive prefill reaches its first token
        # materially earlier when the batch decode is preemptible.
        assert protected_ttft < interactive.first_token_time

    def test_impossible_abort_counts_in_the_ledger(self):
        # A request too large for the cluster aborts before admission
        # ever prices it; the ledger must still reconcile with the
        # trace (submitted = admitted + rejected).
        server = self._qos_server(num_gpus=2)
        impossible = make_request(input_len=5_000_000, output_len=10)
        impossible.qos = "interactive"
        fine = make_request(input_len=500, output_len=10)
        fine.qos = "interactive"
        result = server.run([impossible, fine])
        counters = result.qos_stats["interactive"]
        assert counters["submitted"] == 2.0
        assert counters["admitted"] == 1.0
        assert counters["rejected"] == 1.0
        assert len(result.aborted) == 1

    def test_preemption_ledger_off_when_disabled(self):
        server = self._qos_server(admission=False, preemption=False)
        trace = make_trace(MIXED, rate=10.0, num_requests=20, seed=6,
                           max_input_len=20_000, qos_mix=QOS_MIX)
        result = server.run(clone_requests(trace))
        # No deadline preemptions planned; memory-pressure preemptions
        # may still occur and are charged to the victim's class.
        assert result.qos_stats is not None


class TestSLORouter:
    def test_prefers_replica_with_least_predicted_wait(self):
        router = SLORouter()
        replicas = [
            StubReplica(0, tokens=10_000, free=100),
            StubReplica(1, tokens=100, free=100),
        ]
        request = make_request(input_len=1_000, output_len=10)
        assert router.route(request, replicas, now=0.0).replica_id == 1

    def test_prefix_match_offsets_backlog(self):
        # Replica 0 is busier but holds the whole prompt; the netted
        # work is smaller there.
        router = SLORouter()
        request = make_request(input_len=8_000, output_len=10)
        busy_with_cache = StubReplica(0, tokens=5_000, free=100, match=8_000)
        idle_cold = StubReplica(1, tokens=0, free=100, match=0)
        assert router.route(request, [busy_with_cache, idle_cold], now=0.0).replica_id == 0

    def test_deterministic_tie_break_on_replica_id(self):
        router = SLORouter()
        replicas = [StubReplica(i, tokens=50, free=10) for i in range(3)]
        request = make_request(input_len=100, output_len=10)
        assert router.route(request, replicas, now=0.0).replica_id == 0

    def test_predicted_slack_in_seconds_with_cost_model(self):
        ideal = reference_ideal_model(num_gpus=4)
        router = SLORouter(ideal=ideal, token_rate=10_000.0)
        request = make_request(input_len=1_000, output_len=10)
        request.qos = "interactive"
        empty = StubReplica(0, tokens=0, free=100)
        slack = router.predicted_slack(request, empty, now=0.0)
        budget = INTERACTIVE.deadline_scale * ideal.ideal_latency(request)
        assert 0.0 < slack < budget

    def test_registered_and_constructible_by_name(self):
        from repro.fleet import make_router

        assert make_router("slo").name == "slo"


class _ScalerReplica(StubReplica):
    """Stub with the routed ledger and lifecycle flags the predictive
    autoscaler reads."""

    def __init__(self, replica_id, **kwargs):
        super().__init__(replica_id, **kwargs)
        self.routed = []
        self.online = True
        self.draining = False
        self.warming = False


class TestPredictiveAutoscaler:
    def _fleet(self, n=3):
        return [_ScalerReplica(i) for i in range(n)]

    def _feed(self, replicas, tokens):
        replicas[0].routed.append(
            make_request(input_len=tokens, output_len=1)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PredictiveAutoscaler(token_rate=0.0)
        with pytest.raises(ValueError):
            PredictiveConfig(target_utilization=1.5)
        with pytest.raises(ValueError):
            PredictiveConfig(low_utilization=0.9, target_utilization=0.7)

    def test_scale_out_on_forecast_before_queues_exist(self):
        replicas = self._fleet(3)
        replicas[1].online = False  # parked
        replicas[2].online = False
        scaler = PredictiveAutoscaler(token_rate=1_000.0)
        assert scaler.decide(replicas, now=0.0) == []  # first observation
        # 5k tokens/s forecast >> one replica's 1k tokens/s service rate.
        self._feed(replicas, 5_000)
        actions = scaler.decide(replicas, now=1.0)
        assert actions == [("unpark", replicas[1])]
        # No queue ever existed: the stub reports zero outstanding work.

    def test_warming_capacity_suppresses_double_unpark(self):
        replicas = self._fleet(3)
        replicas[1].online = False
        replicas[1].warming = True
        replicas[2].online = False
        scaler = PredictiveAutoscaler(token_rate=1_000.0)
        scaler.decide(replicas, now=0.0)
        self._feed(replicas, 1_000)  # wants 2 replicas; 1 already warming
        assert scaler.decide(replicas, now=1.0) == []

    def test_scale_in_waits_for_agreement(self):
        replicas = self._fleet(2)
        scaler = PredictiveAutoscaler(
            token_rate=1_000.0, config=PredictiveConfig(scale_in_ticks=2)
        )
        scaler.decide(replicas, now=0.0)
        self._feed(replicas, 100)  # ~100 tokens/s << capacity
        assert scaler.decide(replicas, now=1.0) == []  # tick 1 of 2
        self._feed(replicas, 100)
        actions = scaler.decide(replicas, now=2.0)
        assert len(actions) == 1 and actions[0][0] == "drain"

    def test_forces_capacity_back_when_nothing_accepts(self):
        replicas = self._fleet(2)
        replicas[0].online = False
        replicas[1].online = False
        scaler = PredictiveAutoscaler(token_rate=1_000.0)
        actions = scaler.decide(replicas, now=0.0)
        assert actions == [("unpark", replicas[0])]

    def test_reset_clears_the_estimate(self):
        replicas = self._fleet(2)
        scaler = PredictiveAutoscaler(token_rate=1_000.0)
        scaler.decide(replicas, now=0.0)
        self._feed(replicas, 5_000)
        scaler.decide(replicas, now=1.0)
        assert scaler.forecast_rate() > 0.0
        scaler.reset()
        assert scaler.forecast_rate() == 0.0


class TestLedgersAndMetrics:
    def test_ledger_event_validation(self):
        ledger = QoSLedger()
        with pytest.raises(ValueError):
            ledger.note("interactive", "teleported")
        ledger.note(None, "submitted")
        assert ledger.count(None, "submitted") == 1
        assert ledger.as_dict() == {"untagged": {"submitted": 1.0}}

    def test_merge_qos_stats_sums_and_skips_none(self):
        a = ServeResult(system="a", qos_stats={"interactive": {"admitted": 2.0}})
        b = ServeResult(system="b", qos_stats={"interactive": {"admitted": 3.0},
                                               "batch": {"rejected": 1.0}})
        c = ServeResult(system="c")
        merged = merge_qos_stats([a, b, c])
        assert merged == {
            "interactive": {"admitted": 5.0},
            "batch": {"rejected": 1.0},
        }
        assert merge_qos_stats([c]) is None

    def test_per_class_report_scores_each_tier_against_its_scale(self):
        ideal = reference_ideal_model(num_gpus=4)
        fast = make_request(input_len=1_000, output_len=10)
        fast.qos = "interactive"
        latency = ideal.ideal_latency(fast)
        fast.prefill_end = 0.5 * latency
        fast.finish_time = 5.0 * latency  # inside 10x, outside nothing
        fast.generated = 10
        from repro.types import RequestState

        fast.state = RequestState.FINISHED
        slow = make_request(input_len=1_000, output_len=10)
        slow.qos = "batch"
        slow.prefill_end = 0.5 * latency
        slow.finish_time = 60.0 * latency  # misses 25x, inside batch 100x
        slow.generated = 10
        slow.state = RequestState.FINISHED
        result = ServeResult(system="x", requests=[fast, slow], makespan=1.0)
        outcomes = per_class_report(result, ideal)
        assert outcomes["interactive"].attainment == 1.0
        assert outcomes["batch"].attainment == 1.0
        # The same slow request would miss as standard.
        slow.qos = "standard"
        outcomes = per_class_report(result, ideal)
        assert outcomes["standard"].attainment == 0.0

    def test_fleet_report_renders_qos_block(self):
        trace = make_trace(MIXED, rate=6.0, num_requests=20, seed=7,
                           max_input_len=20_000, qos_mix=QOS_MIX)
        fleet = make_fleet("loongserve", replicas=2, requests=trace,
                           num_gpus=4, qos=True, admission=True, router="slo")
        result = fleet.run(clone_requests(trace))
        assert result.qos_stats is not None
        from repro.metrics.fleet import fleet_load_report

        report = fleet_load_report(result.per_replica, makespan=result.makespan)
        assert report.qos_stats is not None
        assert "qos interactive" in report.render()


class TestClosedLoop:
    def test_next_turn_arrives_think_time_after_previous_finish(self):
        plans = plan_sessions(rate=2.0, num_sessions=5, seed=11)
        server = build_loongserve(num_gpus=8)
        driver = ClosedLoopDriver(plans)
        result = server.run_driven(driver)
        assert len(result.finished_requests) == driver.total_requests
        by_session = {}
        for request in driver.requests:
            by_session.setdefault(request.session_id, []).append(request)
        plan_by_id = {plan.session_id: plan for plan in plans}
        chained = 0
        for session_id, turns in by_session.items():
            turns.sort(key=lambda r: r.turn)
            plan = plan_by_id[session_id]
            for prev, nxt in zip(turns, turns[1:]):
                gap = plan.turns[prev.turn].think_gap
                assert nxt.arrival_time == pytest.approx(
                    prev.finish_time + gap
                )
                chained += 1
        assert chained > 0  # the trace actually exercised multi-turn chains

    def test_driver_is_single_use(self):
        plans = plan_sessions(rate=2.0, num_sessions=2, seed=12)
        driver = ClosedLoopDriver(plans)
        build_loongserve(num_gpus=8).run_driven(driver)
        with pytest.raises(RuntimeError, match="single-use"):
            build_loongserve(num_gpus=8).run_driven(driver)

    def test_fleet_run_driven_serves_every_turn_once(self):
        plans = tag_session_plans(
            plan_sessions(rate=2.0, num_sessions=6, seed=13),
            {"interactive": 1.0}, seed=13,
        )
        driver = ClosedLoopDriver(plans)
        fleet = make_fleet("loongserve", replicas=2, num_gpus=4,
                           prefix_cache=True, router="slo",
                           qos=True, admission=False)
        result = fleet.run_driven(driver)
        served = [r.request_id for rep in result.per_replica
                  for r in rep.requests + rep.aborted]
        assert sorted(served) == sorted(r.request_id for r in driver.requests)
        assert len(served) == len(set(served)) == driver.total_requests

    def test_session_spec_closed_loop_knob_dispatches_the_workload(self):
        from repro.sessions import SESSIONS, make_session_workload

        open_loop = make_session_workload(rate=2.0, num_sessions=3, seed=21)
        assert isinstance(open_loop, list)
        spec = replace(SESSIONS, closed_loop=True)
        driver = make_session_workload(spec, rate=2.0, num_sessions=3, seed=21)
        assert isinstance(driver, ClosedLoopDriver)
        # Same seed, same conversations: only the arrival coupling differs.
        assert driver.total_requests == len(open_loop)
        with pytest.raises(ValueError, match="closed-loop"):
            make_session_trace(spec, rate=2.0, num_sessions=3, seed=21)

    def test_cli_closed_loop_serve(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(
            ["serve", "--replicas", "2", "--dataset", "sessions",
             "--closed-loop", "--rate", "2", "-n", "4", "--num-gpus", "4",
             "--prefix-cache", "--router", "affinity"]
        ) == 0
        out = capsys.readouterr().out
        assert "finished" in out

    def test_cli_closed_loop_validation(self):
        from repro.__main__ import main as repro_main

        assert repro_main(
            ["serve", "--dataset", "sharegpt", "-n", "4", "--closed-loop"]
        ) == 2
        assert repro_main(
            ["serve", "--replicas", "2", "--dataset", "sessions",
             "--closed-loop", "-n", "4", "--fault-mtbf", "60"]
        ) == 2
        assert repro_main(
            ["serve", "--system", "vllm", "--dataset", "sessions",
             "--closed-loop", "-n", "4"]
        ) == 2

    def test_aborted_turn_still_chains_the_session(self):
        # A turn too large for the replica aborts, but the session's
        # next turn must still be submitted (the client moves on).
        from repro.sessions.workload import SessionPlan, TurnPlan

        plan = SessionPlan(
            session_id=99_991,
            start_time=0.0,
            turns=(
                TurnPlan(prompt=tuple(range(400_000)), output=(1, 2),
                         arrival_time=0.0, think_gap=1.0),
                TurnPlan(prompt=tuple(range(100)), output=(3, 4),
                         arrival_time=2.0, think_gap=1.0),
            ),
        )
        server = build_loongserve(num_gpus=2)
        driver = ClosedLoopDriver([plan])
        result = server.run_driven(driver)
        assert len(driver.requests) == 2
        assert len(result.aborted) == 1
        assert len(result.finished_requests) == 1


class TestGoldenGates:
    """QoS off must be bit-identical to the pre-QoS build — the same
    stored hashes the PR 3/PR 4 static gates assert, now reproduced on
    *tagged* traces with every QoS feature disarmed (tags alone must
    never steer the scheduler)."""

    @staticmethod
    def _signature(result):
        signature = sorted(
            (r.input_len, r.output_len, round(r.arrival_time, 9),
             round(r.prefill_end, 9), round(r.first_token_time, 9),
             round(r.finish_time, 9), r.preemptions)
            for r in result.requests
        )
        return hashlib.md5(repr(signature).encode()).hexdigest()

    def test_tagged_trace_with_qos_off_keeps_static_fleet_signature(self):
        trace = make_trace(MIXED, rate=4.0, num_requests=30, seed=7,
                           qos_mix=QOS_MIX)
        fleet = make_fleet(
            "loongserve", replicas=3, router="least-kv", requests=trace
        )
        result = fleet.run(clone_requests(trace))
        assert self._signature(result) == "8122bb3adaa19bf6518c165082fbc8a7"
        assert result.qos_stats is None

    def test_tagged_sessions_with_qos_off_keep_affinity_signature(self):
        trace = make_session_trace(rate=0.8, num_sessions=10, seed=5,
                                   qos_mix=QOS_MIX)
        fleet = make_fleet(
            "loongserve", replicas=2, router="affinity",
            requests=trace, prefix_cache=True,
        )
        result = fleet.run(clone_requests(trace))
        assert self._signature(result) == "78b843cd0ebb16e37980fdedb9e90ea0"
        assert result.qos_stats is None

    def test_single_server_ignores_tags_without_a_policy(self):
        plain = make_trace(MIXED, rate=4.0, num_requests=25, seed=8)
        tagged = make_trace(MIXED, rate=4.0, num_requests=25, seed=8,
                            qos_mix=QOS_MIX)
        server = build_loongserve(num_gpus=8)
        first = self._signature(server.run(clone_requests(plain)))
        second = self._signature(server.run(clone_requests(tagged)))
        assert first == second

    def test_make_system_gates_qos_args_cli_too(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(
            ["serve", "--replicas", "2", "--dataset", "sharegpt",
             "--rate", "5", "-n", "8", "--num-gpus", "4",
             "--qos-mix", "interactive:0.5,batch:0.5",
             "--qos", "--admission", "--router", "slo"]
        ) == 0
        out = capsys.readouterr().out
        assert "per-class SLO attainment" in out
        assert "interactive" in out

    def test_cli_rejects_inconsistent_qos_flags(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(
            ["serve", "--dataset", "sharegpt", "-n", "4", "--admission"]
        ) == 2
        assert repro_main(
            ["serve", "--system", "vllm", "--dataset", "sharegpt", "-n", "4",
             "--qos"]
        ) == 2
        assert repro_main(
            ["serve", "--dataset", "sharegpt", "-n", "4",
             "--qos-mix", "platinum:1"]
        ) == 2
        assert repro_main(
            ["serve", "--replicas", "2", "--dataset", "sharegpt", "-n", "4",
             "--autoscale", "--autoscale-predictive"]
        ) == 2
        assert repro_main(
            ["serve", "--dataset", "sharegpt", "-n", "4",
             "--autoscale-predictive"]
        ) == 2

    def test_gen_trace_round_trips_qos_tags(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main
        from repro.workloads.serialization import load_trace

        path = tmp_path / "tagged.jsonl"
        assert repro_main(
            ["gen-trace", "--dataset", "sharegpt", "--rate", "2", "-n", "6",
             "--qos-mix", "interactive:0.6,batch:0.4", "-o", str(path)]
        ) == 0
        restored = load_trace(path)
        assert all(r.qos in ("interactive", "batch") for r in restored)

    def test_make_system_gates_qos_args(self):
        with pytest.raises(ValueError, match="requires the QoS policy"):
            make_system("loongserve", admission=True)
        with pytest.raises(ValueError, match="LoongServe"):
            make_system("vllm", qos=True)
        with pytest.raises(ValueError, match="at most one"):
            make_fleet("loongserve", replicas=2, autoscale=True,
                       autoscale_predictive=True)
